"""Experiment X7 — analysis-vs-simulation accuracy across configs.

Model validation beyond Figure 2's default configuration: the
decoupling model is checked against the simulator over a grid of
(cw, dc) schedules and network sizes, reporting the absolute collision
probability error and the relative throughput error.

Shape expectations: throughput errors stay within ~5%; collision
probability errors within ~0.05, largest at small N for aggressive
schedules (the coupling effect [5] analyzes).
"""

import pytest

from conftest import emit
from repro.analysis.validation import compare_model_to_simulation
from repro.core.config import CsmaConfig
from repro.report.tables import format_table

GRID = {
    "1901 default": CsmaConfig.default_1901(),
    "CA2/CA3": CsmaConfig(cw=(8, 16, 16, 32), dc=(0, 1, 3, 15)),
    "single-stage CW=32": CsmaConfig(cw=(32,), dc=(0,)),
    "deferral-only CW=16": CsmaConfig(cw=(16,) * 4, dc=(0, 1, 3, 15)),
    "802.11-like": CsmaConfig.ieee80211(cw_min=16, max_stage=4),
}
COUNTS = (2, 5, 10)


def _generate():
    return {
        label: compare_model_to_simulation(
            COUNTS, config=config, sim_time_us=1e7, repetitions=2
        )
        for label, config in GRID.items()
    }


@pytest.mark.benchmark(group="analysis-accuracy")
def bench_analysis_accuracy(benchmark):
    results = benchmark.pedantic(_generate, rounds=1, iterations=1)

    rows = []
    for label, comparison in results.items():
        for row in comparison:
            rows.append(
                (label, row.num_stations,
                 f"{row.sim_collision_probability:.4f}",
                 f"{row.model_collision_probability:.4f}",
                 f"{row.collision_probability_error:.4f}",
                 f"{row.throughput_relative_error * 100:.1f}%")
            )
    emit("")
    emit(
        format_table(
            ["config", "N", "sim p", "model p", "|Δp|", "S err"],
            rows,
            title="X7 — decoupling-model accuracy across configurations",
        )
    )

    # --- shape assertions -------------------------------------------------
    for label, comparison in results.items():
        for row in comparison:
            assert row.collision_probability_error < 0.055, label
            assert row.throughput_relative_error < 0.06, label
