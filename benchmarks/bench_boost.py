"""Experiment X2 — boosted configurations vs. the 1901 default.

The "Boosting" half of the paper's title: search the candidate
families for a robust (max-min over N) configuration, compare it
against the default by model *and* by simulation, and show how close
it gets to the protocol-independent throughput upper bound.

Shape expectations: the default degrades steadily with N; the boosted
configuration holds nearly flat within a few percent of the upper
bound, giving double-digit relative gains by N = 20.
"""

import pytest

from conftest import emit
from repro.boost import boost_report, recommend_robust, validate_by_simulation
from repro.report.tables import format_table

COUNTS = (2, 5, 10, 20)


def _generate():
    best = recommend_robust(COUNTS)
    boosted, rows = boost_report(COUNTS, boosted=best.config)
    sim_rows = validate_by_simulation(
        best, COUNTS, sim_time_us=1e7, repetitions=2
    )
    return boosted, rows, sim_rows


@pytest.mark.benchmark(group="boost")
def bench_boost(benchmark):
    boosted, rows, sim_rows = benchmark.pedantic(
        _generate, rounds=1, iterations=1
    )

    emit("")
    emit(f"boosted configuration: {boosted.describe()}")
    emit(
        format_table(
            ["N", "default S", "boosted S", "upper bound", "gain %",
             "boosted S (sim)"],
            [
                (r.num_stations,
                 f"{r.default_throughput:.4f}",
                 f"{r.boosted_throughput:.4f}",
                 f"{r.upper_bound:.4f}",
                 f"{r.gain_percent:+.1f}",
                 f"{sim_rows[i][1]:.4f}")
                for i, r in enumerate(rows)
            ],
            title="X2 — default 1901 vs boosted configuration",
        )
    )

    # --- shape assertions -------------------------------------------------
    by_n = {r.num_stations: r for r in rows}
    # Default throughput decreases with N; boosted stays nearly flat.
    assert by_n[20].default_throughput < by_n[2].default_throughput - 0.05
    boosted_curve = [r.boosted_throughput for r in rows]
    assert max(boosted_curve) - min(boosted_curve) < 0.03
    # Double-digit gain at N=20, near the upper bound.
    assert by_n[20].gain_percent > 10.0
    assert by_n[20].boosted_throughput > 0.97 * by_n[20].upper_bound
    # The simulator confirms the model's boosted numbers.
    for (n, sim_s, _sim_p), row in zip(sim_rows, rows):
        assert sim_s == pytest.approx(row.boosted_throughput, rel=0.08)
