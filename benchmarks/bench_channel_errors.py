"""Experiment X8 (extension) — channel errors and ARQ (§4.1 unknown).

The paper assumes an error-free channel; this extension adds i.i.d.
per-PB Bernoulli errors with whole-MPDU MAC-level retransmission and
measures the impact on the §3.2 observables.

Shape expectations: goodput decreases monotonically with the PB error
rate; retransmissions grow accordingly; the collision-probability
estimator ΣC/ΣA is approximately unchanged (errored frames are
acknowledged with error flags, not collision flags).
"""

import pytest

from conftest import emit
from repro.experiments.channel_errors import error_rate_sweep
from repro.report.tables import format_table

RATES = (0.0, 0.02, 0.05, 0.1)


def _generate():
    return error_rate_sweep(
        2, error_probabilities=RATES, duration_us=12e6, seed=1
    )


@pytest.mark.benchmark(group="channel-errors")
def bench_channel_errors(benchmark):
    points = benchmark.pedantic(_generate, rounds=1, iterations=1)

    emit("")
    emit(
        format_table(
            ["PB error rate", "goodput (Mbps)", "collision p",
             "retransmissions", "delivered frames"],
            [
                (f"{p.pb_error_probability:.2f}",
                 f"{p.goodput_mbps:.2f}",
                 f"{p.collision_probability:.4f}",
                 p.retransmissions,
                 p.delivered_frames)
                for p in points
            ],
            title="X8 — channel-error extension (N=2, whole-MPDU ARQ)",
        )
    )

    # --- shape assertions -------------------------------------------------
    goodputs = [p.goodput_mbps for p in points]
    assert all(a >= b - 0.05 for a, b in zip(goodputs, goodputs[1:]))
    assert goodputs[-1] < goodputs[0] * 0.9
    retransmissions = [p.retransmissions for p in points]
    assert retransmissions[0] == 0
    assert all(a <= b for a, b in zip(retransmissions, retransmissions[1:]))
    clean_p = points[0].collision_probability
    for point in points:
        assert point.collision_probability == pytest.approx(
            clean_p, abs=0.035
        )
