"""Chaos-layer benchmarks: checker overhead and recovery dynamics.

Two jobs:

1. Measure the runtime invariant checker's cost on the fixed testbed
   point.  Run-to-run wall-clock deltas between two full simulations
   drown in scheduler noise on shared hardware, so (like
   ``tests/chaos/test_overhead.py``) the checker's cost is isolated
   deterministically: record the probe event stream of the point,
   *replay* it through a fresh checker (deep sweeps at production
   cadence) and time exactly that.  Replay time over baseline time is
   the quantity under the <10 % acceptance bar; persisted as
   ``BENCH_chaos_overhead.json``.  (The probe's own cost is
   benchmarked separately in ``bench_observability``.)
2. Run the recovery experiment once and persist its window metrics
   (baseline/faulty/recovered collision probability, deviation,
   convergence verdict) as ``BENCH_chaos_recovery.json`` — the
   robustness trajectory on disk next to the perf numbers.

``REPRO_BENCH_JSON_DIR`` overrides where the JSON files land (default:
this directory).
"""

import os
import time
from pathlib import Path

import pytest

from repro.chaos import ChaosPlan, InvariantChecker, run_recovery_experiment
from repro.experiments.procedures import run_collision_test
from repro.experiments.testbed import build_testbed
from repro.obs import instrument_testbed
from repro.report.export import write_json

#: Where BENCH_*.json files are written.
JSON_DIR = Path(
    os.environ.get("REPRO_BENCH_JSON_DIR", Path(__file__).parent)
)

#: The fixed point (matches bench_observability for comparability).
POINT_STATIONS = 3
POINT_DURATION_US = 5e6
POINT_SEED = 1


def _baseline_s() -> float:
    """Wall-clock seconds for the bare fixed point (best of 3)."""

    def once() -> float:
        testbed = build_testbed(POINT_STATIONS, seed=POINT_SEED)
        started = time.perf_counter()
        run_collision_test(
            POINT_STATIONS,
            duration_us=POINT_DURATION_US,
            seed=POINT_SEED,
            testbed=testbed,
        )
        return time.perf_counter() - started

    return min(once() for _ in range(3))


def _recorded_events():
    """The point's probe event stream + the finished testbed."""
    testbed = build_testbed(POINT_STATIONS, seed=POINT_SEED)
    probe = instrument_testbed(testbed)
    events = []
    probe.subscribe(lambda event: events.append(dict(event)))
    run_collision_test(
        POINT_STATIONS,
        duration_us=POINT_DURATION_US,
        seed=POINT_SEED,
        testbed=testbed,
    )
    return events, testbed


@pytest.mark.benchmark(group="chaos")
def bench_invariant_checker_overhead(benchmark, report):
    """Replay the event stream through the checker; persist the ratio."""
    baseline = _baseline_s()
    events, testbed = _recorded_events()
    checker = InvariantChecker(policy="count", deep_every=256)
    checker.watch(nodes=[device.node for device in testbed.avln.devices])

    def replay():
        started = time.perf_counter()
        for event in events:
            checker(event)
        return time.perf_counter() - started

    replay_s = benchmark.pedantic(replay, rounds=1, iterations=1)
    result = {
        "point": {
            "stations": POINT_STATIONS,
            "duration_us": POINT_DURATION_US,
            "seed": POINT_SEED,
        },
        "baseline_s": baseline,
        "events": len(events),
        "deep_sweeps": checker.deep_sweeps,
        "checker_replay_s": replay_s,
        # The checker's own cost: the <10% acceptance quantity.
        "checker_overhead_ratio": replay_s / baseline,
        "budget_ratio": 0.10,
    }
    path = write_json(JSON_DIR / "BENCH_chaos_overhead.json", result)
    report(
        "[chaos] invariant checker overhead "
        f"(baseline {baseline*1e3:.0f} ms, {len(events)} events, "
        f"{checker.deep_sweeps} deep sweeps): "
        f"{result['checker_overhead_ratio']:+.1%} of baseline "
        f"(budget +10.0%) -> {path}"
    )


@pytest.mark.benchmark(group="chaos")
def bench_recovery_dynamics(benchmark, report):
    """Baseline → fault → recovery windows; persist the verdict."""
    result = benchmark.pedantic(
        lambda: run_recovery_experiment(
            3, seed=POINT_SEED, window_us=8e6, settle_us=3e6
        ),
        rounds=1,
        iterations=1,
    )
    assert result.converged
    assert result.invariants["green"]
    path = write_json(
        JSON_DIR / "BENCH_chaos_recovery.json", result.as_dict()
    )
    report(
        "[chaos] recovery: baseline p={:.4f}, faulty p={:.4f}, "
        "recovered p={:.4f} (deviation {:.4f} <= {:.4f}) -> {}".format(
            result.baseline,
            result.faulty,
            result.recovered,
            result.deviation,
            result.allowed_deviation,
            path,
        )
    )


@pytest.mark.benchmark(group="chaos")
def bench_full_plan_throughput_cost(benchmark, report):
    """What the 'full' preset does to the §3.2 numbers (context for the
    recovery bench: the faults are a real perturbation)."""
    from repro.chaos import chaos_collision_test, preset_plan

    bare = run_collision_test(
        POINT_STATIONS, duration_us=POINT_DURATION_US, seed=POINT_SEED
    )

    def run():
        return chaos_collision_test(
            POINT_STATIONS,
            preset_plan("full", POINT_DURATION_US, seed=3),
            duration_us=POINT_DURATION_US,
            seed=POINT_SEED,
        )

    test, chaos_report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert chaos_report["invariants"]["green"]
    result = {
        "bare_collision_probability": bare.collision_probability,
        "chaos_collision_probability": test.collision_probability,
        "bare_goodput_mbps": bare.goodput_mbps,
        "chaos_goodput_mbps": test.goodput_mbps,
        "injection": chaos_report["injection"],
    }
    path = write_json(JSON_DIR / "BENCH_chaos_full_plan.json", result)
    report(
        "[chaos] full preset: p {:.4f} -> {:.4f}, goodput "
        "{:.2f} -> {:.2f} Mbps -> {}".format(
            bare.collision_probability,
            test.collision_probability,
            bare.goodput_mbps,
            test.goodput_mbps,
            path,
        )
    )
