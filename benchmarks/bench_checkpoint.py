"""Checkpoint-layer benchmarks: snapshot overhead and resume savings.

Two jobs:

1. Measure what periodic snapshotting costs on the fixed testbed
   point.  Run-to-run wall-clock deltas between two full simulations
   drown in scheduler noise, so the per-snapshot cost (capture +
   checksummed atomic write) is timed in isolation and combined with
   the measured simulation rate into a predicted overhead ratio *per
   interval*; one end-to-end checkpointed run at a dense interval
   cross-checks the prediction and confirms the results stay
   bit-identical.  The acceptance bar: **<10 % overhead at the
   default interval** (``DEFAULT_CHECKPOINT_EVERY_US``).  Persisted
   as ``BENCH_checkpoint_overhead.json``.
2. Measure what resuming actually saves: finish the point from its
   newest snapshot (``resume_collision_test``) and compare that
   wall-clock against recomputing from t=0.  Persisted as
   ``BENCH_checkpoint_resume.json``.

``REPRO_BENCH_JSON_DIR`` overrides where the JSON files land (default:
this directory).
"""

import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.checkpoint import (
    Checkpoint,
    CheckpointStore,
    DEFAULT_CHECKPOINT_EVERY_US,
    checkpointed_collision_test,
    resume_collision_test,
)
from repro.checkpoint.testbed import capture_testbed
from repro.experiments.procedures import DEFAULT_WARMUP_US, run_collision_test
from repro.experiments.testbed import build_testbed
from repro.report.export import write_json

#: Where BENCH_*.json files are written.
JSON_DIR = Path(
    os.environ.get("REPRO_BENCH_JSON_DIR", Path(__file__).parent)
)

#: The fixed point (matches bench_chaos for comparability).
POINT_STATIONS = 3
POINT_DURATION_US = 5e6
POINT_SEED = 1

#: Simulated span of the point (warm-up + measurement window).
POINT_SPAN_US = DEFAULT_WARMUP_US + POINT_DURATION_US

#: Dense interval used for the end-to-end cross-check run.
DENSE_EVERY_US = 0.5e6


def _baseline_s() -> float:
    """Wall-clock seconds for the bare fixed point (best of 3)."""

    def once() -> float:
        testbed = build_testbed(POINT_STATIONS, seed=POINT_SEED)
        started = time.perf_counter()
        run_collision_test(
            POINT_STATIONS,
            duration_us=POINT_DURATION_US,
            seed=POINT_SEED,
            testbed=testbed,
        )
        return time.perf_counter() - started

    return min(once() for _ in range(3))


def _per_snapshot_s(store_dir: str) -> float:
    """Seconds for one capture + checksummed atomic write (best of 5)."""
    testbed = build_testbed(POINT_STATIONS, seed=POINT_SEED)
    testbed.run_until(DEFAULT_WARMUP_US)  # realistic mid-run state
    store = CheckpointStore(store_dir)
    costs = []
    for _ in range(5):
        started = time.perf_counter()
        store.write(
            Checkpoint(
                kind="testbed",
                seq=store.next_seq(),
                sim_time_us=testbed.env.now,
                meta={"bench": True},
                state=capture_testbed(testbed),
            )
        )
        costs.append(time.perf_counter() - started)
    return min(costs)


def _same_test(a, b) -> bool:
    return (
        a.per_station == b.per_station
        and a.goodput_mbps == b.goodput_mbps
        and a.duration_us == b.duration_us
    )


@pytest.mark.benchmark(group="checkpoint")
def bench_checkpoint_overhead(benchmark, report):
    """Snapshot cost vs interval; <10 % at the default interval."""
    baseline = _baseline_s()
    bare = run_collision_test(
        POINT_STATIONS, duration_us=POINT_DURATION_US, seed=POINT_SEED
    )

    with tempfile.TemporaryDirectory() as tmp:
        per_snapshot = _per_snapshot_s(os.path.join(tmp, "probe"))

        # End-to-end cross-check at a dense interval, timed once.
        dense_store = CheckpointStore(os.path.join(tmp, "dense"))

        def dense_run():
            started = time.perf_counter()
            test = checkpointed_collision_test(
                POINT_STATIONS,
                dense_store,
                duration_us=POINT_DURATION_US,
                seed=POINT_SEED,
                checkpoint_every_us=DENSE_EVERY_US,
            )
            return test, time.perf_counter() - started

        test, dense_s = benchmark.pedantic(
            dense_run, rounds=1, iterations=1
        )
        assert _same_test(test, bare), "checkpointing perturbed the run"
        dense_snapshots = len(list(dense_store.entries()))
        assert dense_snapshots > 0

    # Simulation rate (sim-µs per wall-second) sets how often a given
    # interval fires per wall-second; with the isolated per-snapshot
    # cost that predicts the overhead ratio at any interval.
    rate_us_per_s = POINT_SPAN_US / baseline
    intervals_us = sorted(
        {DENSE_EVERY_US, 1e6, 2.5e6, 5e6, DEFAULT_CHECKPOINT_EVERY_US}
    )
    predicted = {
        interval: per_snapshot * rate_us_per_s / interval
        for interval in intervals_us
    }
    default_ratio = predicted[DEFAULT_CHECKPOINT_EVERY_US]
    measured_dense_ratio = (dense_s - baseline) / baseline

    assert default_ratio < 0.10, (
        f"snapshot overhead at the default interval is "
        f"{default_ratio:.1%} (budget 10%)"
    )

    result = {
        "point": {
            "stations": POINT_STATIONS,
            "duration_us": POINT_DURATION_US,
            "warmup_us": DEFAULT_WARMUP_US,
            "seed": POINT_SEED,
        },
        "baseline_s": baseline,
        "per_snapshot_s": per_snapshot,
        "sim_rate_us_per_s": rate_us_per_s,
        "predicted_overhead_ratio_by_interval_us": {
            f"{interval:g}": ratio
            for interval, ratio in predicted.items()
        },
        "dense_interval_us": DENSE_EVERY_US,
        "dense_snapshots": dense_snapshots,
        "dense_run_s": dense_s,
        "measured_dense_overhead_ratio": measured_dense_ratio,
        "default_interval_us": DEFAULT_CHECKPOINT_EVERY_US,
        # The <10% acceptance quantity.
        "default_overhead_ratio": default_ratio,
        "budget_ratio": 0.10,
    }
    path = write_json(JSON_DIR / "BENCH_checkpoint_overhead.json", result)
    report(
        "[checkpoint] snapshot overhead "
        f"(baseline {baseline*1e3:.0f} ms, "
        f"{per_snapshot*1e3:.1f} ms/snapshot): "
        f"{default_ratio:+.2%} at the default interval "
        f"({DEFAULT_CHECKPOINT_EVERY_US:g} us, budget +10.0%), "
        f"{measured_dense_ratio:+.1%} measured at {DENSE_EVERY_US:g} us "
        f"({dense_snapshots} snapshots) -> {path}"
    )


@pytest.mark.benchmark(group="checkpoint")
def bench_checkpoint_resume_savings(benchmark, report):
    """Wall-clock saved by resuming instead of recomputing from t=0."""
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(tmp)

        started = time.perf_counter()
        full = checkpointed_collision_test(
            POINT_STATIONS,
            store,
            duration_us=POINT_DURATION_US,
            seed=POINT_SEED,
            checkpoint_every_us=DENSE_EVERY_US,
        )
        full_s = time.perf_counter() - started

        newest = store.latest_valid()
        assert newest is not None

        def resume():
            started = time.perf_counter()
            test = resume_collision_test(store, checkpoint=newest)
            return test, time.perf_counter() - started

        resumed, resume_s = benchmark.pedantic(
            resume, rounds=1, iterations=1
        )

    assert _same_test(resumed, full), "resume diverged from the full run"
    saved_s = full_s - resume_s
    result = {
        "point": {
            "stations": POINT_STATIONS,
            "duration_us": POINT_DURATION_US,
            "warmup_us": DEFAULT_WARMUP_US,
            "seed": POINT_SEED,
        },
        "checkpoint_every_us": DENSE_EVERY_US,
        "resume_from_sim_time_us": newest.sim_time_us,
        "total_sim_span_us": POINT_SPAN_US,
        "full_run_s": full_s,
        "resume_s": resume_s,
        "saved_s": saved_s,
        "saved_ratio": saved_s / full_s if full_s else 0.0,
    }
    path = write_json(JSON_DIR / "BENCH_checkpoint_resume.json", result)
    report(
        "[checkpoint] resume from t={:.2f} s of {:.2f} s: "
        "{:.0f} ms vs {:.0f} ms full run ({:+.0%} saved) -> {}".format(
            newest.sim_time_us / 1e6,
            POINT_SPAN_US / 1e6,
            resume_s * 1e3,
            full_s * 1e3,
            result["saved_ratio"],
            path,
        )
    )
