"""Experiment X12 (extension) — boosted/legacy coexistence.

If boosting is deployed incrementally, mixed populations arise.  The
heterogeneous slot simulator quantifies the incentive structure.

Shape expectations: network-wide throughput and collision probability
improve monotonically with adoption; but partially-adopting (politer)
boosted stations receive far less than their legacy neighbours — the
benefit accrues to non-upgraders until adoption completes.
"""

import pytest

from conftest import emit
from repro.analysis.heterogeneous import GroupSpec, HeterogeneousModel
from repro.core.config import CsmaConfig
from repro.experiments.coexistence import adoption_sweep
from repro.report.tables import format_table

COUNTS = (0, 2, 5, 8, 10)
BOOSTED = CsmaConfig(cw=(32, 128, 512, 2048), dc=(7, 15, 31, 63))


def _model_total(num_boosted: int, num_legacy: int) -> float:
    groups = []
    if num_boosted:
        groups.append(GroupSpec(BOOSTED, num_boosted, "boosted"))
    if num_legacy:
        groups.append(
            GroupSpec(CsmaConfig.default_1901(), num_legacy, "legacy")
        )
    return HeterogeneousModel(groups).solve().total_throughput


def _generate():
    sims = adoption_sweep(
        total_stations=10,
        boosted_counts=COUNTS,
        boosted=BOOSTED,
        sim_time_us=2e7,
        seed=1,
    )
    models = [_model_total(k, 10 - k) for k in COUNTS]
    return sims, models


@pytest.mark.benchmark(group="coexistence")
def bench_coexistence(benchmark):
    results, models = benchmark.pedantic(_generate, rounds=1, iterations=1)

    emit("")
    emit(
        format_table(
            ["boosted/10", "total S (sim)", "total S (model)",
             "per boosted", "per legacy", "collision p"],
            [
                (r.num_boosted,
                 f"{r.total_throughput:.4f}",
                 f"{model:.4f}",
                 f"{r.per_boosted_station:.4f}" if r.num_boosted else "-",
                 f"{r.per_legacy_station:.4f}" if r.num_legacy else "-",
                 f"{r.collision_probability:.4f}")
                for r, model in zip(results, models)
            ],
            title="X12 — incremental adoption of the boosted config "
                  "(10 saturated stations; heterogeneous decoupling "
                  "model alongside)",
        )
    )

    # --- shape assertions -------------------------------------------------
    totals = [r.total_throughput for r in results]
    assert totals[-1] > totals[0]
    collisions = [r.collision_probability for r in results]
    assert all(a >= b - 0.01 for a, b in zip(collisions, collisions[1:]))
    # Partial adopters are dominated by legacy stations.
    for r in results:
        if 0 < r.num_boosted < 10:
            assert r.per_legacy_station > r.per_boosted_station
    # The heterogeneous model tracks the simulated totals.
    for r, model in zip(results, models):
        assert model == pytest.approx(r.total_throughput, rel=0.05)
