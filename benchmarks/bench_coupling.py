"""Experiment X13 (extension) — quantifying the decoupling violation.

[5]'s modeling-assumptions analysis, reproduced as a measurement: the
joint backoff-stage distribution of two saturated stations, its
total-variation distance from independence, and the stage correlation
— for 1901 and the 802.11 baseline.

Shape expectations: 1901 couples strongly and *negatively* (the winner
camps at stage 0 while the loser escalates — Figure 1's capture
pattern; the two are almost never both at stage 0), 802.11 much less
so.  This is precisely why the decoupling analysis overshoots 1901's
collision probability at small N (X7) while nailing 802.11's.
"""

import pytest

from conftest import emit
from repro.core.config import CsmaConfig
from repro.experiments.coupling import measure_coupling
from repro.report.tables import format_table


def _generate():
    return (
        measure_coupling(sim_time_us=2e7),
        measure_coupling(
            CsmaConfig.ieee80211(), label="802.11 DCF", sim_time_us=2e7
        ),
    )


@pytest.mark.benchmark(group="coupling")
def bench_coupling(benchmark):
    results = benchmark.pedantic(_generate, rounds=1, iterations=1)

    emit("")
    emit(
        format_table(
            ["protocol", "TV(joint, indep)", "stage corr",
             "P(both@stage0)", "indep. prediction"],
            [
                (r.label, f"{r.tv_distance:.4f}",
                 f"{r.stage_correlation:+.4f}",
                 f"{r.both_at_stage0:.4f}",
                 f"{r.independent_both_at_stage0:.4f}")
                for r in results
            ],
            title="X13 — decoupling violation, two saturated stations",
        )
    )
    plc = results[0]
    emit("1901 joint stage distribution (rows: station A, cols: B):")
    emit(
        format_table(
            ["stage", "0", "1", "2", "3"],
            [
                (i, *(f"{plc.joint[i, j]:.4f}" for j in range(4)))
                for i in range(4)
            ],
        )
    )

    # --- shape assertions -------------------------------------------------
    plc, wifi = results
    assert plc.stage_correlation < -0.5
    assert plc.tv_distance > 0.3
    assert plc.both_at_stage0 < 0.1 * plc.independent_both_at_stage0
    assert wifi.tv_distance < plc.tv_distance
    assert abs(wifi.stage_correlation) < abs(plc.stage_correlation)
