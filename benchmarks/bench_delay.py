"""Experiment X10 (extension) — MAC access-delay model validation.

The delay model of :mod:`repro.analysis.delay` (stage-moment recursion
under the decoupling approximation) against simulator delay traces.

Shape expectations: mean delays match within a few percent and grow
with N; the model's standard deviation *under*-estimates at small N —
the burstiness that decoupling misses is exactly the short-term
unfairness of experiment X5 (channel capture stretches the losers'
delays), a limitation worth exhibiting rather than hiding.
"""

import numpy as np
import pytest

from conftest import emit
from repro.analysis.delay import DelayModel
from repro.core import ScenarioConfig, SlotSimulator
from repro.report.tables import format_table

COUNTS = (1, 2, 5, 10)


def _generate():
    model = DelayModel()
    rows = []
    for n in COUNTS:
        prediction = model.solve(n)
        scenario = ScenarioConfig.homogeneous(
            num_stations=n, sim_time_us=2e7, seed=5
        )
        result = SlotSimulator(scenario, record_delays=True).run()
        delays = result.delays_us
        rows.append(
            (n, prediction, float(delays.mean()), float(delays.std()),
             float(np.percentile(delays, 95)))
        )
    return rows


@pytest.mark.benchmark(group="delay")
def bench_delay(benchmark):
    rows = benchmark.pedantic(_generate, rounds=1, iterations=1)

    emit("")
    emit(
        format_table(
            ["N", "mean model/sim (ms)", "std model/sim (ms)",
             "p95 model/sim (ms)"],
            [
                (n,
                 f"{p.mean_us/1000:.2f} / {sim_mean/1000:.2f}",
                 f"{p.std_us/1000:.2f} / {sim_std/1000:.2f}",
                 f"{p.p95_us/1000:.1f} / {sim_p95/1000:.1f}")
                for n, p, sim_mean, sim_std, sim_p95 in rows
            ],
            title="X10 — saturated access delay: model vs simulation",
        )
    )

    # --- shape assertions -------------------------------------------------
    for n, prediction, sim_mean, sim_std, _sim_p95 in rows:
        assert prediction.mean_us == pytest.approx(sim_mean, rel=0.05)
        if n == 1:
            assert prediction.std_us == pytest.approx(sim_std, rel=0.02)
        else:
            # Decoupling under-estimates burstiness at small N.
            assert 0.4 * sim_std < prediction.std_us <= sim_std * 1.05
    means = [prediction.mean_us for _n, prediction, *_rest in rows]
    assert all(a < b for a, b in zip(means, means[1:]))
