"""Performance micro-benchmarks: simulator and engine throughput.

Not a paper artifact — these track that the two simulators stay fast
enough to run the paper-scale experiments (240 s × 10 tests × 7 network
sizes) in minutes.  Regressions here make the reproduction impractical.

``bench_batch_kernel_vs_fsm`` additionally records the vectorized
batch kernel's throughput advantage over the per-station FSM simulator
into ``BENCH_batch_kernel.json`` (location overridable via
``REPRO_BENCH_JSON_DIR``) and fails if the measured ratio drops below
the committed floor in ``batch_speedup_floor.json``.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core import ScenarioConfig, SlotSimulator
from repro.engine import Environment
from repro.experiments.procedures import run_collision_test

#: Where BENCH_*.json files are written.
JSON_DIR = Path(
    os.environ.get("REPRO_BENCH_JSON_DIR", Path(__file__).parent)
)

#: Committed regression floor for the kernel/FSM speedup ratio.
FLOOR_PATH = Path(__file__).parent / "batch_speedup_floor.json"


@pytest.mark.benchmark(group="performance")
def bench_slot_simulator_5_stations(benchmark):
    """Slot-simulator wall time for 10 virtual seconds, N=5."""
    scenario = ScenarioConfig.homogeneous(
        num_stations=5, sim_time_us=1e7, seed=1
    )

    def run():
        return SlotSimulator(scenario).run()

    result = benchmark(run)
    assert result.successes > 1000


@pytest.mark.benchmark(group="performance")
def bench_event_engine_timeout_churn(benchmark):
    """Raw engine throughput: 20k chained timeouts."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(20_000):
                yield env.timeout(1.0)

        env.process(ticker(env))
        env.run()
        return env.now

    assert benchmark(run) == 20_000.0


@pytest.mark.benchmark(group="performance")
def bench_testbed_emulation_3_stations(benchmark):
    """Full emulated testbed (MMEs, bursts, SACKs), 5 virtual seconds."""

    def run():
        return run_collision_test(3, duration_us=5e6, seed=1)

    test = benchmark.pedantic(run, rounds=1, iterations=1)
    assert test.sum_acked > 1000


@pytest.mark.benchmark(group="performance")
def bench_batch_kernel_vs_fsm(benchmark, report):
    """Kernel vs FSM simulated-µs throughput, with regression floor.

    Runs the full point array through :class:`BatchSlotKernel`, times a
    sample of the same points through :class:`SlotSimulator`, checks the
    shared points are bit-identical, and records both rates plus their
    ratio into ``BENCH_batch_kernel.json``.  The ratio must clear the
    committed floor (``batch_speedup_floor.json``); the design target
    is 10x.
    """
    from conftest import FULL
    from repro.batch import BatchSlotKernel
    from repro.report.export import write_json

    batch_size = 1024
    num_stations = 5
    sim_time_us = 4e6 if FULL else 1e6
    fsm_sample = 16

    scenarios = [
        ScenarioConfig.homogeneous(
            num_stations=num_stations,
            sim_time_us=sim_time_us,
            seed=1000 + b,
        )
        for b in range(batch_size)
    ]

    timing = {}

    def run_kernel():
        kernel = BatchSlotKernel(scenarios)
        start = time.perf_counter()
        results = kernel.run()
        timing["kernel_s"] = time.perf_counter() - start
        return results

    batch_results = benchmark.pedantic(run_kernel, rounds=1, iterations=1)

    start = time.perf_counter()
    fsm_results = [
        SlotSimulator(scenarios[b]).run() for b in range(fsm_sample)
    ]
    fsm_s = time.perf_counter() - start

    # The sampled points must be bit-identical across the two engines.
    for b in range(fsm_sample):
        assert batch_results[b] == fsm_results[b], f"point {b} diverged"

    kernel_rate = batch_size * sim_time_us / timing["kernel_s"]
    fsm_rate = fsm_sample * sim_time_us / fsm_s
    ratio = kernel_rate / fsm_rate

    floor = json.loads(FLOOR_PATH.read_text())
    result = {
        "batch_size": batch_size,
        "num_stations": num_stations,
        "sim_time_us": sim_time_us,
        "fsm_sample_points": fsm_sample,
        "kernel_rate_sim_us_per_s": kernel_rate,
        "fsm_rate_sim_us_per_s": fsm_rate,
        "speedup_ratio": ratio,
        "target_ratio": floor["target_ratio"],
        "floor_ratio": floor["min_ratio"],
        "full": FULL,
    }
    path = write_json(JSON_DIR / "BENCH_batch_kernel.json", result)
    report(
        "[batch] kernel {:.0f}M sim-us/s vs FSM {:.0f}M sim-us/s "
        "-> {:.1f}x (target {:.0f}x, floor {:.1f}x) -> {}".format(
            kernel_rate / 1e6,
            fsm_rate / 1e6,
            ratio,
            floor["target_ratio"],
            floor["min_ratio"],
            path,
        )
    )
    assert ratio >= floor["min_ratio"], (
        f"batch kernel speedup {ratio:.2f}x fell below the committed "
        f"floor {floor['min_ratio']}x (see {FLOOR_PATH})"
    )
