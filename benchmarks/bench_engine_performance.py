"""Performance micro-benchmarks: simulator and engine throughput.

Not a paper artifact — these track that the two simulators stay fast
enough to run the paper-scale experiments (240 s × 10 tests × 7 network
sizes) in minutes.  Regressions here make the reproduction impractical.
"""

import pytest

from repro.core import ScenarioConfig, SlotSimulator
from repro.engine import Environment
from repro.experiments.procedures import run_collision_test


@pytest.mark.benchmark(group="performance")
def bench_slot_simulator_5_stations(benchmark):
    """Slot-simulator wall time for 10 virtual seconds, N=5."""
    scenario = ScenarioConfig.homogeneous(
        num_stations=5, sim_time_us=1e7, seed=1
    )

    def run():
        return SlotSimulator(scenario).run()

    result = benchmark(run)
    assert result.successes > 1000


@pytest.mark.benchmark(group="performance")
def bench_event_engine_timeout_churn(benchmark):
    """Raw engine throughput: 20k chained timeouts."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(20_000):
                yield env.timeout(1.0)

        env.process(ticker(env))
        env.run()
        return env.now

    assert benchmark(run) == 20_000.0


@pytest.mark.benchmark(group="performance")
def bench_testbed_emulation_3_stations(benchmark):
    """Full emulated testbed (MMEs, bursts, SACKs), 5 virtual seconds."""

    def run():
        return run_collision_test(3, duration_us=5e6, seed=1)

    test = benchmark.pedantic(run, rounds=1, iterations=1)
    assert test.sum_acked > 1000
