"""Experiment X5 — fairness: 1901 vs. 802.11, long- and short-term.

The [4] study reproduced with both measurement paths: simulator winner
traces and the testbed sniffer's burst-level source trace.

Shape expectations: both protocols are long-term fair (Jain ≈ 1); 1901
is markedly *less short-term fair* — higher channel-capture
probability and longer win runs — because the winner restarts at CW=8
while deferred losers climb stages (Figure 1's caption).
"""

import pytest

from conftest import emit
from repro.experiments.fairness import (
    fairness_by_simulation,
    fairness_by_testbed,
    jain_vs_window,
)
from repro.report.tables import format_table

COUNTS = (2, 5, 10)
WINDOWS = (2, 5, 10, 20, 50, 100)


def _generate():
    sim = fairness_by_simulation(station_counts=COUNTS, sim_time_us=2e7)
    testbed = fairness_by_testbed(2, duration_us=10e6, seed=1)
    curves = jain_vs_window(
        num_stations=2, windows=WINDOWS, sim_time_us=2e7
    )
    return sim, testbed, curves


@pytest.mark.benchmark(group="fairness")
def bench_fairness(benchmark):
    sim_results, testbed_result, curves = benchmark.pedantic(
        _generate, rounds=1, iterations=1
    )

    rows = [
        (r.label, r.num_stations, f"{r.long_term_jain:.4f}",
         f"{r.short_term_jain:.4f}", f"{r.capture_probability:.4f}",
         f"{r.mean_run_length:.2f}", r.max_run_length)
        for r in sim_results + [testbed_result]
    ]
    emit("")
    emit(
        format_table(
            ["protocol", "N", "Jain long", "Jain short", "P(capture)",
             "mean run", "max run"],
            rows,
            title="X5 — fairness, 1901 vs 802.11 "
                  "(simulator traces + testbed sniffer trace)",
        )
    )

    emit(
        format_table(
            ["window"] + [str(w) for w in WINDOWS],
            [
                (label, *(f"{value:.3f}" for _w, value in points))
                for label, points in curves.items()
            ],
            title="X5b — sliding-window Jain index vs window size (N=2): "
                  "1901's unfairness horizon is ~10× longer",
        )
    )

    # --- shape assertions -------------------------------------------------
    plc = {r.num_stations: r for r in sim_results if "1901" in r.label}
    wifi = {r.num_stations: r for r in sim_results if "802.11" in r.label}
    # Jain-vs-window: 1901 below 802.11 at every short window.
    plc_curve = dict(curves["1901 CA1"])
    wifi_curve = dict(curves["802.11 DCF"])
    for window in WINDOWS[:4]:
        assert plc_curve[window] < wifi_curve[window]
    for n in COUNTS:
        assert plc[n].long_term_jain > 0.98
        assert wifi[n].long_term_jain > 0.95
        # 1901's short-term capture dominates 802.11's.
        assert plc[n].capture_probability > wifi[n].capture_probability
        assert plc[n].mean_run_length > wifi[n].mean_run_length
    # The testbed's burst-level trace shows the same capture effect.
    assert testbed_result.capture_probability > 0.5
    assert testbed_result.long_term_jain > 0.95
