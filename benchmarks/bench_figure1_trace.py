"""Experiment F1 — Figure 1: the two-station backoff trace.

Regenerates the paper's worked example: two saturated stations, the
slot-by-slot evolution of (stage, CW, DC, BC) for both, showing the
deferral-counter-triggered CW jumps and the short-term unfairness
(winner returns to stage 0, loser climbs).

Shape expectations: CW values only from {8, 16, 32, 64}; every
transmission is followed by both stations re-entering INIT; after a
success the winner contends from CW=8 while a deferred loser shows up
at CW>=16; jumps occur without transmission attempts.
"""

import pytest

from conftest import emit
from repro.core import ScenarioConfig, SlotSimulator
from repro.report.tables import format_table


def _generate():
    scenario = ScenarioConfig.homogeneous(
        num_stations=2, sim_time_us=120_000, seed=3
    )
    return SlotSimulator(
        scenario, record_trace=True, record_slots=True
    ).run()


@pytest.mark.benchmark(group="figure1")
def bench_figure1_trace(benchmark):
    result = benchmark.pedantic(_generate, rounds=1, iterations=1)

    rows = []
    for slot in result.trace.slots[:30]:
        (s0, cw0, dc0, bc0), (s1, cw1, dc1, bc1) = slot.per_station
        rows.append(
            (f"{slot.time_us:9.2f}", slot.outcome,
             s0, cw0, dc0, bc0, s1, cw1, dc1, bc1)
        )
    emit("")
    emit(
        format_table(
            ["t (µs)", "outcome",
             "A stage", "A CW", "A DC", "A BC",
             "B stage", "B CW", "B DC", "B BC"],
            rows,
            title="Figure 1 — time evolution of the 1901 backoff "
                  "process (2 saturated stations)",
        )
    )

    # --- shape assertions -------------------------------------------------
    for slot in result.trace.slots:
        for stage, cw, dc, bc in slot.per_station:
            assert cw in (8, 16, 32, 64)
            assert 0 <= stage <= 3
            assert dc >= 0 and bc >= 0
    # The DC mechanism fires: stations jump stages without transmitting.
    jumps = sum(s.jumps for s in result.stations)
    assert jumps > 0
    # Short-term unfairness: the same station wins in runs.
    winners = result.trace.winners()
    from repro.core.metrics import capture_probability

    assert capture_probability(winners) > 0.5
