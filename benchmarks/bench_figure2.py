"""Experiment F2 — Figure 2: collision probability vs. N, three ways.

Regenerates the paper's headline validation figure: collision
probability for N = 1..7 from (i) emulated HomePlug AV measurements,
(ii) the slot-synchronous MAC simulation, and (iii) the decoupling
analysis — printed as a table and an ASCII plot against the values
read off the paper's Figure 2 / Table 2.

Shape expectations: all three curves rise concavely from 0 (N=1) to
~0.25–0.30 (N=7); measurement and simulation agree within a couple of
percentage points; the analysis overestimates slightly at small N
(the decoupling assumption's documented weakness for 1901, cf. [5]).
"""

import pytest

from conftest import SIM_TIME_US, TEST_DURATION_US, TEST_REPETITIONS, emit
from repro.experiments.collision_probability import figure2_data
from repro.report.figures import ascii_plot
from repro.report.tables import format_table

#: Figure 2's measured curve (== Table 2's C/A ratios).
PAPER_MEASURED = {
    1: 0.0002, 2: 0.0741, 3: 0.1339, 4: 0.1779,
    5: 0.2176, 6: 0.2443, 7: 0.2669,
}


def _generate():
    return figure2_data(
        station_counts=tuple(PAPER_MEASURED),
        test_duration_us=TEST_DURATION_US,
        test_repetitions=TEST_REPETITIONS,
        sim_time_us=SIM_TIME_US,
        sim_repetitions=3,
        seed=1,
    )


@pytest.mark.benchmark(group="figure2")
def bench_figure2(benchmark):
    points = benchmark.pedantic(_generate, rounds=1, iterations=1)

    rows = [
        (
            p.num_stations,
            f"{p.measured:.4f}",
            f"{p.simulated:.4f}",
            f"{p.analytical:.4f}",
            f"{PAPER_MEASURED[p.num_stations]:.4f}",
        )
        for p in points
    ]
    emit("")
    emit(
        format_table(
            ["N", "measured (ours)", "simulated", "analysis",
             "paper (measured)"],
            rows,
            title="Figure 2 — collision probability vs number of stations",
        )
    )
    ns = [p.num_stations for p in points]
    emit(
        ascii_plot(
            {
                "measured": (ns, [p.measured for p in points]),
                "simulated": (ns, [p.simulated for p in points]),
                "analysis": (ns, [p.analytical for p in points]),
                "paper": (ns, [PAPER_MEASURED[n] for n in ns]),
            },
            title="Figure 2 (reproduced)",
            xlabel="number of stations",
            ylabel="collision probability",
            y_min=0.0,
            y_max=0.32,
        )
    )

    # --- shape assertions -------------------------------------------------
    for p in points:
        paper = PAPER_MEASURED[p.num_stations]
        # Our measurement within a few points of the paper's curve.
        assert p.measured == pytest.approx(paper, abs=0.03)
        # Internal consistency: measurement vs our own simulation.
        assert p.measured == pytest.approx(p.simulated, abs=0.025)
        # Analysis tracks the curve (documented small-N overshoot).
        assert p.analytical == pytest.approx(p.simulated, abs=0.045)
    measured = [p.measured for p in points]
    assert all(a <= b + 0.01 for a, b in zip(measured, measured[1:]))
