"""Experiment X4 — §3.3: MME overhead and burst-size measurements.

Runs the sniffer-equipped emulated testbed and lets faifa compute the
management-vs-data burst ratio and the burst-size histogram.

Shape expectations: data bursts carry 2 MPDUs (the §3.1 measurement);
management bursts are single-MPDU; the overhead is a few percent and
*decreases* with N (the beacon rate is constant while data bursts
multiply — the per-station share of CSMA time lost to MMEs shrinks
relative to data).
"""

import pytest

from conftest import TEST_DURATION_US, emit
from repro.experiments.mme_overhead import overhead_vs_n
from repro.report.tables import format_table

COUNTS = (1, 2, 4, 7)


def _generate():
    return overhead_vs_n(
        station_counts=COUNTS, duration_us=TEST_DURATION_US, seed=1
    )


@pytest.mark.benchmark(group="mme-overhead")
def bench_mme_overhead(benchmark):
    results = benchmark.pedantic(_generate, rounds=1, iterations=1)

    emit("")
    emit(
        format_table(
            ["N", "data bursts", "mgmt bursts", "overhead",
             "burst sizes"],
            [
                (r.num_stations, r.data_bursts, r.management_bursts,
                 f"{r.overhead:.4f}",
                 str(dict(sorted(r.burst_size_histogram.items()))))
                for r in results
            ],
            title="X4 — §3.3 MME overhead (sniffer at D)",
        )
    )

    # --- shape assertions -------------------------------------------------
    for result in results:
        assert result.data_bursts > 0
        assert result.management_bursts > 0
        assert 0.0 < result.overhead < 0.2
        # §3.1: data bursts use 2 MPDUs.
        histogram = result.burst_size_histogram
        assert histogram.get(2, 0) >= result.data_bursts * 0.9
    # Overhead ratio does not grow with N (fixed beacon rate).
    overheads = [r.overhead for r in results]
    assert overheads[-1] <= overheads[0]
