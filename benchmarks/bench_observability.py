"""Observability benchmarks: engine profile and probe overhead.

Two jobs:

1. Profile a fixed emulated-testbed run and persist the
   :class:`~repro.obs.profiler.ProfileReport` as
   ``BENCH_engine_profile.json`` — the ROADMAP's perf trajectory
   (events/sec, simulated-µs per wall-second, wall time per process
   type) finally has numbers on disk.
2. Measure the cost of the instrumentation itself: the same fixed
   Table-2 point with no probe, with a probe attached but no
   subscribers (the ``emit``-level fast path), and with a counting
   subscriber.  The disabled fast path must stay in the noise; the
   result is persisted as ``BENCH_obs_overhead.json``.

``REPRO_BENCH_JSON_DIR`` overrides where the JSON files land (default:
this directory).
"""

import os
import time
from pathlib import Path

import pytest

from repro.experiments.procedures import run_collision_test
from repro.experiments.testbed import build_testbed
from repro.obs import EngineProfiler, MacProbe, instrument_testbed
from repro.report.export import write_json

#: Where BENCH_*.json files are written.
JSON_DIR = Path(
    os.environ.get("REPRO_BENCH_JSON_DIR", Path(__file__).parent)
)

#: The fixed point: 3 stations, 5 virtual seconds (matches the
#: bench_engine_performance testbed bench for comparability).
POINT_STATIONS = 3
POINT_DURATION_US = 5e6
POINT_SEED = 1


def _run_point(probe_mode: str) -> float:
    """Wall-clock seconds for the fixed point under one probe mode."""
    testbed = build_testbed(POINT_STATIONS, seed=POINT_SEED)
    if probe_mode == "attached":
        instrument_testbed(testbed)
    elif probe_mode == "counting":
        probe = instrument_testbed(testbed)
        counter = {"events": 0}
        probe.subscribe(lambda event: counter.__setitem__(
            "events", counter["events"] + 1
        ))
    started = time.perf_counter()
    run_collision_test(
        POINT_STATIONS,
        duration_us=POINT_DURATION_US,
        seed=POINT_SEED,
        testbed=testbed,
    )
    return time.perf_counter() - started


@pytest.mark.benchmark(group="observability")
def bench_engine_profile(benchmark, report):
    """Profile the emulated testbed; persist BENCH_engine_profile.json."""

    def run():
        testbed = build_testbed(POINT_STATIONS, seed=POINT_SEED)
        profiler = EngineProfiler().attach(testbed.env)
        run_collision_test(
            POINT_STATIONS,
            duration_us=POINT_DURATION_US,
            seed=POINT_SEED,
            testbed=testbed,
        )
        profiler.detach()
        return profiler.report()

    profile = benchmark.pedantic(run, rounds=1, iterations=1)
    assert profile.total_events > 1000
    assert profile.events_per_sec > 0
    path = write_json(
        JSON_DIR / "BENCH_engine_profile.json", profile.as_dict()
    )
    report(f"[observability] engine profile -> {path}\n" + profile.format())


@pytest.mark.benchmark(group="observability")
def bench_probe_overhead(benchmark, report):
    """Fixed point under the three probe modes; persist the ratios."""
    baseline = min(_run_point("none") for _ in range(3))
    attached = min(_run_point("attached") for _ in range(3))
    counting = benchmark.pedantic(
        lambda: _run_point("counting"), rounds=1, iterations=1
    )
    result = {
        "point": {
            "stations": POINT_STATIONS,
            "duration_us": POINT_DURATION_US,
            "seed": POINT_SEED,
        },
        "baseline_s": baseline,
        "probe_attached_s": attached,
        "counting_subscriber_s": counting,
        "attached_overhead_ratio": attached / baseline - 1.0,
        "counting_overhead_ratio": counting / baseline - 1.0,
    }
    path = write_json(JSON_DIR / "BENCH_obs_overhead.json", result)
    report(
        "[observability] probe overhead "
        f"(baseline {baseline*1e3:.0f} ms): attached "
        f"{result['attached_overhead_ratio']:+.1%}, counting subscriber "
        f"{result['counting_overhead_ratio']:+.1%} -> {path}"
    )
