"""Experiment X6 — Table 1's two parameter columns and strict PRS.

Two measurements:

1. homogeneous networks running the CA0/CA1 vs the CA2/CA3 column;
2. a mixed-priority testbed where a CA3 flow coexists with CA1 data,
   observed through the sniffer.

Shape expectations: the CA2/CA3 column (smaller high-stage windows)
collides more at large N but is competitive at small N; in the mixed
testbed the CA3 flow loses nothing to CA1 contention (strict PRS
precedence) and cross-class collisions never happen.
"""

import pytest

from conftest import emit
from repro.core import CsmaConfig, PriorityClass
from repro.experiments.sweeps import sweep_configuration
from repro.experiments.testbed import build_testbed
from repro.report.tables import format_table
from repro.traffic.generators import CbrSource

COUNTS = (2, 5, 10, 20)


def _generate():
    homogeneous = {
        label: sweep_configuration(
            label,
            CsmaConfig.for_priority(priority),
            COUNTS,
            sim_time_us=1e7,
            repetitions=2,
        )
        for label, priority in (
            ("CA0/CA1", PriorityClass.CA1),
            ("CA2/CA3", PriorityClass.CA3),
        )
    }

    # Mixed-priority testbed with a CA3 CBR flow from station 0.
    tb = build_testbed(3, seed=5, enable_sniffer=True)
    tb.run_until(2e6)
    cbr = CbrSource(
        tb.env,
        tb.stations[0],
        dst_mac=tb.destination.mac_addr,
        interval_us=20_000.0,
        priority=PriorityClass.CA3,
    )
    tb.faifa.clear()
    start = tb.env.now
    tb.run_until(start + 10e6)
    by_lid = {}
    collided_ca3 = 0
    for record in tb.faifa.bursts():
        by_lid[record.link_id] = by_lid.get(record.link_id, 0) + 1
        if record.link_id == 3 and record.collided:
            collided_ca3 += 1
    return homogeneous, by_lid, collided_ca3, cbr.offered


@pytest.mark.benchmark(group="priority-classes")
def bench_priority_classes(benchmark):
    homogeneous, by_lid, collided_ca3, offered = benchmark.pedantic(
        _generate, rounds=1, iterations=1
    )

    rows = []
    for label, points in homogeneous.items():
        for p in points:
            rows.append(
                (label, p.num_stations, f"{p.sim_throughput:.4f}",
                 f"{p.sim_collision_probability:.4f}")
            )
    emit("")
    emit(
        format_table(
            ["class", "N", "throughput", "collision p"],
            rows,
            title="X6a — homogeneous networks per Table 1 column",
        )
    )
    emit(
        format_table(
            ["Link ID", "bursts"],
            sorted(by_lid.items()),
            title="X6b — mixed-priority testbed, sniffer burst counts "
                  "(10 s; CA3 CBR @50 fps + CA1 saturation)",
        )
    )

    # --- shape assertions -------------------------------------------------
    ca1 = {p.num_stations: p for p in homogeneous["CA0/CA1"]}
    ca3 = {p.num_stations: p for p in homogeneous["CA2/CA3"]}
    # Smaller high-stage windows: more collisions at large N.
    assert (
        ca3[20].sim_collision_probability
        > ca1[20].sim_collision_probability
    )
    assert ca1[20].sim_throughput > ca3[20].sim_throughput
    # Mixed testbed: both classes on the wire; CA3 beacons+CBR present.
    assert by_lid.get(1, 0) > 0 and by_lid.get(3, 0) > 0
    # Strict PRS: the CA1 saturation never collides with CA3 traffic.
    # CA3-*internal* collisions (CCo beacons vs. the station's CBR
    # flow — two CA3 contenders) do happen, but stay well below the
    # two-station contention rate.
    assert collided_ca3 <= by_lid.get(3, 1) * 0.15
