"""Experiment X11 (extension) — rate diversity / the CSMA anomaly.

§4.1's bit-loading unknown, exercised: SNR-driven tone maps give each
link its own payload rate; one station on an attenuated outlet sends
long MPDUs and, because CSMA/CA equalizes *opportunities*, drags the
whole network's goodput down.

Shape expectations: aggregate goodput decreases monotonically as
station 0's SNR drops; per-station frame counts stay near-equal (the
anomaly's signature); fast stations deliver fewer frames than in the
homogeneous baseline.
"""

import pytest

from conftest import emit
from repro.experiments.rate_diversity import anomaly_sweep
from repro.report.tables import format_table

SNRS = (None, 12.0, 5.0, 3.0)


def _generate():
    return anomaly_sweep(snrs=SNRS, num_stations=3, duration_us=12e6)


@pytest.mark.benchmark(group="rate-diversity")
def bench_rate_diversity(benchmark):
    results = benchmark.pedantic(_generate, rounds=1, iterations=1)

    emit("")
    emit(
        format_table(
            ["station-0 SNR", "slow link rate", "goodput (Mbps)",
             "frames per station", "airtime shares"],
            [
                ("healthy" if r.slow_snr_db is None
                 else f"{r.slow_snr_db:.0f} dB",
                 "-" if r.slow_link_rate_mbps is None
                 else f"{r.slow_link_rate_mbps:.1f} Mbps",
                 f"{r.goodput_mbps:.2f}",
                 str(list(r.frames_per_station.values())),
                 str([round(v, 2) for v in r.airtime_share.values()]))
                for r in results
            ],
            title="X11 — rate diversity: one slow outlet vs the network "
                  "(N=3 saturated)",
        )
    )

    # --- shape assertions -------------------------------------------------
    goodputs = [r.goodput_mbps for r in results]
    assert all(a > b for a, b in zip(goodputs, goodputs[1:]))
    worst = results[-1]
    baseline = results[0]
    assert worst.goodput_mbps < baseline.goodput_mbps * 0.75
    # Equal opportunities despite unequal airtime.
    counts = list(worst.frames_per_station.values())
    assert min(counts) / max(counts) > 0.7
    # Fast stations lose frames too.
    fast = list(baseline.frames_per_station)[1:]
    for mac in fast:
        assert worst.frames_per_station[mac] < baseline.frames_per_station[mac]
    # The smoking gun: the slow station's airtime share dominates
    # while its frame share stays near 1/N.
    slow_mac = list(worst.frames_per_station)[0]
    assert worst.airtime_share[slow_mac] > 0.5
