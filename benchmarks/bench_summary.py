"""Aggregate the committed ``BENCH_*.json`` artifacts into one summary.

Each benchmark that pins numbers in CI commits a ``BENCH_<name>.json``
next to this script.  This tool folds them into ``BENCH_summary.json``:
one row per artifact with a *headline* metric (picked from a priority
list, falling back to the first numeric scalar in the file) plus every
top-level numeric scalar — the single file to read for "how fast/good
is everything right now".

The summary is deterministic (pure function of the committed
artifacts, no timestamps), so CI can assert it is in sync::

    python benchmarks/bench_summary.py --check

exits non-zero if ``BENCH_summary.json`` does not match a fresh
aggregation — i.e. someone updated a ``BENCH_*.json`` without
regenerating the summary.  Regenerate with::

    python benchmarks/bench_summary.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

BENCH_DIR = Path(__file__).resolve().parent
SUMMARY_FILENAME = "BENCH_summary.json"

#: Headline-metric priority: the first of these present (as a numeric
#: scalar) in an artifact becomes its headline.  Ratios and rates
#: before raw timings: they stay meaningful across machines.
HEADLINE_PRIORITY: Tuple[str, ...] = (
    "speedup_ratio",
    "saved_ratio",
    "checker_overhead_ratio",
    "measured_dense_overhead_ratio",
    "overhead_ratio",
    "deviation",
    "collision_probability",
    "chaos_collision_probability",
    "events_per_second",
    "baseline_s",
)


def _numeric_scalars(data: Dict[str, Any]) -> Dict[str, float]:
    """Top-level numeric scalars of one artifact (bool excluded)."""
    out: Dict[str, float] = {}
    for key, value in data.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def _headline(scalars: Dict[str, float]) -> Optional[Tuple[str, float]]:
    for key in HEADLINE_PRIORITY:
        if key in scalars:
            return key, scalars[key]
    for key, value in scalars.items():  # first numeric scalar fallback
        return key, value
    return None


def summarize(bench_dir: Path = BENCH_DIR) -> Dict[str, Any]:
    """Fold every ``BENCH_*.json`` into one JSON-able summary dict."""
    rows: List[Dict[str, Any]] = []
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        if path.name == SUMMARY_FILENAME:
            continue
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            rows.append({"name": path.stem, "error": str(exc)})
            continue
        if not isinstance(data, dict):
            rows.append(
                {"name": path.stem, "error": "artifact is not an object"}
            )
            continue
        scalars = _numeric_scalars(data)
        row: Dict[str, Any] = {"name": path.stem, "metrics": scalars}
        headline = _headline(scalars)
        if headline is not None:
            row["headline_metric"], row["headline_value"] = headline
        rows.append(row)
    return {"artifacts": rows, "artifact_count": len(rows)}


def _render(summary: Dict[str, Any]) -> str:
    return json.dumps(summary, indent=2, sort_keys=True) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", type=Path, default=BENCH_DIR,
        help="directory holding the BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help=f"output file (default: <dir>/{SUMMARY_FILENAME})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="verify the committed summary matches a fresh aggregation "
        "instead of writing; exit non-zero when stale",
    )
    args = parser.parse_args(argv)
    out = args.out if args.out is not None else args.dir / SUMMARY_FILENAME
    text = _render(summarize(args.dir))
    if args.check:
        try:
            committed = out.read_text(encoding="utf-8")
        except OSError:
            print(f"{out} is missing — run python benchmarks/"
                  f"bench_summary.py to generate it")
            return 1
        if committed != text:
            print(f"{out} is stale — run python benchmarks/"
                  f"bench_summary.py to regenerate it")
            return 1
        count = summarize(args.dir)["artifact_count"]
        print(f"{out.name} in sync ({count} artifact(s))")
        return 0
    out.write_text(text, encoding="utf-8")
    print(f"wrote {out} ({summarize(args.dir)['artifact_count']} artifact(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
