"""Experiment T2 — Table 2: ΣC_i and ΣA_i for N = 1..7.

Regenerates the paper's Table 2 on the emulated HomePlug AV testbed
using the exact §3.2 ampstat procedure, and prints the counts scaled
to the paper's 240 s test duration next to the published numbers.

Shape expectations: ΣC grows from ~0 with N; ΣA sits in the low
160k's and *increases* with N (collided frames are acknowledged too).
"""

import pytest

from conftest import TABLE2_SCALE, TEST_DURATION_US, emit
from repro.experiments.collision_probability import table2_data
from repro.report.tables import format_scientific, format_table

#: Table 2 of the paper (one 240 s test per N).
PAPER_TABLE2 = {
    1: (25, 162220),
    2: (12012, 162020),
    3: (21390, 159780),
    4: (28924, 162590),
    5: (35990, 165390),
    6: (41877, 171440),
    7: (46989, 176080),
}


def _generate():
    return table2_data(
        station_counts=tuple(PAPER_TABLE2),
        duration_us=TEST_DURATION_US,
        seed=1,
    )


@pytest.mark.benchmark(group="table2")
def bench_table2(benchmark):
    rows = benchmark.pedantic(_generate, rounds=1, iterations=1)

    table_rows = []
    for row in rows:
        paper_c, paper_a = PAPER_TABLE2[row.num_stations]
        scaled_c = row.sum_collided * TABLE2_SCALE
        scaled_a = row.sum_acked * TABLE2_SCALE
        table_rows.append(
            (
                row.num_stations,
                format_scientific(scaled_c),
                format_scientific(paper_c),
                format_scientific(scaled_a),
                format_scientific(paper_a),
                f"{row.collision_probability:.4f}",
                f"{paper_c / paper_a:.4f}",
            )
        )
    emit("")
    emit(
        format_table(
            ["N", "sum C (ours)", "sum C (paper)", "sum A (ours)",
             "sum A (paper)", "C/A (ours)", "C/A (paper)"],
            table_rows,
            title=(
                "Table 2 — collided / acknowledged MPDUs "
                f"(scaled to 240s from {TEST_DURATION_US/1e6:.0f}s tests)"
            ),
        )
    )

    # --- shape assertions -------------------------------------------------
    by_n = {row.num_stations: row for row in rows}
    assert by_n[1].sum_collided == 0  # paper: 25, i.e. ~0
    ratios = [by_n[n].collision_probability for n in sorted(by_n)]
    assert all(a <= b + 0.01 for a, b in zip(ratios, ratios[1:]))
    # ΣA within 15% of the paper at every N, after scaling.
    for n, row in by_n.items():
        paper_a = PAPER_TABLE2[n][1]
        assert row.sum_acked * TABLE2_SCALE == pytest.approx(
            paper_a, rel=0.15
        )
    # ΣA increases from N=1 to N=7 (the §3.2 verification).
    assert by_n[7].sum_acked > by_n[1].sum_acked
