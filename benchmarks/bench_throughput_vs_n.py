"""Experiment X1 — saturation throughput vs. N: 1901 vs. 802.11.

The CoNEXT-scope comparison the companion studies ([4], [5]) make:
normalized saturation throughput and collision probability as the
network grows, for the 1901 default (CA1) and the 802.11 DCF baseline,
each by simulation and by its analytical model.

Shape expectations: 1901 wins at small N (CW0 = 8 wastes fewer backoff
slots) and keeps a throughput edge thanks to the deferral counter
despite its smaller windows; both protocols' collision probabilities
grow with N, 1901's staying below plain DCF's would-be growth because
stations escalate *before* colliding.
"""

import os
import time

import pytest

from conftest import emit
from repro.experiments.sweeps import sweep_configuration, standard_protocol_sweep
from repro.report.figures import ascii_plot
from repro.report.tables import format_table

COUNTS = (1, 2, 3, 5, 7, 10, 15, 20)


def _generate(runner=None):
    return standard_protocol_sweep(
        station_counts=COUNTS, sim_time_us=1e7, repetitions=2, seed=1,
        runner=runner,
    )


@pytest.mark.benchmark(group="throughput-vs-n")
def bench_throughput_vs_n(benchmark, runner):
    series = benchmark.pedantic(
        lambda: _generate(runner), rounds=1, iterations=1
    )

    rows = []
    for label in ("1901 CA1", "802.11 DCF"):
        for p in series[label]:
            rows.append(
                (label, p.num_stations,
                 f"{p.sim_throughput:.4f}", f"{p.model_throughput:.4f}",
                 f"{p.sim_collision_probability:.4f}")
            )
    emit("")
    emit(
        format_table(
            ["protocol", "N", "sim S", "model S", "sim p"],
            rows,
            title="X1 — saturation throughput vs N (1901 vs 802.11)",
        )
    )
    emit(
        ascii_plot(
            {
                "1901 sim": (
                    list(COUNTS),
                    [p.sim_throughput for p in series["1901 CA1"]],
                ),
                "802.11 sim": (
                    list(COUNTS),
                    [p.sim_throughput for p in series["802.11 DCF"]],
                ),
            },
            title="Normalized throughput vs N",
            xlabel="number of stations",
            ylabel="normalized throughput",
        )
    )

    # --- shape assertions -------------------------------------------------
    plc = series["1901 CA1"]
    wifi = series["802.11 DCF"]
    # 1901 wins at N=1..2 (backoff efficiency).
    for i in (0, 1):
        assert plc[i].sim_throughput > wifi[i].sim_throughput
    # Throughput decreases with N for 1901.
    plc_s = [p.sim_throughput for p in plc]
    assert plc_s[0] > plc_s[-1]
    # Models track their simulations.
    for points in (plc, wifi):
        for p in points:
            assert p.model_throughput == pytest.approx(
                p.sim_throughput, rel=0.08
            )


SPEEDUP_COUNTS = tuple(range(5, 55, 5))


@pytest.mark.benchmark(group="throughput-vs-n")
def bench_parallel_speedup(benchmark):
    """Serial vs. 4-worker wall time on the 10-point 1901 sweep.

    The parallel sweep must reproduce the serial one bit-for-bit (the
    runner's seeds depend only on point position, never on worker
    scheduling); the ≥2x speedup is only asserted on machines with at
    least 4 CPUs, since a single-core container cannot exhibit it.
    """
    from repro.core.config import CsmaConfig
    from repro.runner import ExperimentRunner

    def _sweep(workers):
        return sweep_configuration(
            "1901 CA1",
            CsmaConfig.default_1901(),
            station_counts=SPEEDUP_COUNTS,
            sim_time_us=2e6,
            repetitions=2,
            seed=1,
            runner=ExperimentRunner(max_workers=workers),
        )

    t0 = time.perf_counter()
    serial = _sweep(1)
    serial_s = time.perf_counter() - t0

    def _parallel():
        return _sweep(4)

    t0 = time.perf_counter()
    parallel = benchmark.pedantic(_parallel, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - t0

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    emit("")
    emit(
        f"parallel runner speedup (N={SPEEDUP_COUNTS[0]}..."
        f"{SPEEDUP_COUNTS[-1]}): serial {serial_s:.2f}s, "
        f"4 workers {parallel_s:.2f}s -> {speedup:.2f}x "
        f"on {os.cpu_count()} CPU(s)"
    )

    # Determinism: identical results regardless of worker count.
    assert parallel == serial
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0
