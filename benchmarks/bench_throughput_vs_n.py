"""Experiment X1 — saturation throughput vs. N: 1901 vs. 802.11.

The CoNEXT-scope comparison the companion studies ([4], [5]) make:
normalized saturation throughput and collision probability as the
network grows, for the 1901 default (CA1) and the 802.11 DCF baseline,
each by simulation and by its analytical model.

Shape expectations: 1901 wins at small N (CW0 = 8 wastes fewer backoff
slots) and keeps a throughput edge thanks to the deferral counter
despite its smaller windows; both protocols' collision probabilities
grow with N, 1901's staying below plain DCF's would-be growth because
stations escalate *before* colliding.
"""

import pytest

from conftest import emit
from repro.experiments.sweeps import standard_protocol_sweep
from repro.report.figures import ascii_plot
from repro.report.tables import format_table

COUNTS = (1, 2, 3, 5, 7, 10, 15, 20)


def _generate():
    return standard_protocol_sweep(
        station_counts=COUNTS, sim_time_us=1e7, repetitions=2, seed=1
    )


@pytest.mark.benchmark(group="throughput-vs-n")
def bench_throughput_vs_n(benchmark):
    series = benchmark.pedantic(_generate, rounds=1, iterations=1)

    rows = []
    for label in ("1901 CA1", "802.11 DCF"):
        for p in series[label]:
            rows.append(
                (label, p.num_stations,
                 f"{p.sim_throughput:.4f}", f"{p.model_throughput:.4f}",
                 f"{p.sim_collision_probability:.4f}")
            )
    emit("")
    emit(
        format_table(
            ["protocol", "N", "sim S", "model S", "sim p"],
            rows,
            title="X1 — saturation throughput vs N (1901 vs 802.11)",
        )
    )
    emit(
        ascii_plot(
            {
                "1901 sim": (
                    list(COUNTS),
                    [p.sim_throughput for p in series["1901 CA1"]],
                ),
                "802.11 sim": (
                    list(COUNTS),
                    [p.sim_throughput for p in series["802.11 DCF"]],
                ),
            },
            title="Normalized throughput vs N",
            xlabel="number of stations",
            ylabel="normalized throughput",
        )
    )

    # --- shape assertions -------------------------------------------------
    plc = series["1901 CA1"]
    wifi = series["802.11 DCF"]
    # 1901 wins at N=1..2 (backoff efficiency).
    for i in (0, 1):
        assert plc[i].sim_throughput > wifi[i].sim_throughput
    # Throughput decreases with N for 1901.
    plc_s = [p.sim_throughput for p in plc]
    assert plc_s[0] > plc_s[-1]
    # Models track their simulations.
    for points in (plc, wifi):
        for p in points:
            assert p.model_throughput == pytest.approx(
                p.sim_throughput, rel=0.08
            )
