"""Experiment X3 — the CW/DC tradeoff ablation (§2's motivation).

Three ablations quantifying why the deferral counter exists:

1. single-stage fixed-CW protocols: the raw collision/backoff-waste
   frontier in CW;
2. the deferral ladder scaled from hair-trigger to disabled;
3. 1901 default vs. the identical windows with DC disabled (pure BEB).

Shape expectations: the CW frontier has an interior optimum that moves
right with N; disabling the DC raises the collision probability at
every N; hair-trigger deferral (all zeros) over-escalates and loses
throughput at small N.
"""

import pytest

from conftest import emit
from repro.boost.tradeoff import cw_sweep, dc_sweep, deferral_ablation
from repro.report.tables import format_table

COUNTS = (2, 5, 10, 20)


def _generate():
    return (
        cw_sweep(station_counts=(5, 20)),
        dc_sweep(station_counts=COUNTS),
        deferral_ablation(station_counts=COUNTS),
    )


@pytest.mark.benchmark(group="tradeoff")
def bench_tradeoff(benchmark):
    cw_points, dc_points, ablation = benchmark.pedantic(
        _generate, rounds=1, iterations=1
    )

    emit("")
    emit(
        format_table(
            ["config", "N", "collision p", "throughput"],
            [(p.label, p.num_stations, f"{p.collision_probability:.4f}",
              f"{p.normalized_throughput:.4f}") for p in cw_points],
            title="X3a — single-stage CW frontier",
        )
    )
    emit(
        format_table(
            ["config", "N", "collision p", "throughput"],
            [(p.label, p.num_stations, f"{p.collision_probability:.4f}",
              f"{p.normalized_throughput:.4f}") for p in dc_points],
            title="X3b — deferral ladder scaling (default windows)",
        )
    )
    emit(
        format_table(
            ["config", "N", "collision p", "throughput"],
            [(p.label, p.num_stations, f"{p.collision_probability:.4f}",
              f"{p.normalized_throughput:.4f}") for p in ablation],
            title="X3c — deferral-counter ablation",
        )
    )

    # --- shape assertions -------------------------------------------------
    # (1) interior optimum in CW that moves right with N.
    def best_cw(n):
        points = [p for p in cw_points if p.num_stations == n]
        return max(points, key=lambda p: p.normalized_throughput).label

    assert best_cw(5) != best_cw(20)
    # (2) collision probability monotone decreasing in CW at fixed N.
    at_20 = [p for p in cw_points if p.num_stations == 20]
    collisions = [p.collision_probability for p in at_20]
    assert all(a >= b for a, b in zip(collisions, collisions[1:]))
    # (3) DC off -> more collisions at every N.
    with_dc = {p.num_stations: p for p in ablation if "with DC" in p.label}
    without = {p.num_stations: p for p in ablation if "no DC" in p.label}
    for n in COUNTS:
        assert (
            with_dc[n].collision_probability
            < without[n].collision_probability
        )
