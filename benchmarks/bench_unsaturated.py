"""Experiment X9 (extension) — unsaturated operation.

Poisson offered load swept as a fraction of the analytical saturation
knee.

Shape expectations: below the knee, delivered == offered with
negligible collisions and queue loss; past the knee, delivery caps at
the saturation rate, delay blows up and queues overflow.
"""

import pytest

from conftest import emit
from repro.experiments.unsaturated import (
    offered_load_sweep,
    saturation_rate_pps,
)
from repro.report.tables import format_table

FRACTIONS = (0.25, 0.5, 0.8, 1.0, 1.5)


def _generate():
    knee = saturation_rate_pps(3)
    points = offered_load_sweep(
        3, load_fractions=FRACTIONS, sim_time_us=2e7, seed=1
    )
    return knee, points


@pytest.mark.benchmark(group="unsaturated")
def bench_unsaturated(benchmark):
    knee, points = benchmark.pedantic(_generate, rounds=1, iterations=1)

    emit("")
    emit(f"analytical saturation knee: {knee:.1f} frames/s per station")
    emit(
        format_table(
            ["load", "offered fps", "delivered fps", "collision p",
             "mean delay (ms)", "p95 delay (ms)", "queue loss"],
            [
                (f"{f:.2f}×sat",
                 f"{p.offered_fps:.0f}",
                 f"{p.delivered_fps:.0f}",
                 f"{p.collision_probability:.4f}",
                 f"{p.mean_delay_us / 1000:.1f}",
                 f"{p.p95_delay_us / 1000:.1f}",
                 f"{p.queue_loss_fraction:.3f}")
                for f, p in zip(FRACTIONS, points)
            ],
            title="X9 — offered load sweep (N=3, Poisson arrivals)",
        )
    )

    # --- shape assertions -------------------------------------------------
    below = points[:2]
    for point in below:
        assert point.delivered_fps == pytest.approx(
            point.offered_fps, rel=0.06
        )
        assert point.queue_loss_fraction < 0.02
    overload = points[-1]
    assert overload.queue_loss_fraction > 0.2
    assert overload.mean_delay_us > below[0].mean_delay_us * 2
    delays = [p.mean_delay_us for p in points]
    assert all(a <= b * 1.05 for a, b in zip(delays, delays[1:]))
