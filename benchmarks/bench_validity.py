"""Experiment X12 (extension) — the large-N validity map.

Sweeps the analytical 1901 model against batch-kernel simulations
across load regimes (saturated, fractional-load, heterogeneous,
retry-limited) and station counts beyond the paper's N ≤ 7, charting
where the decoupling analysis stays valid (Cano & Malone's question).

Shape expectations: the saturated and retry-limited regimes track the
model at every N; the fractional-load collision error *grows* with N
(the saturated model over-predicts contention ever more as idle time
appears); the heterogeneous mix sits in between and drifts with N.
"""

import pytest

from conftest import CACHE_DIR, FULL, emit
from repro.validity import (
    build_validity_map,
    default_pins,
    format_validity_map,
    validity_figure,
)

COUNTS = (5, 10, 25, 50, 100, 150) if FULL else (5, 10, 25, 50)
SIM_TIME_US = 1e7 if FULL else 2e6


def _generate():
    return build_validity_map(
        counts=COUNTS,
        sim_time_us=SIM_TIME_US,
        repetitions=2,
        seed=1,
        cache_dir=CACHE_DIR,
    )


@pytest.mark.benchmark(group="validity")
def bench_validity(benchmark):
    vmap = benchmark.pedantic(_generate, rounds=1, iterations=1)

    emit("")
    emit(format_validity_map(vmap))
    emit(validity_figure(vmap))

    # --- shape assertions -------------------------------------------------
    by_regime = {}
    for row in vmap.rows:
        by_regime.setdefault(row.regime, []).append(row)

    # Model-valid regimes stay tight at every N (the committed pins'
    # saturated/retry_limited ceilings, regardless of bench scale).
    for name in ("saturated", "retry_limited"):
        pin = default_pins()["regimes"][name]
        for row in by_regime[name]:
            assert (
                row.collision_probability_error
                < pin["collision_probability_error"]
            )

    # The saturated model over-predicts contention under fractional
    # load, and the gap widens with N.
    frac = by_regime["fractional_load"]
    errors = [r.collision_probability_error for r in frac]
    assert all(a < b for a, b in zip(errors, errors[1:]))
    assert errors[-1] > 0.4

    # The heterogeneous mix sits between the two extremes.
    het = by_regime["heterogeneous"]
    for h, f in zip(het, frac):
        assert h.collision_probability_error < f.collision_probability_error
