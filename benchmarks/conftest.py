"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and
*prints* it next to the paper's reference numbers.  pytest captures
file descriptors during the run, so benches hand their text to
:func:`emit`; a ``pytest_terminal_summary`` hook prints everything in
a dedicated section after the benchmark table.

Scaling: the paper's tests run 240 s × 10 repetitions; by default the
benchmarks use shortened durations so the whole suite completes in a
few minutes.  Set ``REPRO_BENCH_FULL=1`` for paper-scale runs.

Parallelism: benches route their experiments through a
:class:`repro.runner.ExperimentRunner`.  ``REPRO_BENCH_WORKERS`` sets
the worker-process count (default 1 = serial, 0 = one per CPU) and
``REPRO_BENCH_CACHE_DIR`` enables the on-disk result cache — results
are bit-identical either way, per the runner's determinism contract.
``REPRO_BENCH_RETRIES`` and ``REPRO_BENCH_TASK_TIMEOUT`` arm the fault
tolerance for paper-scale runs (a retried point reuses its seed, so
these cannot change the numbers either).
"""

import os
from typing import List

import pytest

#: Whether to run at the paper's full durations.
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Runner knobs: worker processes (1 = serial, 0 = one per CPU) and
#: optional on-disk cache directory.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR") or None

#: Fault-tolerance knobs: per-point retries and wall-clock timeout.
RETRIES = int(os.environ.get("REPRO_BENCH_RETRIES", "0"))
_TIMEOUT = os.environ.get("REPRO_BENCH_TASK_TIMEOUT")
TASK_TIMEOUT_S = float(_TIMEOUT) if _TIMEOUT else None

#: Emulated-testbed test duration (µs) and repetitions.
TEST_DURATION_US = 240e6 if FULL else 12e6
TEST_REPETITIONS = 10 if FULL else 2

#: Slot-simulator duration (µs).
SIM_TIME_US = 5e8 if FULL else 2e7

#: Scale factor from the bench duration to the paper's 240 s.
TABLE2_SCALE = 240e6 / TEST_DURATION_US

_EMITTED: List[str] = []


def emit(text: str) -> None:
    """Queue ``text`` for the end-of-run report section."""
    _EMITTED.append(text)


@pytest.fixture
def report():
    """Fixture handing benches the report printer."""
    return emit


@pytest.fixture
def runner():
    """Experiment runner configured from the REPRO_BENCH_* env knobs."""
    from repro.runner import ExperimentRunner

    return ExperimentRunner(
        max_workers=WORKERS,
        cache_dir=CACHE_DIR,
        retries=RETRIES,
        task_timeout_s=TASK_TIMEOUT_S,
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every reproduced table/figure after the benchmark stats."""
    if not _EMITTED:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduced tables and figures")
    for text in _EMITTED:
        terminalreporter.write_line(text)
