#!/usr/bin/env python3
"""Boosting: find (CW, DC) schedules that outperform the 1901 default.

The paper's background section (§2) explains the tradeoff the deferral
counter resolves; this example quantifies it and then *searches* for
better parameter vectors:

1. the CW tradeoff frontier (single-stage protocols);
2. the deferral-counter ablation (default vs. same windows, DC off);
3. a robust boosted configuration (max-min throughput over an N range),
   validated by simulation, not just by the model.

Run:  python examples/boost_configuration.py
"""

from repro.boost import (
    boost_report,
    cw_sweep,
    deferral_ablation,
    recommend_robust,
    validate_by_simulation,
)
from repro.report import format_table

COUNTS = (2, 5, 10, 20)


def main() -> None:
    # --- 1. the raw CW tradeoff -------------------------------------------
    points = cw_sweep(station_counts=(5,), cw_values=(4, 8, 16, 32, 64, 128))
    print(format_table(
        ["config", "collision p", "throughput"],
        [(p.label, f"{p.collision_probability:.4f}",
          f"{p.normalized_throughput:.4f}") for p in points],
        title="Single-stage fixed-CW protocols at N=5 (model)",
    ))
    print("-> small CW: many collisions; large CW: wasted backoff slots.\n")

    # --- 2. what the deferral counter buys ---------------------------------
    ablation = deferral_ablation(station_counts=COUNTS)
    print(format_table(
        ["config", "N", "collision p", "throughput"],
        [(p.label, p.num_stations, f"{p.collision_probability:.4f}",
          f"{p.normalized_throughput:.4f}") for p in ablation],
        title="Deferral-counter ablation (model)",
    ))
    print("-> the DC trades a few collisions for much less backoff waste.\n")

    # --- 3. the boosted configuration ---------------------------------------
    best = recommend_robust(COUNTS)
    print(f"robust recommendation over N∈{list(COUNTS)}: "
          f"{best.config.describe()}")
    boosted, rows = boost_report(COUNTS, boosted=best.config)
    print(format_table(
        ["N", "default S", "boosted S", "upper bound", "gain %"],
        [(r.num_stations, f"{r.default_throughput:.4f}",
          f"{r.boosted_throughput:.4f}", f"{r.upper_bound:.4f}",
          f"{r.gain_percent:+.1f}") for r in rows],
        title="Default 1901 vs boosted (model)",
    ))

    # --- and never trust the model alone: re-validate by simulation.
    sim_rows = validate_by_simulation(best, COUNTS, sim_time_us=1e7)
    print(format_table(
        ["N", "sim S (boosted)", "sim p (boosted)"],
        [(n, f"{s:.4f}", f"{p:.4f}") for n, s, p in sim_rows],
        title="Boosted configuration, simulator check",
    ))


if __name__ == "__main__":
    main()
