#!/usr/bin/env python3
"""Channel errors and retransmissions (the §4.1 unknown, simulated).

The paper's §4.1 lists channel errors among the mechanisms that cannot
be modelled from public information, and assumes an error-free channel.
This example turns on the closest well-defined substitute — i.i.d.
per-PB Bernoulli errors with whole-MPDU MAC-level retransmission — and
shows:

- goodput at the destination falls as the PB error rate grows
  (retransmissions burn airtime);
- the §3.2 collision-probability estimator ΣC/ΣA stays approximately
  unbiased: errored exchanges are acknowledged with *error* flags, so
  they are neither counted as collisions nor dropped from the
  acknowledged total.

Run:  python examples/channel_errors.py
"""

from repro.experiments import error_rate_sweep
from repro.report import format_table

RATES = (0.0, 0.01, 0.02, 0.05, 0.1)


def main() -> None:
    points = error_rate_sweep(
        num_stations=2, error_probabilities=RATES, duration_us=12e6, seed=1
    )
    print(format_table(
        ["PB error rate", "goodput (Mbps)", "collision p",
         "retransmissions", "delivered frames"],
        [(f"{p.pb_error_probability:.2f}",
          f"{p.goodput_mbps:.2f}",
          f"{p.collision_probability:.4f}",
          p.retransmissions,
          p.delivered_frames) for p in points],
        title="Per-PB Bernoulli errors with whole-MPDU ARQ "
              "(2 saturated stations, 12 s)",
    ))
    clean, worst = points[0], points[-1]
    loss = 100 * (1 - worst.goodput_mbps / clean.goodput_mbps)
    print(f"\n-> a {worst.pb_error_probability:.0%} PB error rate costs "
          f"{loss:.0f}% goodput, while the collision estimate moves only "
          f"{abs(worst.collision_probability - clean.collision_probability):.3f}.")


if __name__ == "__main__":
    main()
