#!/usr/bin/env python3
"""Mixed populations: boosted adapters sharing a wire with legacy ones.

The boosting results (examples/boost_configuration.py) assume everyone
upgrades at once.  This example asks the deployment question: what
happens during *incremental* adoption?  Twice:

1. by heterogeneous simulation (the slot simulator runs any mix of
   per-station configurations);
2. by the heterogeneous decoupling model — a vector fixed point, one
   attempt probability per station group — which reproduces the
   simulation within a few percent.

Run:  python examples/coexistence_study.py
"""

from repro.analysis import GroupSpec, HeterogeneousModel
from repro.core import CsmaConfig
from repro.experiments import adoption_sweep
from repro.report import format_table

TOTAL = 10
BOOSTED = CsmaConfig(cw=(32, 128, 512, 2048), dc=(7, 15, 31, 63))


def main() -> None:
    counts = (0, 2, 5, 8, 10)
    sims = adoption_sweep(
        total_stations=TOTAL,
        boosted_counts=counts,
        boosted=BOOSTED,
        sim_time_us=1e7,
        seed=1,
    )
    rows = []
    for result in sims:
        groups = []
        if result.num_boosted:
            groups.append(GroupSpec(BOOSTED, result.num_boosted, "boosted"))
        if result.num_legacy:
            groups.append(
                GroupSpec(
                    CsmaConfig.default_1901(), result.num_legacy, "legacy"
                )
            )
        model = HeterogeneousModel(groups).solve()
        rows.append((
            f"{result.num_boosted}/{TOTAL}",
            f"{result.total_throughput:.4f}",
            f"{model.total_throughput:.4f}",
            f"{result.per_boosted_station:.4f}" if result.num_boosted else "-",
            f"{result.per_legacy_station:.4f}" if result.num_legacy else "-",
        ))
    print(format_table(
        ["adoption", "total S (sim)", "total S (model)",
         "per boosted", "per legacy"],
        rows,
        title=f"Incremental adoption of the boosted config, "
              f"{TOTAL} saturated stations",
    ))
    print(
        "\n-> the network improves with every upgrade, but the boosted\n"
        "   (politer, larger-window) stations concede the channel to\n"
        "   legacy neighbours until adoption completes: the gains accrue\n"
        "   to the non-upgraders first. The vector decoupling model\n"
        "   predicts the totals within a few percent."
    )


if __name__ == "__main__":
    main()
