#!/usr/bin/env python3
"""Short-term unfairness of 1901 (the Figure 1 phenomenon) vs 802.11.

Figure 1's caption: "a station that grabs the channel for a successful
transmission moves to backoff stage 0, whereas the other station
enters a higher backoff stage with larger CW and has lower probability
to transmit."  This example

1. prints a Figure 1-style slot-by-slot trace for two stations
   (CW / DC / BC per station, with the DC-triggered CW jumps);
2. quantifies the unfairness: sliding-window Jain index, channel
   capture probability and win-run lengths, 1901 vs. 802.11 DCF.

Run:  python examples/fairness_study.py
"""

from repro import ScenarioConfig, SlotSimulator
from repro.experiments import fairness_by_simulation
from repro.report import format_table


def figure1_trace() -> None:
    scenario = ScenarioConfig.homogeneous(
        num_stations=2, sim_time_us=60_000, seed=3
    )
    result = SlotSimulator(
        scenario, record_trace=True, record_slots=True
    ).run()
    rows = []
    for slot in result.trace.slots[:25]:
        (s0, cw0, dc0, bc0), (s1, cw1, dc1, bc1) = slot.per_station
        rows.append((
            f"{slot.time_us:9.2f}", slot.outcome,
            s0, cw0, dc0, bc0, s1, cw1, dc1, bc1,
        ))
    print(format_table(
        ["t (µs)", "outcome",
         "A stg", "A CW", "A DC", "A BC",
         "B stg", "B CW", "B DC", "B BC"],
        rows,
        title="Figure 1-style trace: two saturated 1901 stations",
    ))
    print("-> watch CW jump when a station with DC=0 senses the medium "
          "busy.\n")


def unfairness_numbers() -> None:
    results = fairness_by_simulation(
        station_counts=(2, 5, 10), sim_time_us=2e7
    )
    print(format_table(
        ["protocol", "N", "Jain (long)", "Jain (short)",
         "P(capture)", "mean run", "max run"],
        [(r.label, r.num_stations,
          f"{r.long_term_jain:.4f}", f"{r.short_term_jain:.4f}",
          f"{r.capture_probability:.4f}", f"{r.mean_run_length:.2f}",
          r.max_run_length) for r in results],
        title="Fairness: 1901 vs 802.11 (simulator traces)",
    ))
    print("-> 1901 is long-term fair but markedly less short-term fair: "
          "the winner keeps CW=8 while losers defer upward.")


def main() -> None:
    figure1_trace()
    unfairness_numbers()


if __name__ == "__main__":
    main()
