#!/usr/bin/env python3
"""Priority classes: CA0/CA1 vs CA2/CA3, and strict PRS precedence.

Two studies:

1. **Homogeneous class comparison** — all stations in one class; the
   CA2/CA3 column of Table 1 keeps contention windows smaller at high
   stages (16/32 instead of 32/64), trading collisions for access
   latency, which suits delay-sensitive traffic.
2. **Mixed-priority testbed** — on the emulated testbed, one station
   also carries CA3 traffic; the priority-resolution phase gives it
   strict precedence, and the sniffer shows data at CA1 sharing what
   the CA3 flow leaves.

Run:  python examples/priority_classes.py
"""

from repro import CsmaConfig, PriorityClass
from repro.experiments import build_testbed, sweep_configuration
from repro.report import format_table
from repro.traffic import CbrSource


def homogeneous_comparison() -> None:
    counts = (2, 5, 10, 20)
    rows = []
    for label, priority in (
        ("CA0/CA1", PriorityClass.CA1),
        ("CA2/CA3", PriorityClass.CA3),
    ):
        config = CsmaConfig.for_priority(priority)
        for p in sweep_configuration(label, config, counts, sim_time_us=1e7):
            rows.append((
                p.label, p.num_stations,
                f"{p.sim_throughput:.4f}",
                f"{p.sim_collision_probability:.4f}",
            ))
    print(format_table(
        ["class", "N", "throughput", "collision p"],
        rows,
        title="Table 1's two parameter columns, homogeneous networks",
    ))
    print("-> CA2/CA3 collides more at large N (smaller CWs) but grabs "
          "the channel faster — tuned for delay, not aggregate "
          "throughput.\n")


def mixed_priority_testbed() -> None:
    tb = build_testbed(3, seed=5, enable_sniffer=True)
    tb.run_until(2e6)
    # Station 0 additionally sends a delay-sensitive CA3 flow to D.
    CbrSource(
        tb.env,
        tb.stations[0],
        dst_mac=tb.destination.mac_addr,
        interval_us=20_000.0,  # 50 frames/s
        priority=PriorityClass.CA3,
    )
    tb.faifa.clear()
    start = tb.env.now
    tb.run_until(start + 10e6)
    by_lid = {}
    for record in tb.faifa.bursts():
        by_lid[record.link_id] = by_lid.get(record.link_id, 0) + 1
    print(format_table(
        ["Link ID (priority)", "bursts"],
        sorted(by_lid.items()),
        title="Sniffer view of a mixed-priority network (10 s)",
    ))
    print("-> the CA3 flow (Link ID 3) wins every priority resolution it "
          "contends in; CA1 data fills the remaining airtime.")


def main() -> None:
    homogeneous_comparison()
    mixed_priority_testbed()


if __name__ == "__main__":
    main()
