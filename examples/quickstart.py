#!/usr/bin/env python3
"""Quickstart: the reference simulator and the analytical model.

Reproduces the paper's §4.2 example invocation

    sim_1901(2, 5e8, 2920.64, 2542.64, 2050, [8 16 32 64], [0 1 3 15])

(shortened to 5e7 µs here so it runs in a couple of seconds), then
compares the simulator against the decoupling-approximation model of
[5] for a few network sizes.

Run:  python examples/quickstart.py
"""

from repro import CsmaConfig, ScenarioConfig, SlotSimulator, sim_1901
from repro.analysis import Model1901
from repro.report import format_table


def main() -> None:
    # --- Table 3's example call (MATLAB argument order: Tc before Ts).
    collision_pr, throughput = sim_1901(
        2, 5e7, 2542.64, 2920.64, 2050.0, [8, 16, 32, 64], [0, 1, 3, 15],
        seed=1,
    )
    print("Reference simulator, 2 saturated stations, default 1901 config:")
    print(f"  collision probability = {collision_pr:.4f}")
    print(f"  normalized throughput = {throughput:.4f}")
    print()

    # --- The object API gives much more than the two scalars.
    scenario = ScenarioConfig.homogeneous(
        num_stations=3, sim_time_us=2e7, seed=7
    )
    result = SlotSimulator(scenario, record_trace=True).run()
    print("Object API, 3 stations:")
    print(f"  per-station successes = "
          f"{[s.successes for s in result.stations]}")
    print(f"  airtime breakdown     = "
          f"{ {k: round(v, 3) for k, v in result.airtime_breakdown.items()} }")
    print(f"  Jain fairness         = {result.jain_fairness():.4f}")
    print()

    # --- Simulator vs. the analytical model (Figure 2's two curves).
    model = Model1901()
    rows = []
    for n in (1, 2, 3, 5, 7):
        prediction = model.solve(n)
        sim_p, sim_s = sim_1901(
            n, 2e7, 2542.64, 2920.64, 2050.0,
            [8, 16, 32, 64], [0, 1, 3, 15], seed=11,
        )
        rows.append((
            n,
            f"{sim_p:.4f}", f"{prediction.collision_probability:.4f}",
            f"{sim_s:.4f}", f"{prediction.normalized_throughput:.4f}",
        ))
    print(format_table(
        ["N", "sim p", "model p", "sim S", "model S"],
        rows,
        title="Simulation vs decoupling analysis (default 1901, CA1)",
    ))


if __name__ == "__main__":
    main()
