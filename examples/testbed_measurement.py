#!/usr/bin/env python3
"""The §3 testbed methodology on the emulated HomePlug AV devices.

Walks through exactly what the paper does with real hardware:

1. plug N saturated stations + destination D into one power strip
   (D is also the AVLN's central coordinator);
2. let the network come up (association handshakes, beacons);
3. ``ampstat``: reset each station's TX counters towards D, run the
   test, read back (acked, collided) — parsed from the confirm MME at
   bytes 25-32 / 33-40, as §3.2 describes;
4. ``faifa``: sniff SoF delimiters at D, rebuild bursts via MPDUCnt,
   classify by Link ID, and compute the MME overhead (§3.3).

Run:  python examples/testbed_measurement.py
"""

from repro.experiments import build_testbed
from repro.report import format_table

TEST_SECONDS = 12
WARMUP_US = 2e6


def main() -> None:
    num_stations = 3
    tb = build_testbed(num_stations, seed=42, enable_sniffer=True)

    # --- bring-up ------------------------------------------------------
    tb.run_until(WARMUP_US)
    print(f"AVLN up: {len(tb.avln.devices)} devices "
          f"(all associated: {tb.avln.all_associated})")
    for device in tb.avln.devices:
        role = "CCo/D" if device.is_cco else "station"
        print(f"  {device.mac_addr}  TEI={device.tei}  ({role})")
    print()

    # --- §3.2: reset, run, read -----------------------------------------
    tb.reset_data_stats()
    tb.faifa.clear()
    start = tb.env.now
    tb.run_until(start + TEST_SECONDS * 1e6)

    rows = tb.read_data_stats()
    sum_a = sum(a for _m, a, _c in rows)
    sum_c = sum(c for _m, _a, c in rows)
    print(format_table(
        ["station", "acked A_i", "collided C_i"],
        rows,
        title=f"ampstat counters after a {TEST_SECONDS}s test",
    ))
    print(f"\ncollision probability  sum(C)/sum(A) = {sum_c / sum_a:.4f}")
    print(f"goodput at D = "
          f"{tb.destination.received_bytes * 8 / tb.env.now:.2f} Mbps "
          f"(app-layer, cumulative)")
    print()

    # --- §3.3: the sniffer's view ----------------------------------------
    data = tb.faifa.data_bursts()
    mgmt = tb.faifa.management_bursts()
    print("faifa (sniffer at D):")
    print(f"  data bursts        = {len(data)}")
    print(f"  management bursts  = {len(mgmt)}")
    print(f"  MME overhead       = {tb.faifa.mme_overhead():.4f}")
    print(f"  burst sizes        = {tb.faifa.burst_size_histogram()}")
    per_source = {}
    for _t, tei in tb.faifa.source_trace():
        per_source[tei] = per_source.get(tei, 0) + 1
    print(f"  bursts per source  = {dict(sorted(per_source.items()))}")


if __name__ == "__main__":
    main()
