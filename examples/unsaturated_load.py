#!/usr/bin/env python3
"""Unsaturated operation: finding the saturation knee.

The paper studies saturated stations; real homes are usually below
saturation.  This example sweeps Poisson offered load through the slot
simulator and shows the three regimes:

1. light load — every frame delivered, almost no collisions,
   near-constant access delay;
2. the knee — delivery flattens at the saturation rate;
3. overload — queues fill, frames drop, delay explodes.

The analytical saturation throughput (decoupling model) predicts where
the knee sits.

Run:  python examples/unsaturated_load.py
"""

from repro.experiments import offered_load_sweep, saturation_rate_pps
from repro.report import ascii_plot, format_table

N = 3
FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.5)


def main() -> None:
    knee = saturation_rate_pps(N)
    print(f"Analytical saturation knee for N={N}: "
          f"{knee:.1f} frames/s per station\n")

    points = offered_load_sweep(
        N, load_fractions=FRACTIONS, sim_time_us=2e7, seed=1
    )
    print(format_table(
        ["load (×sat)", "offered fps", "delivered fps", "collision p",
         "mean delay (ms)", "p95 delay (ms)", "queue loss"],
        [(f"{f:.1f}", f"{p.offered_fps:.0f}", f"{p.delivered_fps:.0f}",
          f"{p.collision_probability:.4f}",
          f"{p.mean_delay_us / 1000:.1f}",
          f"{p.p95_delay_us / 1000:.1f}",
          f"{p.queue_loss_fraction:.3f}")
         for f, p in zip(FRACTIONS, points)],
        title=f"Offered-load sweep, N={N} stations, Poisson arrivals",
    ))
    print()
    print(ascii_plot(
        {
            "delivered": (
                [p.offered_fps for p in points],
                [p.delivered_fps for p in points],
            ),
            "offered=delivered": (
                [p.offered_fps for p in points],
                [p.offered_fps for p in points],
            ),
        },
        title="Delivered vs offered load (the knee)",
        xlabel="offered load (frames/s, total)",
        ylabel="delivered (frames/s)",
        height=15,
    ))
    print("\n-> delivery follows the diagonal until the knee, then caps "
          "at the saturation rate the model predicts.")


if __name__ == "__main__":
    main()
