"""repro — reproduction of *Analyzing and Boosting the Performance of
Power-Line Communication Networks* (CoNEXT 2014, Vlachou et al.).

The library provides, as independent subpackages:

- :mod:`repro.core` — the IEEE 1901 CSMA/CA station FSM and the
  slot-synchronous simulator of the paper's §4.2, plus metrics;
- :mod:`repro.analysis` — the decoupling-approximation performance
  model ([5], ICNP 2014) and the Bianchi 802.11 baseline model;
- :mod:`repro.boost` — configuration search ("boosting") machinery;
- :mod:`repro.engine` — a discrete-event simulation kernel;
- :mod:`repro.phy`, :mod:`repro.mac` — µs-resolution HomePlug AV
  medium and full event-driven MAC (priority resolution, bursting,
  selective acknowledgments);
- :mod:`repro.hpav` — emulated HomePlug AV devices (MMEs, firmware
  statistics, sniffer mode, beacons/association);
- :mod:`repro.tools` — reimplementations of the ``ampstat`` and
  ``faifa`` utilities operating on emulated devices, and a CLI;
- :mod:`repro.experiments` — the §3 measurement methodology as code;
- :mod:`repro.runner` — parallel experiment execution with
  deterministic per-point seeding and on-disk result caching;
- :mod:`repro.obs` — in-simulation observability: MAC/PHY event
  probes, a metrics registry, JSONL MAC + sniffer-style SoF traces
  with trace-vs-direct cross-checks, and an engine profiler;
- :mod:`repro.chaos` — in-simulation chaos layer: bursty
  Gilbert–Elliott/impulsive channel impairments, seedable device and
  MAC fault injection (SACK loss, station churn, firmware glitches),
  a runtime MAC invariant checker on the probe bus, and a recovery
  harness proving the MAC re-converges after faults clear;
- :mod:`repro.traffic`, :mod:`repro.report` — traffic generation and
  text rendering of tables/figures.

Quickstart::

    from repro import sim_1901
    collision_pr, throughput = sim_1901(
        2, 5e8, 2542.64, 2920.64, 2050, [8, 16, 32, 64], [0, 1, 3, 15])
"""

from .core import (
    AggregateResult,
    CsmaConfig,
    ScenarioConfig,
    SimulationResult,
    SlotSimulator,
    Station,
    StationConfig,
    TimingConfig,
    aggregate,
    sim_1901,
    simulate,
)
from .core.parameters import PriorityClass

__version__ = "1.0.0"

__all__ = [
    "AggregateResult",
    "CsmaConfig",
    "PriorityClass",
    "ScenarioConfig",
    "SimulationResult",
    "SlotSimulator",
    "Station",
    "StationConfig",
    "TimingConfig",
    "aggregate",
    "sim_1901",
    "simulate",
    "__version__",
]
