"""Analytical performance models (decoupling approximation, [5]).

- :class:`Model1901` — the 1901 model: per-station solver + fixed
  point + renewal formulas (Figure 2's "Analysis" curve);
- :class:`StationChain` — numerically exact per-station Markov chain;
- :class:`RecursiveModel` — the stage-recursion formulas;
- :class:`Bianchi80211Model` — the 802.11 DCF baseline model;
- :mod:`repro.analysis.fixed_point` — fixed-point solvers, including
  multi-root scanning (the coupling phenomenon of [5]);
- :func:`network_prediction` — renewal throughput/delay formulas;
- :func:`compare_model_to_simulation` — Figure 2 style validation.
"""

from .bianchi import Bianchi80211Model, tau_bianchi
from .delay import DelayModel, DelayPrediction
from .heterogeneous import (
    GroupPrediction,
    GroupSpec,
    HeterogeneousModel,
    HeterogeneousPrediction,
)
from .fixed_point import (
    ConvergenceError,
    damped_iteration,
    find_all_fixed_points,
    gamma_from_tau,
    solve_fixed_point,
)
from .markov import ChainSolution, StationChain
from .model import Model1901
from .recursive import RecursiveModel, StageQuantities, stage_quantities
from .throughput import NetworkPrediction, network_prediction
from .validation import ComparisonRow, compare_model_to_simulation

__all__ = [
    "Bianchi80211Model",
    "ChainSolution",
    "ComparisonRow",
    "ConvergenceError",
    "DelayModel",
    "DelayPrediction",
    "GroupPrediction",
    "GroupSpec",
    "HeterogeneousModel",
    "HeterogeneousPrediction",
    "Model1901",
    "NetworkPrediction",
    "RecursiveModel",
    "StageQuantities",
    "StationChain",
    "compare_model_to_simulation",
    "damped_iteration",
    "find_all_fixed_points",
    "gamma_from_tau",
    "network_prediction",
    "solve_fixed_point",
    "stage_quantities",
    "tau_bianchi",
]
