"""Bianchi's saturation model for the 802.11 DCF baseline.

The classic decoupling result (Bianchi 2000): a saturated 802.11
station with minimum window ``W`` (CW_0 = W, windows doubling over
``m`` retry stages and capped at ``2^m · W``) attempts with

    τ(γ) = 2(1 − 2γ) / ((1 − 2γ)(W + 1) + γ·W·(1 − (2γ)^m))

per slot event, with γ = 1 − (1 − τ)^(N−1).  Combined with the renewal
formulas of :mod:`repro.analysis.throughput`, this produces the 802.11
curves the paper's companion studies ([4], [5]) compare 1901 against.

Note on slot conventions: in this model (as in the reference 1901
simulator) a busy period counts as one slot event for every station, so
the backoff counter effectively decrements across busy events too —
the convention under which Bianchi's formula is exact.
"""

from __future__ import annotations

from ..core.config import CsmaConfig, TimingConfig
from .fixed_point import ConvergenceError, solve_fixed_point
from .throughput import NetworkPrediction, network_prediction

__all__ = ["tau_bianchi", "Bianchi80211Model"]


def tau_bianchi(gamma: float, cw_min: int, max_stage: int) -> float:
    """Bianchi's τ(γ) for windows W·2^i, i = 0..max_stage.

    >>> round(tau_bianchi(0.0, 16, 6), 6)  # 2/(W+1) when γ=0
    0.117647
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma must be in [0, 1], got {gamma}")
    if cw_min < 1 or max_stage < 0:
        raise ValueError("cw_min must be >= 1 and max_stage >= 0")
    # The textbook closed form has a removable singularity at γ = 1/2;
    # the series evaluation below is equivalent and robust everywhere.
    return _tau_series(gamma, cw_min, max_stage)


def _tau_series(gamma: float, cw_min: int, max_stage: int) -> float:
    """τ(γ) from the series form (robust at γ = 1/2).

    A station at retry stage i draws from window W_i = W·2^min(i, m).
    Renewal-reward over one frame's lifetime:

        attempts  = Σ_i γ^i           (geometric, infinite retry)
        slots     = Σ_i γ^i (W_i+1)/2

        τ = attempts / slots.
    """
    w, m = cw_min, max_stage
    attempts = 0.0
    slots = 0.0
    # Sum the infinite retry series; terms decay geometrically as γ^i
    # (with W_i capped after stage m the tail sums in closed form).
    term = 1.0
    for i in range(m + 1):
        wi = w * 2**i
        attempts += term
        slots += term * (wi + 1) / 2.0
        term *= gamma
    if gamma < 1.0:
        # Tail i > m with W_i = W·2^m: Σ_{i>m} γ^i = term·γ/(1−γ)…
        # ``term`` currently equals γ^(m+1).
        tail = term / (1.0 - gamma)
        attempts += tail
        slots += tail * (w * 2**m + 1) / 2.0
    return attempts / slots


class Bianchi80211Model:
    """Saturation throughput/collision model for 802.11 DCF."""

    def __init__(
        self,
        cw_min: int = 16,
        max_stage: int = 6,
        timing: TimingConfig | None = None,
    ) -> None:
        self.cw_min = cw_min
        self.max_stage = max_stage
        self.timing = timing if timing is not None else TimingConfig()

    @classmethod
    def from_config(
        cls, config: CsmaConfig, timing: TimingConfig | None = None
    ) -> "Bianchi80211Model":
        """Build from an :meth:`CsmaConfig.ieee80211`-style schedule."""
        cw_min = config.cw[0]
        max_stage = config.num_stages - 1
        for i, w in enumerate(config.cw):
            if w != cw_min * 2**i:
                raise ValueError(
                    "Bianchi model requires doubling windows; got "
                    f"{config.cw}"
                )
        return cls(cw_min=cw_min, max_stage=max_stage, timing=timing)

    def tau_of_gamma(self, gamma: float) -> float:
        """The decoupled map γ → τ."""
        return tau_bianchi(gamma, self.cw_min, self.max_stage)

    def solve(self, num_stations: int) -> NetworkPrediction:
        """Fixed point + renewal formulas for ``num_stations``.

        Raises :class:`ConvergenceError` (annotated with the model and
        ``N``) if the solver cannot find the operating point.
        """
        try:
            tau = solve_fixed_point(self.tau_of_gamma, num_stations)
        except ConvergenceError as exc:
            raise ConvergenceError(
                f"Bianchi 802.11 model failed for N={num_stations}",
                last_iterate=exc.last_iterate,
                residual=exc.residual,
                iterations=exc.iterations,
            ) from exc
        return network_prediction(tau, num_stations, self.timing)

    def collision_probability(self, num_stations: int) -> float:
        return self.solve(num_stations).collision_probability

    def normalized_throughput(self, num_stations: int) -> float:
        return self.solve(num_stations).normalized_throughput
