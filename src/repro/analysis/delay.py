"""MAC access-delay analysis under the decoupling approximation.

Beyond the mean delay in :mod:`repro.analysis.throughput`, this module
derives the *distribution* of the head-of-line access delay of a
saturated 1901 station:

- per stage visit, the number of slot events is a mixture (transmit
  after ``b`` backoff events, or jump at the (d+1)-th busy event); the
  stage recursion gives its first two moments;
- a frame's service completes after a geometric-like number of stage
  visits (success with probability ``x_s (1-γ)`` per visit);
- slot events convert to time with the renewal event-duration mix
  (idle slot σ w.p. 1-P_tr, success Ts, collision Tc).

The model returns mean, standard deviation and percentile estimates
(via a Gamma fit to the first two moments — the event-count
distribution is a geometric compound, well approximated by a Gamma for
the percentile range the paper's delay discussions care about), and a
Monte-Carlo path for exact validation in tests.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

import numpy as np
from scipy import stats

from ..core.config import CsmaConfig, TimingConfig
from .fixed_point import (
    ConvergenceError,
    gamma_from_tau,
    solve_fixed_point,
)
from .recursive import RecursiveModel, stage_quantities
from .throughput import network_prediction

__all__ = ["DelayPrediction", "DelayModel"]


@dataclasses.dataclass(frozen=True)
class DelayPrediction:
    """Access-delay statistics of one saturated station (µs)."""

    num_stations: int
    mean_us: float
    std_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    #: Mean number of slot events from head-of-line to success.
    mean_events: float
    #: Mean duration of one slot event (µs).
    event_duration_us: float


def _stage_event_moments(
    window: int, deferral: int, busy_probability: float
) -> Tuple[float, float]:
    """(E[K], E[K²]) of the slot events K spent in one stage visit."""
    w, d, p = window, deferral, busy_probability
    if p < 1e-12:
        ks = np.arange(w) + 1.0  # b + 1 events, b uniform
        return float(ks.mean()), float((ks**2).mean())
    bs = np.arange(w)
    js = np.arange(1, w)
    q = np.zeros(w)
    if w > 1:
        valid = js >= d + 1
        if valid.any():
            jv = js[valid]
            q[jv] = stats.nbinom.pmf(jv - 1 - d, d + 1, p)
    jump_cdf = np.cumsum(q)
    attempt_given_b = 1.0 - jump_cdf[bs]
    first = (bs + 1.0) * attempt_given_b + np.cumsum(np.arange(w) * q)[bs]
    second = (bs + 1.0) ** 2 * attempt_given_b + np.cumsum(
        np.arange(w) ** 2.0 * q
    )[bs]
    return float(first.mean()), float(second.mean())


class DelayModel:
    """Access-delay model for N saturated homogeneous 1901 stations."""

    def __init__(
        self,
        config: Optional[CsmaConfig] = None,
        timing: Optional[TimingConfig] = None,
    ) -> None:
        self.config = config if config is not None else CsmaConfig.default_1901()
        self.timing = timing if timing is not None else TimingConfig()
        self._recursive = RecursiveModel(self.config)

    # -- event-count moments ---------------------------------------------
    def service_event_moments(self, gamma: float) -> Tuple[float, float]:
        """(mean, variance) of slot events until a frame's success.

        Computed by absorbing-chain first/second moments over the stage
        process: from stage ``s`` a visit consumes K_s events, then
        moves to stage 0' (absorbed: success) w.p. x_s(1-γ), else to
        min(s+1, m-1).
        """
        m = self.config.num_stages
        table = [
            stage_quantities(w, d, gamma)
            for w, d in zip(self.config.cw, self.config.dc)
        ]
        moments = [
            _stage_event_moments(w, d, gamma)
            for w, d in zip(self.config.cw, self.config.dc)
        ]
        # E_s = E[K_s] + (1 - a_s) E_next,   a_s = x_s (1-γ)
        # Second moments via E[(K_s + T_next·1{go on})²].
        means = [0.0] * m
        seconds = [0.0] * m
        # Solve backwards; the last stage is self-referential.
        for s in reversed(range(m)):
            x = table[s].attempt_probability
            absorb = x * (1.0 - gamma)
            ek, ek2 = moments[s]
            nxt = min(s + 1, m - 1)
            if nxt == s:
                # T = K + B·T' with B ~ Bernoulli(1-absorb), T' iid T.
                if absorb <= 0:
                    means[s] = float("inf")
                    seconds[s] = float("inf")
                    continue
                mean_s = ek / absorb
                # E[T²] = E[K²] + 2(1-a)E[K]E[T] + (1-a)E[T²]
                seconds[s] = (
                    ek2 + 2 * (1 - absorb) * ek * mean_s
                ) / absorb
                means[s] = mean_s
            else:
                mean_next = means[nxt]
                second_next = seconds[nxt]
                means[s] = ek + (1 - absorb) * mean_next
                seconds[s] = (
                    ek2
                    + 2 * (1 - absorb) * ek * mean_next
                    + (1 - absorb) * second_next
                )
        mean = means[0]
        variance = max(seconds[0] - mean**2, 0.0)
        return mean, variance

    # -- the public prediction ---------------------------------------------
    def solve(self, num_stations: int) -> DelayPrediction:
        """Delay statistics at the decoupling operating point.

        Raises :class:`ConvergenceError` (annotated with the model and
        ``N``) if the solver cannot find the operating point.
        """
        try:
            tau = solve_fixed_point(self._recursive.tau, num_stations)
        except ConvergenceError as exc:
            raise ConvergenceError(
                f"1901 delay model failed for N={num_stations}",
                last_iterate=exc.last_iterate,
                residual=exc.residual,
                iterations=exc.iterations,
            ) from exc
        gamma = gamma_from_tau(tau, num_stations)
        prediction = network_prediction(tau, num_stations, self.timing)
        mean_events, var_events = self.service_event_moments(gamma)
        event_us = prediction.expected_event_duration_us

        # Structure of a service period: the final event is the
        # station's own successful transmission (Ts); every one of the
        # preceding K−1 events is, from the tagged station's view,
        # idle w.p. 1−γ (slot σ) or busy w.p. γ.  A busy event carries
        # one other station's success — Ts — unless two or more others
        # overlap (or the event is one of the station's own collided
        # attempts): Tc.
        t = self.timing
        n = num_stations
        if n >= 2 and gamma > 0:
            # P(exactly one of the other n−1 transmits | ≥1 does).
            p_single = (
                (n - 1) * tau * (1.0 - tau) ** (n - 2)
            ) / (1.0 - (1.0 - tau) ** (n - 1))
        else:
            p_single = 1.0
        mean_busy = p_single * t.ts + (1 - p_single) * t.tc
        second_busy = p_single * t.ts**2 + (1 - p_single) * t.tc**2
        mean_wait = (1 - gamma) * t.slot + gamma * mean_busy
        second_wait = (1 - gamma) * t.slot**2 + gamma * second_busy
        var_wait = max(second_wait - mean_wait**2, 0.0)

        waits_mean = max(mean_events - 1.0, 0.0)  # K − 1 waiting events
        mean_us = t.ts + waits_mean * mean_wait
        # Wald: Var(Σ_{i<K-1} D_i) = E[M]Var(D) + Var(M)E[D]².
        var_us = waits_mean * var_wait + var_events * mean_wait**2
        std_us = math.sqrt(max(var_us, 0.0))

        # Gamma fit to (mean, std) for percentiles.
        if std_us > 0:
            shape = (mean_us / std_us) ** 2
            scale = std_us**2 / mean_us
            dist = stats.gamma(a=shape, scale=scale)
            p50, p95, p99 = (float(dist.ppf(q)) for q in (0.5, 0.95, 0.99))
        else:
            p50 = p95 = p99 = mean_us
        return DelayPrediction(
            num_stations=num_stations,
            mean_us=mean_us,
            std_us=std_us,
            p50_us=p50,
            p95_us=p95,
            p99_us=p99,
            mean_events=mean_events,
            event_duration_us=event_us,
        )
