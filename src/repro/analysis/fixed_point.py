"""Fixed-point machinery for decoupling-approximation models.

Both the 1901 model ([5], ICNP 2014) and the Bianchi 802.11 model
reduce to a scalar fixed point: the per-slot-event transmission
probability τ of a station must be consistent with the medium-busy /
collision probability γ = 1 − (1 − τ)^(N−1) that the station's backoff
process experiences.

[5] shows that for 1901 the fixed point need not be unique (the
deferral counter couples stations more strongly than plain BEB), so in
addition to :func:`solve_fixed_point` we provide
:func:`find_all_fixed_points`, which scans for every sign change of the
residual.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np
from scipy.optimize import brentq

__all__ = [
    "gamma_from_tau",
    "solve_fixed_point",
    "find_all_fixed_points",
    "damped_iteration",
]

_EPS = 1e-12


def gamma_from_tau(tau: float, num_stations: int) -> float:
    """Busy/collision probability seen by one station: 1 − (1 − τ)^(N−1)."""
    if not 0.0 <= tau <= 1.0:
        raise ValueError(f"tau must be in [0, 1], got {tau}")
    if num_stations < 1:
        raise ValueError("num_stations must be >= 1")
    return 1.0 - (1.0 - tau) ** (num_stations - 1)


def _residual(
    tau: float, tau_of_gamma: Callable[[float], float], num_stations: int
) -> float:
    """τ − f(γ(τ)); zero at a consistent operating point."""
    return tau - tau_of_gamma(gamma_from_tau(tau, num_stations))


def solve_fixed_point(
    tau_of_gamma: Callable[[float], float],
    num_stations: int,
    bracket: tuple = (_EPS, 1.0 - _EPS),
    xtol: float = 1e-12,
) -> float:
    """Solve τ = f(1 − (1 − τ)^(N−1)) for τ via Brent's method.

    Parameters
    ----------
    tau_of_gamma:
        The model: attempt probability of one station given the
        busy probability γ it experiences.
    num_stations:
        Number of contending stations ``N``.

    For ``N == 1`` there is no coupling: returns ``f(0)`` directly.
    """
    if num_stations == 1:
        return tau_of_gamma(0.0)
    lo, hi = bracket
    f_lo = _residual(lo, tau_of_gamma, num_stations)
    f_hi = _residual(hi, tau_of_gamma, num_stations)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if f_lo * f_hi > 0:
        # No sign change over the bracket; fall back to iteration.
        return damped_iteration(tau_of_gamma, num_stations)
    return float(
        brentq(_residual, lo, hi, args=(tau_of_gamma, num_stations), xtol=xtol)
    )


def find_all_fixed_points(
    tau_of_gamma: Callable[[float], float],
    num_stations: int,
    grid_points: int = 2000,
) -> List[float]:
    """Locate every fixed point by scanning for residual sign changes.

    Useful to reproduce the multiple-fixed-point phenomenon [5]
    discusses for some 1901 configurations.
    """
    taus = np.linspace(_EPS, 1.0 - _EPS, grid_points)
    residuals = np.array(
        [_residual(t, tau_of_gamma, num_stations) for t in taus]
    )
    roots: List[float] = []
    for i in range(len(taus) - 1):
        r0, r1 = residuals[i], residuals[i + 1]
        if r0 == 0.0:
            roots.append(float(taus[i]))
        elif r0 * r1 < 0:
            roots.append(
                float(
                    brentq(
                        _residual,
                        taus[i],
                        taus[i + 1],
                        args=(tau_of_gamma, num_stations),
                    )
                )
            )
    # Deduplicate near-identical roots.
    unique: List[float] = []
    for root in roots:
        if not unique or abs(root - unique[-1]) > 1e-9:
            unique.append(root)
    return unique


def damped_iteration(
    tau_of_gamma: Callable[[float], float],
    num_stations: int,
    damping: float = 0.5,
    tol: float = 1e-12,
    max_iter: int = 10000,
) -> float:
    """Damped Picard iteration τ ← (1−α)τ + α·f(γ(τ)).

    Robust fallback when the residual does not change sign on the
    bracket boundary (e.g. degenerate single-slot windows).
    """
    tau = 0.1
    for _ in range(max_iter):
        nxt = tau_of_gamma(gamma_from_tau(tau, num_stations))
        new = (1.0 - damping) * tau + damping * nxt
        if abs(new - tau) < tol:
            return new
        tau = new
    return tau
