"""Fixed-point machinery for decoupling-approximation models.

Both the 1901 model ([5], ICNP 2014) and the Bianchi 802.11 model
reduce to a scalar fixed point: the per-slot-event transmission
probability τ of a station must be consistent with the medium-busy /
collision probability γ = 1 − (1 − τ)^(N−1) that the station's backoff
process experiences.

[5] shows that for 1901 the fixed point need not be unique (the
deferral counter couples stations more strongly than plain BEB), so in
addition to :func:`solve_fixed_point` we provide
:func:`find_all_fixed_points`, which scans for every sign change of the
residual.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np
from scipy.optimize import brentq

__all__ = [
    "ConvergenceError",
    "gamma_from_tau",
    "solve_fixed_point",
    "find_all_fixed_points",
    "damped_iteration",
]

_EPS = 1e-12


class ConvergenceError(RuntimeError):
    """A fixed-point computation failed to converge.

    Carries the numerical evidence so callers (and failure telemetry)
    can report *where* the solver stalled instead of silently using a
    garbage operating point:

    - ``last_iterate`` — the best/last τ the solver held;
    - ``residual`` — |τ − f(γ(τ))| at that iterate;
    - ``iterations`` — how many iterations (or grid points) were spent.

    All solvers raise this by default; pass ``strict=False`` to get the
    old silent behaviour (return the last iterate / an empty root list).
    """

    def __init__(
        self,
        message: str,
        last_iterate: float,
        residual: float,
        iterations: int,
    ) -> None:
        super().__init__(
            f"{message} after {iterations} iteration(s): "
            f"last iterate tau={last_iterate:.12g}, "
            f"residual={residual:.3g}"
        )
        self.last_iterate = float(last_iterate)
        self.residual = float(residual)
        self.iterations = int(iterations)


def gamma_from_tau(tau: float, num_stations: int) -> float:
    """Busy/collision probability seen by one station: 1 − (1 − τ)^(N−1)."""
    if not 0.0 <= tau <= 1.0:
        raise ValueError(f"tau must be in [0, 1], got {tau}")
    if num_stations < 1:
        raise ValueError("num_stations must be >= 1")
    return 1.0 - (1.0 - tau) ** (num_stations - 1)


def _residual(
    tau: float, tau_of_gamma: Callable[[float], float], num_stations: int
) -> float:
    """τ − f(γ(τ)); zero at a consistent operating point."""
    return tau - tau_of_gamma(gamma_from_tau(tau, num_stations))


def solve_fixed_point(
    tau_of_gamma: Callable[[float], float],
    num_stations: int,
    bracket: tuple = (_EPS, 1.0 - _EPS),
    xtol: float = 1e-12,
    strict: bool = True,
    max_iter: int = 10000,
) -> float:
    """Solve τ = f(1 − (1 − τ)^(N−1)) for τ via Brent's method.

    Parameters
    ----------
    tau_of_gamma:
        The model: attempt probability of one station given the
        busy probability γ it experiences.
    num_stations:
        Number of contending stations ``N``.
    strict:
        If the bracket has no sign change the solver falls back to
        :func:`damped_iteration`; when that fails to converge within
        ``max_iter`` steps, ``strict=True`` raises
        :class:`ConvergenceError` (carrying the last iterate and its
        residual) and ``strict=False`` returns the last iterate.

    For ``N == 1`` there is no coupling: returns ``f(0)`` directly.
    """
    if num_stations == 1:
        return tau_of_gamma(0.0)
    lo, hi = bracket
    f_lo = _residual(lo, tau_of_gamma, num_stations)
    f_hi = _residual(hi, tau_of_gamma, num_stations)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if f_lo * f_hi > 0:
        # No sign change over the bracket; fall back to iteration.
        return damped_iteration(
            tau_of_gamma, num_stations, max_iter=max_iter, strict=strict
        )
    return float(
        brentq(_residual, lo, hi, args=(tau_of_gamma, num_stations), xtol=xtol)
    )


def find_all_fixed_points(
    tau_of_gamma: Callable[[float], float],
    num_stations: int,
    grid_points: int = 2000,
    strict: bool = True,
) -> List[float]:
    """Locate every fixed point by scanning for residual sign changes.

    Useful to reproduce the multiple-fixed-point phenomenon [5]
    discusses for some 1901 configurations.

    A continuous ``tau_of_gamma`` mapping into [0, 1] always has a
    fixed point (Brouwer), so finding none means the scan failed —
    typically a discontinuous or out-of-range model, or a root hugging
    the bracket boundary below grid resolution.  ``strict=True``
    (default) raises :class:`ConvergenceError` in that case, carrying
    the grid point of smallest \\|residual\\|; ``strict=False`` returns
    the empty list.
    """
    taus = np.linspace(_EPS, 1.0 - _EPS, grid_points)
    residuals = np.array(
        [_residual(t, tau_of_gamma, num_stations) for t in taus]
    )
    roots: List[float] = []
    for i in range(len(taus) - 1):
        r0, r1 = residuals[i], residuals[i + 1]
        if r0 == 0.0:
            roots.append(float(taus[i]))
        elif r0 * r1 < 0:
            roots.append(
                float(
                    brentq(
                        _residual,
                        taus[i],
                        taus[i + 1],
                        args=(tau_of_gamma, num_stations),
                    )
                )
            )
    # Deduplicate near-identical roots.
    unique: List[float] = []
    for root in roots:
        if not unique or abs(root - unique[-1]) > 1e-9:
            unique.append(root)
    if not unique and strict:
        best = int(np.argmin(np.abs(residuals)))
        raise ConvergenceError(
            "no fixed point found on the tau grid",
            last_iterate=float(taus[best]),
            residual=abs(float(residuals[best])),
            iterations=grid_points,
        )
    return unique


def damped_iteration(
    tau_of_gamma: Callable[[float], float],
    num_stations: int,
    damping: float = 0.5,
    tol: float = 1e-12,
    max_iter: int = 10000,
    strict: bool = True,
) -> float:
    """Damped Picard iteration τ ← (1−α)τ + α·f(γ(τ)).

    Robust fallback when the residual does not change sign on the
    bracket boundary (e.g. degenerate single-slot windows).

    When the iteration has not contracted below ``tol`` after
    ``max_iter`` steps, ``strict=True`` (default) raises
    :class:`ConvergenceError` — returning a non-converged τ silently
    poisons every downstream renewal formula — and ``strict=False``
    restores the old behaviour of returning the last iterate.
    """
    tau = 0.1
    for _ in range(max_iter):
        nxt = tau_of_gamma(gamma_from_tau(tau, num_stations))
        new = (1.0 - damping) * tau + damping * nxt
        if abs(new - tau) < tol:
            return new
        tau = new
    if strict:
        raise ConvergenceError(
            "damped Picard iteration did not converge",
            last_iterate=tau,
            residual=abs(_residual(tau, tau_of_gamma, num_stations)),
            iterations=max_iter,
        )
    return tau
