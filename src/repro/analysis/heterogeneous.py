"""Decoupling model for heterogeneous station populations.

The scalar model of :mod:`repro.analysis.model` assumes N identical
stations.  Mixed populations — boosted next to legacy stations (X12),
or different priority-class parameter columns contending after a tie —
need the vector fixed point

    τ_k = f_k(γ_k),    γ_k = 1 − Π_j (1 − τ_j)^{n_j − [j = k]},

one equation per *group* of n_k identical stations with schedule
config_k.  Solved by damped iteration (the maps are monotone, and the
iteration converges quickly in practice; convergence is checked).

Outputs per group: attempt probability, collision probability and
normalized throughput share, plus the network totals — directly
comparable to the heterogeneous slot simulator.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from ..core.config import CsmaConfig, TimingConfig
from .recursive import RecursiveModel

__all__ = ["GroupSpec", "GroupPrediction", "HeterogeneousPrediction",
           "HeterogeneousModel"]


@dataclasses.dataclass(frozen=True)
class GroupSpec:
    """One homogeneous group within a mixed population."""

    config: CsmaConfig
    count: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("group count must be >= 1")


@dataclasses.dataclass(frozen=True)
class GroupPrediction:
    """Model outputs for one group."""

    label: str
    count: int
    tau: float
    collision_probability: float
    #: Normalized throughput of the whole group.
    throughput: float

    @property
    def throughput_per_station(self) -> float:
        return self.throughput / self.count


@dataclasses.dataclass(frozen=True)
class HeterogeneousPrediction:
    """Network-level outputs of the vector fixed point."""

    groups: Tuple[GroupPrediction, ...]
    total_throughput: float
    expected_event_duration_us: float
    converged: bool


class HeterogeneousModel:
    """Vector decoupling fixed point over station groups."""

    def __init__(
        self,
        groups: Sequence[GroupSpec],
        timing: Optional[TimingConfig] = None,
    ) -> None:
        if not groups:
            raise ValueError("need at least one group")
        self.groups = list(groups)
        self.timing = timing if timing is not None else TimingConfig()
        self._solvers = [RecursiveModel(g.config) for g in self.groups]

    # -- the fixed point -----------------------------------------------------
    def _gammas(self, taus: Sequence[float]) -> List[float]:
        """γ_k = 1 − Π_j (1 − τ_j)^(n_j − [j == k])."""
        gammas = []
        for k in range(len(self.groups)):
            product = 1.0
            for j, (group, tau) in enumerate(zip(self.groups, taus)):
                exponent = group.count - (1 if j == k else 0)
                product *= (1.0 - tau) ** exponent
            gammas.append(1.0 - product)
        return gammas

    def solve_taus(
        self,
        damping: float = 0.5,
        tol: float = 1e-12,
        max_iter: int = 20_000,
    ) -> Tuple[List[float], bool]:
        """Damped iteration on the vector map; returns (τ, converged)."""
        taus = [0.1] * len(self.groups)
        for _ in range(max_iter):
            gammas = self._gammas(taus)
            updated = [
                (1.0 - damping) * tau + damping * solver.tau(gamma)
                for tau, solver, gamma in zip(taus, self._solvers, gammas)
            ]
            if max(abs(a - b) for a, b in zip(taus, updated)) < tol:
                return updated, True
            taus = updated
        return taus, False

    # -- network formulas --------------------------------------------------------
    def solve(self) -> HeterogeneousPrediction:
        """Solve and evaluate per-group and network metrics.

        Renewal structure over slot events, as in the homogeneous case:
        P(idle), P(success by a station of group k), P(collision), and
        the event-duration mix give per-group throughput shares.
        """
        taus, converged = self.solve_taus()
        timing = self.timing

        # P(nobody transmits).
        p_idle = 1.0
        for group, tau in zip(self.groups, taus):
            p_idle *= (1.0 - tau) ** group.count

        # P(exactly one station of group k transmits) summed per group:
        # n_k τ_k (1-τ_k)^(n_k-1) Π_{j≠k} (1-τ_j)^{n_j}.
        p_success_by_group = []
        for k, (group, tau) in enumerate(zip(self.groups, taus)):
            term = group.count * tau * (1.0 - tau) ** (group.count - 1)
            for j, (other, other_tau) in enumerate(
                zip(self.groups, taus)
            ):
                if j != k:
                    term *= (1.0 - other_tau) ** other.count
            p_success_by_group.append(term)

        p_success = sum(p_success_by_group)
        p_busy = 1.0 - p_idle
        p_collision = p_busy - p_success
        expected_event = (
            p_idle * timing.slot
            + p_success * timing.ts
            + p_collision * timing.tc
        )

        gammas = self._gammas(taus)
        predictions = []
        for group, tau, gamma, p_s in zip(
            self.groups, taus, gammas, p_success_by_group
        ):
            predictions.append(
                GroupPrediction(
                    label=group.label or group.config.describe(),
                    count=group.count,
                    tau=tau,
                    collision_probability=gamma,
                    throughput=p_s * timing.frame / expected_event,
                )
            )
        return HeterogeneousPrediction(
            groups=tuple(predictions),
            total_throughput=p_success * timing.frame / expected_event,
            expected_event_duration_us=expected_event,
            converged=converged,
        )
