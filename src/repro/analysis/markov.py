"""Exact per-station Markov chain for the 1901 backoff process.

Under the decoupling approximation, a single station's backoff evolves
as a discrete-time Markov chain over *slot events*: at every event the
medium is busy with a constant probability γ (another station
transmits), and an attempted transmission collides with the same
probability.  This module builds that chain exactly — state space
``A(s)`` (attempting at stage ``s``) ∪ ``B(s, b, j)`` (backing off at
stage ``s`` with ``b ≥ 1`` slots and ``j`` deferrals remaining) — and
computes the stationary attempt probability

    τ(γ) = Σ_s π(A(s)).

The chain encodes the same transition rules as
:class:`repro.core.station.Station` (jump on the (d_s+1)-th busy event
of a stage, BC decrement on every event, immediate attempt on a drawn
BC of 0), so together with the fixed point γ = 1 − (1 − τ)^(N−1) it is
the numerically exact version of the analysis in [5].
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from ..core.config import CsmaConfig

__all__ = ["StationChain", "ChainSolution"]


@dataclasses.dataclass(frozen=True)
class ChainSolution:
    """Stationary quantities of the per-station chain at a given γ."""

    gamma: float
    #: Total attempt probability per slot event.
    tau: float
    #: Attempt probability contributed by each stage.
    tau_per_stage: Tuple[float, ...]
    #: Stationary probability of being in each stage (incl. attempts).
    stage_occupancy: Tuple[float, ...]
    #: Rate of deferral-counter jumps per slot event.
    jump_rate: float


class StationChain:
    """Builder/solver for the per-station backoff chain.

    Parameters
    ----------
    config:
        The (cw, dc) schedule.  Works for any schedule, including the
        802.11-equivalent configs with non-expiring deferral counters.
    """

    def __init__(self, config: CsmaConfig) -> None:
        self.config = config
        self._index: Dict[Tuple, int] = {}
        self._states: List[Tuple] = []
        m = config.num_stages
        for s in range(m):
            self._add_state(("A", s))
        for s in range(m):
            for b in range(1, config.cw[s]):
                for j in range(config.dc[s] + 1):
                    self._add_state(("B", s, b, j))
        self.num_states = len(self._states)

    def _add_state(self, state: Tuple) -> None:
        self._index[state] = len(self._states)
        self._states.append(state)

    # -- chain assembly ----------------------------------------------------
    def _redraw_targets(self, stage: int) -> List[Tuple[Tuple, float]]:
        """(state, probability) pairs for a redraw at ``stage``.

        A drawn BC of 0 lands directly in the attempt state; a drawn
        BC of b ≥ 1 starts the stage with a full deferral counter.
        """
        w = self.config.cw[stage]
        d = self.config.dc[stage]
        targets = [(("A", stage), 1.0 / w)]
        targets.extend(
            ((("B", stage, b, d), 1.0 / w) for b in range(1, w))
        )
        return targets

    def transition_matrix(self, gamma: float) -> np.ndarray:
        """Dense row-stochastic transition matrix at busy probability γ."""
        if not 0.0 <= gamma < 1.0 + 1e-15:
            raise ValueError(f"gamma must be in [0, 1], got {gamma}")
        gamma = min(max(gamma, 0.0), 1.0)
        m = self.config.num_stages
        n = self.num_states
        matrix = np.zeros((n, n))

        def add(src: Tuple, dst_list: List[Tuple[Tuple, float]], p: float) -> None:
            i = self._index[src]
            for dst, q in dst_list:
                matrix[i, self._index[dst]] += p * q

        for state in self._states:
            if state[0] == "A":
                s = state[1]
                nxt = min(s + 1, m - 1)
                # Success: fresh frame at stage 0.
                add(state, self._redraw_targets(0), 1.0 - gamma)
                # Collision: redraw at the next stage.
                add(state, self._redraw_targets(nxt), gamma)
            else:
                _, s, b, j = state
                nxt = min(s + 1, m - 1)
                idle_dst = (
                    [(("A", s), 1.0)]
                    if b == 1
                    else [(("B", s, b - 1, j), 1.0)]
                )
                add(state, idle_dst, 1.0 - gamma)
                if j == 0:
                    # Deferral expiry: jump without attempting.
                    add(state, self._redraw_targets(nxt), gamma)
                else:
                    busy_dst = (
                        [(("A", s), 1.0)]
                        if b == 1
                        else [(("B", s, b - 1, j - 1), 1.0)]
                    )
                    add(state, busy_dst, gamma)
        return matrix

    def stationary_distribution(self, gamma: float) -> np.ndarray:
        """Solve πP = π, Σπ = 1 by a dense linear system."""
        matrix = self.transition_matrix(gamma)
        n = self.num_states
        # (P^T - I) π = 0 with the normalization replacing one equation.
        a = matrix.T - np.eye(n)
        a[-1, :] = 1.0
        rhs = np.zeros(n)
        rhs[-1] = 1.0
        pi = np.linalg.solve(a, rhs)
        # Numerical cleanup.
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    def solve(self, gamma: float) -> ChainSolution:
        """Full stationary solution at busy probability γ."""
        pi = self.stationary_distribution(gamma)
        m = self.config.num_stages
        tau_per_stage = [0.0] * m
        stage_occ = [0.0] * m
        jump_rate = 0.0
        for state, p in zip(self._states, pi):
            if state[0] == "A":
                tau_per_stage[state[1]] += p
                stage_occ[state[1]] += p
            else:
                _, s, _b, j = state
                stage_occ[s] += p
                if j == 0:
                    jump_rate += p * gamma
        return ChainSolution(
            gamma=gamma,
            tau=float(sum(tau_per_stage)),
            tau_per_stage=tuple(tau_per_stage),
            stage_occupancy=tuple(stage_occ),
            jump_rate=float(jump_rate),
        )

    def tau(self, gamma: float) -> float:
        """Attempt probability τ(γ) — the model's core map."""
        return self.solve(gamma).tau
