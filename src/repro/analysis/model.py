"""High-level analytical model of the 1901 CSMA/CA network ([5]).

:class:`Model1901` glues together a per-station solver (the exact
Markov chain or the stage recursion), the decoupling fixed point and
the renewal throughput formulas, exposing the quantities Figure 2
plots as the "Analysis" curve.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.config import CsmaConfig, TimingConfig
from .fixed_point import (
    ConvergenceError,
    find_all_fixed_points,
    solve_fixed_point,
)
from .markov import StationChain
from .recursive import RecursiveModel
from .throughput import NetworkPrediction, network_prediction

__all__ = ["Model1901"]


class Model1901:
    """Decoupling-approximation model for N saturated 1901 stations.

    Parameters
    ----------
    config:
        The (cw, dc) schedule (default: CA0/CA1 of Table 1).
    timing:
        Slot/transmission durations (default: Table 3 values).
    method:
        ``"markov"`` — numerically exact per-station chain (default);
        ``"recursive"`` — the stage-recursion formulas.  Both encode
        the same process; tests assert they agree.  Wide schedules
        (e.g. 802.11-like windows up to 1024) would make the dense
        chain enormous, so ``"markov"`` silently falls back to the
        equivalent recursion above ``MARKOV_STATE_LIMIT`` states.

    Examples
    --------
    >>> model = Model1901()
    >>> p2 = model.collision_probability(2)
    >>> p7 = model.collision_probability(7)
    >>> 0.0 < p2 < p7 < 0.35
    True
    """

    #: Above this many chain states, "markov" falls back to the
    #: (numerically identical) stage recursion.
    MARKOV_STATE_LIMIT = 20_000

    def __init__(
        self,
        config: Optional[CsmaConfig] = None,
        timing: Optional[TimingConfig] = None,
        method: str = "markov",
    ) -> None:
        self.config = config if config is not None else CsmaConfig.default_1901()
        self.timing = timing if timing is not None else TimingConfig()
        if method == "markov":
            chain_states = sum(
                1 + (w - 1) * (d + 1)
                for w, d in zip(self.config.cw, self.config.dc)
            )
            if chain_states > self.MARKOV_STATE_LIMIT:
                method = "recursive"
                self._solver = RecursiveModel(self.config)
            else:
                self._solver = StationChain(self.config)
        elif method == "recursive":
            self._solver = RecursiveModel(self.config)
        else:
            raise ValueError(f"unknown method {method!r}")
        self.method = method

    def tau_of_gamma(self, gamma: float) -> float:
        """Per-station attempt probability given busy probability γ."""
        return self._solver.tau(gamma)

    def solve(self, num_stations: int) -> NetworkPrediction:
        """Solve the fixed point and evaluate the network formulas.

        Raises :class:`ConvergenceError` (annotated with the model and
        ``N``) if the solver cannot find the operating point.
        """
        try:
            tau = solve_fixed_point(self.tau_of_gamma, num_stations)
        except ConvergenceError as exc:
            raise ConvergenceError(
                f"1901 model ({self.method}) failed for N={num_stations}",
                last_iterate=exc.last_iterate,
                residual=exc.residual,
                iterations=exc.iterations,
            ) from exc
        return network_prediction(tau, num_stations, self.timing)

    def fixed_points(self, num_stations: int) -> List[NetworkPrediction]:
        """All decoupling fixed points (possibly more than one, [5])."""
        try:
            taus = find_all_fixed_points(self.tau_of_gamma, num_stations)
        except ConvergenceError as exc:
            raise ConvergenceError(
                f"1901 model ({self.method}) fixed-point scan failed "
                f"for N={num_stations}",
                last_iterate=exc.last_iterate,
                residual=exc.residual,
                iterations=exc.iterations,
            ) from exc
        return [
            network_prediction(tau, num_stations, self.timing)
            for tau in taus
        ]

    # -- convenience scalar accessors -------------------------------------
    def collision_probability(self, num_stations: int) -> float:
        """γ at the operating point for ``num_stations`` stations."""
        return self.solve(num_stations).collision_probability

    def normalized_throughput(self, num_stations: int) -> float:
        """Normalized saturation throughput for ``num_stations``."""
        return self.solve(num_stations).normalized_throughput

    def mean_access_delay_us(self, num_stations: int) -> float:
        """Mean saturated MAC access delay (µs)."""
        return self.solve(num_stations).mean_access_delay_us
