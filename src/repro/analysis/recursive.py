"""Closed-form stage recursion for the 1901 backoff process ([5]).

This is the analytical counterpart of :mod:`repro.analysis.markov`:
instead of enumerating every (BC, DC) state it exploits the structure
of a backoff stage.  Within stage ``s`` (window ``w_s``, deferral
``d_s``), given a drawn backoff counter ``b`` and per-event busy
probability ``p``:

- the station *attempts* iff at most ``d_s`` of the first ``b`` slot
  events are busy (the deferral jump fires on the (d_s+1)-th busy
  event, before BC can expire), so

      P(attempt | b) = BinomialCDF(d_s; b, p);

- the jump, when it happens, happens at the event carrying the
  (d_s+1)-th busy, i.e. after a negative-binomially distributed number
  of events.

Averaging over ``b ~ U{0, …, w_s − 1}`` gives the per-stage attempt
probability ``x_s`` and expected number of slot events ``n_s``; a tiny
Markov chain over stages then yields the attempt probability

    τ = Σ_s v_s · x_s / Σ_s v_s · n_s

by renewal-reward, where ``v_s`` are the stage visit frequencies.

The module is deliberately implemented independently from the exact
chain so the two can cross-validate each other in tests.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np
from scipy import stats

from ..core.config import CsmaConfig

__all__ = ["StageQuantities", "stage_quantities", "RecursiveModel"]


@dataclasses.dataclass(frozen=True)
class StageQuantities:
    """Per-visit quantities of one backoff stage at busy probability p."""

    #: Probability the visit ends with a transmission attempt.
    attempt_probability: float
    #: Expected number of slot events consumed by the visit (the
    #: attempt event included, the jump event included).
    expected_events: float


def stage_quantities(
    window: int, deferral: int, busy_probability: float
) -> StageQuantities:
    """Compute x_s and n_s for one stage.

    >>> q = stage_quantities(8, 0, 0.0)
    >>> q.attempt_probability
    1.0
    >>> q.expected_events  # (w+1)/2 = mean(b)+1
    4.5
    """
    w, d, p = window, deferral, busy_probability
    if w < 1:
        raise ValueError("window must be >= 1")
    if d < 0:
        raise ValueError("deferral must be >= 0")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"busy probability must be in [0, 1], got {p}")

    if p < 1e-12:
        # Never (or negligibly often) busy: always transmit, after b
        # backoff events.  The cutoff also guards scipy's nbinom
        # against denormal probabilities.
        return StageQuantities(1.0, (w + 1) / 2.0)

    bs = np.arange(w)  # drawn BC values 0..w-1

    # P(jump exactly at event j) does not depend on the drawn b (only
    # j <= b is required): the (d+1)-th busy falls on event j, i.e.
    # j-1-d idle events precede the (d+1)-th busy.  nbinom.pmf(k; r, p)
    # = P(k failures before the r-th success).
    js = np.arange(1, w)  # candidate jump events 1..w-1
    q = np.zeros(w)  # q[j] = P(jump at event j)
    if w > 1:
        valid = js >= d + 1
        if valid.any():
            jv = js[valid]
            q[jv] = stats.nbinom.pmf(jv - 1 - d, d + 1, p)

    # P(attempt | b) = P(no jump within the first b events)
    #               = 1 - sum_{j<=b} q[j]  (cumulative sums, O(w)).
    jump_cdf = np.cumsum(q)
    attempt_given_b = 1.0 - jump_cdf[bs]
    x = float(attempt_given_b.mean())

    # Events if attempting: b + 1 (the attempt event itself).
    events_attempt = (bs + 1.0) * attempt_given_b
    # Events if jumping: sum_{j<=b} j*q[j].
    events_jump = np.cumsum(np.arange(w) * q)[bs]

    n = float((events_attempt + events_jump).mean())
    return StageQuantities(x, n)


class RecursiveModel:
    """τ(γ) via the stage recursion, for any (cw, dc) schedule."""

    def __init__(self, config: CsmaConfig) -> None:
        self.config = config

    def stage_table(self, gamma: float) -> Tuple[StageQuantities, ...]:
        """Per-stage (x_s, n_s) at busy probability γ."""
        return tuple(
            stage_quantities(w, d, gamma)
            for w, d in zip(self.config.cw, self.config.dc)
        )

    def visit_frequencies(self, gamma: float) -> np.ndarray:
        """Stationary visit frequencies of the stage chain.

        Stage transitions per visit: attempt+success → stage 0;
        attempt+collision or deferral jump → next stage (the last stage
        re-enters itself).
        """
        m = self.config.num_stages
        table = self.stage_table(gamma)
        matrix = np.zeros((m, m))
        for s, q in enumerate(table):
            x = q.attempt_probability
            up = x * gamma + (1.0 - x)  # move towards higher stage
            matrix[s, 0] += x * (1.0 - gamma)
            matrix[s, min(s + 1, m - 1)] += up
        # Stationary distribution of the (small) stage chain.
        a = matrix.T - np.eye(m)
        a[-1, :] = 1.0
        rhs = np.zeros(m)
        rhs[-1] = 1.0
        v = np.linalg.solve(a, rhs)
        v = np.clip(v, 0.0, None)
        return v / v.sum()

    def tau(self, gamma: float) -> float:
        """Attempt probability per slot event at busy probability γ."""
        table = self.stage_table(gamma)
        v = self.visit_frequencies(gamma)
        attempts = sum(
            vi * q.attempt_probability for vi, q in zip(v, table)
        )
        events = sum(vi * q.expected_events for vi, q in zip(v, table))
        return float(attempts / events)

    def expected_backoff_events_per_frame(self, gamma: float) -> float:
        """Mean slot events from frame head-of-line to its success."""
        # Events per visit over visits until success; by renewal
        # arguments this is (Σ v_s n_s) / (Σ v_s x_s (1-γ)).
        table = self.stage_table(gamma)
        v = self.visit_frequencies(gamma)
        events = sum(vi * q.expected_events for vi, q in zip(v, table))
        succ = sum(
            vi * q.attempt_probability * (1.0 - gamma)
            for vi, q in zip(v, table)
        )
        if succ <= 0:
            return float("inf")
        return float(events / succ)
