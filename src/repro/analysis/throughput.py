"""Network-level performance formulas shared by all models.

Given the per-station attempt probability τ in a slot event and the
channel-occupancy durations, the network behaves as a renewal process
over slot events (the same structure as the reference simulator's main
loop), yielding the standard Bianchi-style expressions for throughput,
collision probability and delay.
"""

from __future__ import annotations

import dataclasses

from ..core.config import TimingConfig

__all__ = ["NetworkPrediction", "network_prediction"]


@dataclasses.dataclass(frozen=True)
class NetworkPrediction:
    """Model outputs for a network of N homogeneous stations."""

    num_stations: int
    #: Per-station attempt probability per slot event.
    tau: float
    #: Collision probability of an attempt: γ = 1 − (1 − τ)^(N−1).
    collision_probability: float
    #: Fraction of airtime carrying frame payload.
    normalized_throughput: float
    #: P(slot event contains ≥ 1 attempt).
    p_transmission: float
    #: P(slot event is a success).
    p_success: float
    #: Expected duration of a slot event (µs).
    expected_event_duration_us: float
    #: Mean MAC access delay of a frame (µs), saturated stations.
    mean_access_delay_us: float

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def network_prediction(
    tau: float, num_stations: int, timing: TimingConfig
) -> NetworkPrediction:
    """Evaluate the renewal formulas at attempt probability ``tau``.

    - P_tr  = 1 − (1 − τ)^N           (some station attempts)
    - P_s   = N·τ·(1 − τ)^(N−1)       (exactly one attempts)
    - E[T]  = (1 − P_tr)·σ + P_s·Ts + (P_tr − P_s)·Tc
    - S     = P_s·L / E[T]
    - γ     = 1 − (1 − τ)^(N−1)
    - E[D]  = N·E[T] / P_s            (mean time between successes of a
                                       given saturated station)
    """
    if not 0.0 <= tau <= 1.0:
        raise ValueError(f"tau must be in [0, 1], got {tau}")
    if num_stations < 1:
        raise ValueError("num_stations must be >= 1")
    n = num_stations
    p_tr = 1.0 - (1.0 - tau) ** n
    p_s = n * tau * (1.0 - tau) ** (n - 1)
    expected = (
        (1.0 - p_tr) * timing.slot
        + p_s * timing.ts
        + (p_tr - p_s) * timing.tc
    )
    throughput = p_s * timing.frame / expected if expected > 0 else 0.0
    gamma = 1.0 - (1.0 - tau) ** (n - 1)
    delay = n * expected / p_s if p_s > 0 else float("inf")
    return NetworkPrediction(
        num_stations=n,
        tau=tau,
        collision_probability=gamma,
        normalized_throughput=throughput,
        p_transmission=p_tr,
        p_success=p_s,
        expected_event_duration_us=expected,
        mean_access_delay_us=delay,
    )
