"""Model-vs-simulation validation helpers (the Figure 2 methodology).

The paper validates its analysis by overlaying three curves: the
analytical model, the MAC simulator and testbed measurements.  This
module automates the first two (the third comes from
:mod:`repro.experiments`), producing per-N comparison rows with
relative errors.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..core.config import CsmaConfig, ScenarioConfig, TimingConfig
from ..core.results import aggregate
from ..core.simulator import simulate
from .model import Model1901

__all__ = ["ComparisonRow", "compare_model_to_simulation"]


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """Analysis vs. simulation at one network size."""

    num_stations: int
    model_collision_probability: float
    sim_collision_probability: float
    model_throughput: float
    sim_throughput: float

    @property
    def collision_probability_error(self) -> float:
        """|model − sim| (absolute, since the values live in [0, 1])."""
        return abs(
            self.model_collision_probability - self.sim_collision_probability
        )

    @property
    def throughput_relative_error(self) -> float:
        if self.sim_throughput == 0:
            return float("inf")
        return (
            abs(self.model_throughput - self.sim_throughput)
            / self.sim_throughput
        )


def compare_model_to_simulation(
    station_counts: Sequence[int],
    config: Optional[CsmaConfig] = None,
    timing: Optional[TimingConfig] = None,
    sim_time_us: float = 5e7,
    repetitions: int = 3,
    seed: int = 1,
    method: str = "markov",
) -> List[ComparisonRow]:
    """Run model and simulator over ``station_counts`` and tabulate."""
    config = config if config is not None else CsmaConfig.default_1901()
    timing = timing if timing is not None else TimingConfig()
    model = Model1901(config, timing, method=method)
    rows: List[ComparisonRow] = []
    for n in station_counts:
        prediction = model.solve(n)
        scenario = ScenarioConfig.homogeneous(
            num_stations=n,
            csma=config,
            timing=timing,
            sim_time_us=sim_time_us,
            seed=seed,
        )
        agg = aggregate(simulate(scenario, repetitions=repetitions))
        rows.append(
            ComparisonRow(
                num_stations=n,
                model_collision_probability=prediction.collision_probability,
                sim_collision_probability=agg.collision_probability,
                model_throughput=prediction.normalized_throughput,
                sim_throughput=agg.normalized_throughput,
            )
        )
    return rows
