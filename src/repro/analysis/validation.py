"""Model-vs-simulation validation helpers (the Figure 2 methodology).

The paper validates its analysis by overlaying three curves: the
analytical model, the MAC simulator and testbed measurements.  This
module automates the first two (the third comes from
:mod:`repro.experiments`), producing per-N comparison rows with
relative errors.

Simulation runs route through :class:`~repro.runner.batch.BatchRunner`
(the vectorized kernel, with per-point caching and the scalar
fallback), seeded in the *legacy* ``simulate()`` derivation so the
numbers are bit-identical to the historical direct-``simulate()``
implementation — pass ``cache_dir`` to make repeated comparisons (and
the validity harness built on top) incremental.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

from ..core.config import CsmaConfig, ScenarioConfig, TimingConfig
from ..core.results import aggregate

__all__ = ["ComparisonRow", "compare_model_to_simulation"]


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """Analysis vs. simulation at one network size."""

    num_stations: int
    model_collision_probability: float
    sim_collision_probability: float
    model_throughput: float
    sim_throughput: float

    @property
    def collision_probability_error(self) -> float:
        """|model − sim| (absolute, since the values live in [0, 1])."""
        return abs(
            self.model_collision_probability - self.sim_collision_probability
        )

    @property
    def throughput_relative_error(self) -> float:
        """|model − sim| / sim — ``NaN`` when the sim delivered nothing.

        A zero simulated throughput makes the relative error undefined;
        returning ``inf`` (the historical behaviour) poisons any mean
        or percentile downstream.  ``NaN`` plus the :attr:`flagged`
        marker lets aggregation skip the row explicitly instead.
        """
        if self.sim_throughput == 0:
            return float("nan")
        return (
            abs(self.model_throughput - self.sim_throughput)
            / self.sim_throughput
        )

    @property
    def flagged(self) -> bool:
        """Whether any error metric of this row is undefined.

        ``True`` means the relative throughput error is ``NaN`` (the
        simulation delivered zero frames — e.g. a degenerate horizon or
        a starved unsaturated regime) and the row must be excluded from
        error aggregation rather than averaged in.
        """
        return math.isnan(self.throughput_relative_error) or math.isnan(
            self.collision_probability_error
        )


def compare_model_to_simulation(
    station_counts: Sequence[int],
    config: Optional[CsmaConfig] = None,
    timing: Optional[TimingConfig] = None,
    sim_time_us: float = 5e7,
    repetitions: int = 3,
    seed: int = 1,
    method: str = "markov",
    runner=None,
    cache_dir=None,
) -> List[ComparisonRow]:
    """Run model and simulator over ``station_counts`` and tabulate.

    ``runner`` is an optional :class:`~repro.runner.batch.BatchRunner`
    to execute (and cache) the simulation points on; by default a
    cache-less one is created (pass ``cache_dir`` as a shorthand).
    Results are bit-identical to the historical implementation that
    called :func:`~repro.core.simulator.simulate` directly: each
    repetition is seeded via the legacy ``spawn("rep", rep)``
    derivation (:class:`~repro.runner.seeding.SeedSpec.legacy_rep`).
    """
    from ..runner.batch import BatchRunner
    from ..runner.seeding import SeedSpec

    from .model import Model1901

    config = config if config is not None else CsmaConfig.default_1901()
    timing = timing if timing is not None else TimingConfig()
    model = Model1901(config, timing, method=method)
    if runner is None:
        runner = BatchRunner(cache_dir=cache_dir)

    scenarios = [
        ScenarioConfig.homogeneous(
            num_stations=n,
            csma=config,
            timing=timing,
            sim_time_us=sim_time_us,
            seed=seed,
        )
        for n in station_counts
    ]
    pairs = [
        (scenario, SeedSpec(root_seed=seed, explicit_seed=seed, legacy_rep=rep))
        for scenario in scenarios
        for rep in range(repetitions)
    ]
    points = runner.run_points(pairs)

    rows: List[ComparisonRow] = []
    for k, (n, scenario) in enumerate(zip(station_counts, scenarios)):
        prediction = model.solve(n)
        agg = aggregate(
            [
                p.result
                for p in points[k * repetitions : (k + 1) * repetitions]
            ]
        )
        rows.append(
            ComparisonRow(
                num_stations=n,
                model_collision_probability=prediction.collision_probability,
                sim_collision_probability=agg.collision_probability,
                model_throughput=prediction.normalized_throughput,
                sim_throughput=agg.normalized_throughput,
            )
        )
    return rows
