"""Vectorized batch simulation of many (scenario, seed) points.

The struct-of-arrays slot kernel (:mod:`repro.batch.kernel`) advances
thousands of independent saturated-scenario points per process in
lockstep numpy array operations — the ROADMAP's "one refactor that
makes everything else cheap" — while staying **bit-exact** against the
event-by-event :class:`~repro.core.simulator.SlotSimulator`:

- :mod:`repro.batch.lanes` batches the per-lane backoff draws by
  advancing each lane's own PCG64 substream as array state, emulating
  ``Generator.integers`` bit-for-bit (self-tested at first use of the
  vector path; falls back to scalar draws on any divergence);
- :mod:`repro.batch.adapter` makes the kernel and the scalar
  simulator emit comparable per-round records, which the differential
  harness in ``tests/batch/`` asserts equal, round by round.

Scenarios the kernel cannot run (unsaturated arrivals, finite retry
limits) raise :class:`UnsupportedScenario`; callers fall back to the
event-driven paths.  See ``docs/batch-kernel.md`` for the array
layout, the lockstep round algorithm and the support matrix.
"""

from .adapter import (
    KernelTraceRecorder,
    RoundRecord,
    compare_round_records,
    kernel_round_records,
    slotsim_round_records,
)
from .kernel import (
    BatchSlotKernel,
    UnsupportedScenario,
    batch_simulate,
    check_supported,
    supports_scenario,
)
from .lanes import LaneRngs, vector_draws_available

__all__ = [
    "BatchSlotKernel",
    "KernelTraceRecorder",
    "LaneRngs",
    "RoundRecord",
    "UnsupportedScenario",
    "batch_simulate",
    "check_supported",
    "compare_round_records",
    "kernel_round_records",
    "slotsim_round_records",
    "supports_scenario",
    "vector_draws_available",
]
