"""Per-round trace adapter: the differential harness's common language.

The equivalence contract between :class:`~repro.batch.kernel
.BatchSlotKernel` and :class:`~repro.core.simulator.SlotSimulator` is
*per-round bit-exactness*, not just equal end-of-run counters.  To
assert it, both simulators must emit comparable per-round records:

- the scalar simulator already records them — ``record_slots=True``
  keeps a :class:`~repro.core.trace.SlotRecord` (full counter
  snapshot) per slot event and a
  :class:`~repro.core.trace.TransmissionRecord` per channel event;
- the kernel exposes an ``on_round`` hook fired at the exact same
  instant the scalar simulator takes its snapshot (after the
  contention phase, before the feedback phase).

This module folds both sides into one :class:`RoundRecord` shape and
compares sequences of them, so a divergence pinpoints the first round
and field that differ instead of a smeared end-of-run delta.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from ..core.config import ScenarioConfig
from ..core.results import SimulationResult
from ..core.simulator import SlotSimulator
from ..engine.randomness import RandomStreams
from .kernel import BatchSlotKernel

__all__ = [
    "RoundRecord",
    "KernelTraceRecorder",
    "kernel_round_records",
    "slotsim_round_records",
    "compare_round_records",
]

_OUTCOMES = ("idle", "success", "collision")


@dataclasses.dataclass(frozen=True)
class RoundRecord:
    """One slot event in the common per-round comparison shape.

    ``per_station`` holds ``(stage, cw, dc, bc)`` after the contention
    phase — the same quantities :class:`~repro.core.trace.SlotRecord`
    tabulates; ``stations``/``winner``/``stages`` mirror
    :class:`~repro.core.trace.TransmissionRecord` (empty/None for an
    idle round).
    """

    time_us: float
    outcome: str  # "idle" | "success" | "collision"
    stations: Tuple[int, ...]
    winner: Optional[int]
    stages: Tuple[int, ...]
    per_station: Tuple[Tuple[int, int, int, int], ...]


class KernelTraceRecorder:
    """``on_round`` hook collecting a :class:`RoundRecord` per point.

    Attach to a :class:`BatchSlotKernel` via its ``on_round``
    parameter; after the run, ``recorder.records[b]`` is point ``b``'s
    round sequence, directly comparable to
    :func:`slotsim_round_records` output for the same scenario and
    streams.
    """

    def __init__(self, batch_size: int) -> None:
        self.records: List[List[RoundRecord]] = [
            [] for _ in range(batch_size)
        ]

    def __call__(self, kernel: BatchSlotKernel) -> None:
        bpc = kernel.bpc
        for b, scenario in enumerate(kernel.scenarios):
            code = int(kernel.outcome[b])
            if code < 0:  # point already finished
                continue
            n = scenario.num_stations
            attempting = [
                i for i in range(n) if kernel.attempting[b, i]
            ]
            per_station = tuple(
                (
                    # Station.stage: clamped BPC of the last redraw.
                    int(
                        min(
                            max(bpc[b, i] - 1, 0),
                            kernel.last_stage[b, i],
                        )
                    ),
                    int(kernel.cw[b, i]),
                    int(kernel.dc[b, i]),
                    int(kernel.bc[b, i]),
                )
                for i in range(n)
            )
            winner = int(kernel.winner[b]) if code == 1 else None
            self.records[b].append(
                RoundRecord(
                    time_us=float(kernel.t[b]),
                    outcome=_OUTCOMES[code],
                    stations=tuple(attempting),
                    winner=winner,
                    stages=tuple(per_station[i][0] for i in attempting),
                    per_station=per_station,
                )
            )


def kernel_round_records(
    scenarios: Sequence[ScenarioConfig],
    streams: Optional[Sequence[RandomStreams]] = None,
) -> Tuple[List[List[RoundRecord]], List[SimulationResult]]:
    """Run ``scenarios`` through the kernel, recording every round."""
    recorder = KernelTraceRecorder(len(scenarios))
    kernel = BatchSlotKernel(scenarios, streams=streams, on_round=recorder)
    results = kernel.run()
    return recorder.records, results


def slotsim_round_records(
    scenario: ScenarioConfig,
    streams: Optional[RandomStreams] = None,
) -> Tuple[List[RoundRecord], SimulationResult]:
    """Run ``scenario`` through ``SlotSimulator``, as round records.

    Merges the slot-granularity snapshots with the transmission
    records (which carry attempting stations / winner / stages for the
    non-idle rounds) into the common :class:`RoundRecord` shape.
    """
    sim = SlotSimulator(scenario, record_slots=True, streams=streams)
    result = sim.run()
    trace = result.trace
    records: List[RoundRecord] = []
    tx_iter = iter(trace.transmissions)
    for slot in trace.slots:
        if slot.outcome == "idle":
            stations: Tuple[int, ...] = ()
            winner = None
            stages: Tuple[int, ...] = ()
        else:
            tx = next(tx_iter)
            stations = tx.stations
            winner = tx.winner
            stages = tx.stages
        records.append(
            RoundRecord(
                time_us=slot.time_us,
                outcome=slot.outcome,
                stations=stations,
                winner=winner,
                stages=stages,
                per_station=slot.per_station,
            )
        )
    return records, result


def compare_round_records(
    reference: Sequence[RoundRecord],
    candidate: Sequence[RoundRecord],
    limit: int = 5,
) -> List[str]:
    """Describe where two round sequences diverge (empty == identical).

    Reports at most ``limit`` diverging rounds, each pinned to the
    first differing field, so a differential-test failure reads as
    "round 17: outcome success != collision" rather than two opaque
    sequences.
    """
    problems: List[str] = []
    if len(reference) != len(candidate):
        problems.append(
            f"round count {len(reference)} != {len(candidate)}"
        )
    for k, (ref, got) in enumerate(zip(reference, candidate)):
        if ref == got:
            continue
        for field in dataclasses.fields(RoundRecord):
            a = getattr(ref, field.name)
            b = getattr(got, field.name)
            if a != b:
                problems.append(
                    f"round {k}: {field.name} {a!r} != {b!r}"
                )
                break
        if len(problems) >= limit:
            problems.append("...")
            break
    return problems
