"""Vectorized struct-of-arrays slot kernel.

:class:`BatchSlotKernel` advances *many* independent ``(scenario,
seed)`` points per process in lockstep.  Where
:class:`~repro.core.simulator.SlotSimulator` dispatches one Python
method call per station per slot event, the kernel keeps every
counter of every point in ``(batch, station)`` numpy arrays

- ``bc``  — backoff counters,
- ``dc``  — deferral counters,
- ``bpc`` — backoff procedure counters,
- ``cw``  — current contention windows,
- ``state`` — the per-lane FSM state (INIT / IDLE / DORMANT),

plus per-point clocks and outcome counters, and applies the paper's
BC/DC update rules as masked array operations.  One lockstep
iteration is one *slot event per point*: account Poisson arrivals and
wake dormant stations, decrement/redraw counters, find the attempting
stations, classify each point's medium outcome (idle / success /
collision) and apply the feedback phase — all batched across points.

Equivalence is the contract
---------------------------
The kernel is **bit-exact** against ``SlotSimulator``: each
``(point, station)`` lane owns the same named substreams
(``streams.stream("station", i)`` for backoff draws,
``stream("arrivals", i)`` for unsaturated traffic) the scalar
simulator would use, and draws from them *only* at the FSM's redraw /
arrival events, in the same order.  Every counter update mirrors
:meth:`repro.core.station.Station.step` /
:meth:`~repro.core.station.Station.resolve` exactly, so a batch of
points produces, per point, the very numbers an independent
``SlotSimulator`` run would — the differential harness in
``tests/batch/`` locks this per round.  Backoff and interarrival
draws are the only per-lane scalar operations left (a lane's next
variate depends on its own generator state — and the backoff draws
are themselves batched by :class:`~repro.batch.lanes.LaneRngs`);
everything else is array code, which is where the ≥10× throughput
over the event-driven FSM comes from
(``benchmarks/bench_engine_performance.py`` records the ratio).

Supported scenarios
-------------------
Everything :class:`~repro.core.simulator.SlotSimulator` itself runs:
saturated and unsaturated (Poisson-arrival, finite-queue) stations,
heterogeneous mixes, finite retry limits, 1901 and 802.11 schedules.
Retry limits and arrival processes live as additional ``(batch,
station)`` array state (``attempts``/``retry_limit``/``st_drops`` and
``queue``/``next_arrival_us``/...), activated only when a batch
contains such stations so the saturated fast path pays nothing.
Delay recording and slot traces beyond the ``on_round`` hook, PRS
priority resolution and chaos plans remain with the scalar simulator
and the event-driven testbed; see :func:`check_supported`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.config import ScenarioConfig
from ..core.results import SimulationResult, StationStats
from ..core.station import StationState
from ..engine.randomness import RandomStreams
from .lanes import LaneRngs

__all__ = [
    "UnsupportedScenario",
    "check_supported",
    "supports_scenario",
    "BatchSlotKernel",
    "batch_simulate",
]

#: Sentinel "retry limit" for infinite-retry lanes: far above any
#: reachable attempt count, so the drop comparison never fires.
_NO_RETRY_LIMIT = np.int64(2**62)

_INIT = np.int64(StationState.INIT)
_IDLE = np.int64(StationState.IDLE)
_DORMANT = np.int64(StationState.DORMANT)


class UnsupportedScenario(ValueError):
    """The batch kernel cannot run this scenario (use the FSM paths)."""


def check_supported(scenario: ScenarioConfig) -> None:
    """Raise :class:`UnsupportedScenario` unless the kernel can run it.

    The kernel covers the full :class:`~repro.core.config
    .ScenarioConfig` space the scalar
    :class:`~repro.core.simulator.SlotSimulator` runs — saturated and
    unsaturated stations, heterogeneous mixes, finite retry limits,
    1901/802.11 schedules — so this gate currently admits every
    scenario.  It stays in the API (and ``BatchRunner`` keeps calling
    it per point) so a future feature outside the kernel's reach has a
    single place to declare itself, with the scalar fallback already
    wired.  The support-matrix property test
    (``tests/batch/test_support_matrix.py``) holds every admitted
    scenario family to the differential harness.
    """
    # Everything ScenarioConfig can express is supported; validation
    # of the configuration itself happened in its constructor.
    del scenario


def supports_scenario(scenario: ScenarioConfig) -> bool:
    """Whether :class:`BatchSlotKernel` can run ``scenario``."""
    try:
        check_supported(scenario)
    except UnsupportedScenario:
        return False
    return True


class BatchSlotKernel:
    """Lockstep slot-synchronous simulation of a batch of points.

    Parameters
    ----------
    scenarios:
        One :class:`~repro.core.config.ScenarioConfig` per point.
        Points may differ in station count, schedules, timing and
        simulated duration; shorter points simply finish earlier and
        their lanes go inert.
    streams:
        Optional parallel sequence of
        :class:`~repro.engine.randomness.RandomStreams`, one per
        point.  Defaults to ``RandomStreams(scenario.seed)``, exactly
        like ``SlotSimulator``.  Pass the trees from
        :func:`repro.runner.seeding.streams_for` to reproduce runner
        points.  Each tree must be exclusive to this kernel —
        substream generators are stateful (see
        ``RandomStreams.clone``).
    on_round:
        Optional callback invoked once per lockstep iteration, after
        the contention phase and outcome classification but before
        the feedback phase — the exact instant ``SlotSimulator``
        snapshots its per-slot trace records.  Receives the kernel;
        read (do not mutate) the array attributes.  Used by the
        differential trace adapter.
    skip_arrival_draws:
        Suppress the construction-time initial interarrival draws of
        unsaturated lanes.  Only for checkpoint restoration
        (:func:`repro.checkpoint.batch.restore_batch_kernel`), which
        overwrites ``next_arrival_us`` from the snapshot and must not
        advance the restored arrival generators.
    """

    def __init__(
        self,
        scenarios: Sequence[ScenarioConfig],
        streams: Optional[Sequence[RandomStreams]] = None,
        on_round: Optional[Callable[["BatchSlotKernel"], None]] = None,
        skip_arrival_draws: bool = False,
    ) -> None:
        if not scenarios:
            raise ValueError("batch needs at least one scenario")
        for scenario in scenarios:
            check_supported(scenario)
        if streams is not None and len(streams) != len(scenarios):
            raise ValueError(
                f"got {len(streams)} stream trees for "
                f"{len(scenarios)} scenarios"
            )
        self.scenarios = list(scenarios)
        self.on_round = on_round

        B = len(self.scenarios)
        N = max(s.num_stations for s in self.scenarios)
        S = max(
            cfg.csma.num_stages
            for s in self.scenarios
            for cfg in s.stations
        )
        self.batch_size = B
        self.max_stations = N

        # -- static per-point / per-lane configuration ------------------
        #: Lanes that hold a real station (points with fewer stations
        #: than the widest one leave their trailing lanes inert).
        self.lane = np.zeros((B, N), dtype=bool)
        self.cw_sched = np.ones((B, N, S), dtype=np.int64)
        self.dc_sched = np.zeros((B, N, S), dtype=np.int64)
        #: Per-lane ``num_stages - 1`` (the stage clamp).
        self.last_stage = np.zeros((B, N), dtype=np.int64)
        self.slot_us = np.empty(B, dtype=np.float64)
        self.ts_us = np.empty(B, dtype=np.float64)
        self.tc_us = np.empty(B, dtype=np.float64)
        self.sim_time_us = np.empty(B, dtype=np.float64)

        #: Per-lane retry limit (``_NO_RETRY_LIMIT`` = infinite).
        self.retry_limit = np.full((B, N), _NO_RETRY_LIMIT, dtype=np.int64)
        #: Lanes with an unsaturated (Poisson-arrival) station.
        self.unsat = np.zeros((B, N), dtype=bool)
        self.queue_cap = np.zeros((B, N), dtype=np.int64)
        self.mean_interarrival_us = np.zeros((B, N), dtype=np.float64)

        for b, scenario in enumerate(self.scenarios):
            timing = scenario.timing
            self.slot_us[b] = timing.slot
            self.ts_us[b] = timing.ts
            self.tc_us[b] = timing.tc
            self.sim_time_us[b] = scenario.sim_time_us
            for i, cfg in enumerate(scenario.stations):
                csma = cfg.csma
                m = csma.num_stages
                self.lane[b, i] = True
                self.last_stage[b, i] = m - 1
                # Pad short schedules with the last stage's values; the
                # stage index is clamped to last_stage anyway, so the
                # padding is never selected — it only keeps the gather
                # in one rectangular array.
                self.cw_sched[b, i, :m] = csma.cw
                self.cw_sched[b, i, m:] = csma.cw[-1]
                self.dc_sched[b, i, :m] = csma.dc
                self.dc_sched[b, i, m:] = csma.dc[-1]
                if csma.retry_limit is not None:
                    self.retry_limit[b, i] = csma.retry_limit
                if not cfg.saturated:
                    self.unsat[b, i] = True
                    self.queue_cap[b, i] = cfg.queue_capacity
                    self.mean_interarrival_us[b, i] = (
                        1e6 / cfg.arrival_rate_pps
                    )

        #: Whether any lane needs the attempt-count / drop machinery.
        self._track_attempts = bool(
            (self.retry_limit != _NO_RETRY_LIMIT).any()
        )
        #: Whether any lane runs an arrival process.
        self._has_unsat = bool(self.unsat.any())
        #: Saturated-infinite-retry fast path: the feedback phase is
        #: just the winner's frame reset.
        self._plain = not (self._track_attempts or self._has_unsat)

        # -- per-lane RNG streams (the bit-exactness anchor) -------------
        if streams is None:
            streams = [RandomStreams(s.seed) for s in self.scenarios]
        self.streams = list(streams)
        #: Flat (b * N + i) list of per-lane generators; inert lanes
        #: keep ``None`` and never draw.  Exactly the substreams the
        #: scalar simulator's stations would own.
        self._generators: List[Optional[np.random.Generator]] = [None] * (
            B * N
        )
        for b, scenario in enumerate(self.scenarios):
            for i in range(scenario.num_stations):
                self._generators[b * N + i] = self.streams[b].stream(
                    "station", i
                )
        self.rngs = LaneRngs(self._generators)

        #: Flat per-lane arrival generators (unsaturated lanes only) —
        #: exactly the ``stream("arrivals", i)`` substreams the scalar
        #: simulator's ``_ArrivalProcess`` objects would own.  Arrival
        #: events are orders of magnitude rarer than slot events, so
        #: these stay real ``Generator`` objects drawn scalar-ly.
        self._arrival_generators: List[Optional[np.random.Generator]] = [
            None
        ] * (B * N)

        # Flat views used by the redraw gather (C-contiguous, so
        # ``ravel`` aliases the 2-D arrays).
        self._num_sched_stages = S
        self._cw_sched_flat = self.cw_sched.reshape(-1)
        self._dc_sched_flat = self.dc_sched.reshape(-1)
        self._last_stage_flat = self.last_stage.ravel()

        # -- dynamic state (mirrors Station + SlotSimulator loop) --------
        self.bc = np.zeros((B, N), dtype=np.int64)
        self.dc = np.zeros((B, N), dtype=np.int64)
        self.bpc = np.zeros((B, N), dtype=np.int64)
        self.cw = self.cw_sched[:, :, 0].copy()
        #: Per-lane FSM state (:class:`~repro.core.station
        #: .StationState` values INIT / IDLE / DORMANT).  Saturated
        #: points keep every lane in the same INIT-vs-IDLE macro-state
        #: (the medium is slot-synchronous), but an unsaturated lane
        #: can be DORMANT — or freshly woken into INIT — while its
        #: neighbours count down, so the state is per *lane*.
        self.state = np.full((B, N), _INIT, dtype=np.int64)
        #: Transmission attempts for the current frame (mirrors
        #: ``Station.attempts_this_frame``; maintained only when some
        #: lane has a finite retry limit — it is unobservable
        #: otherwise).
        self.attempts = np.zeros((B, N), dtype=np.int64)
        #: Arrival-process state (mirrors ``_ArrivalProcess``; only
        #: unsaturated lanes ever change these).
        self.queue = np.zeros((B, N), dtype=np.int64)
        self.next_arrival_us = np.full((B, N), np.inf, dtype=np.float64)
        self.arrivals = np.zeros((B, N), dtype=np.int64)
        self.losses = np.zeros((B, N), dtype=np.int64)
        self.t = np.zeros(B, dtype=np.float64)
        self.rounds = 0

        self.successes = np.zeros(B, dtype=np.int64)
        self.collisions = np.zeros(B, dtype=np.int64)
        self.collision_events = np.zeros(B, dtype=np.int64)
        self.idle_slots = np.zeros(B, dtype=np.int64)
        self.st_successes = np.zeros((B, N), dtype=np.int64)
        self.st_collisions = np.zeros((B, N), dtype=np.int64)
        self.st_jumps = np.zeros((B, N), dtype=np.int64)
        self.st_drops = np.zeros((B, N), dtype=np.int64)

        # Unsaturated lanes start dormant (``Station.sleep``) with the
        # first interarrival drawn at construction, exactly like
        # ``_ArrivalProcess.__init__``.  ``skip_arrival_draws`` lets
        # checkpoint restoration rebuild the kernel without consuming
        # draws from the restored generators (the dynamic arrays are
        # overwritten right after).
        if self._has_unsat:
            for b, scenario in enumerate(self.scenarios):
                for i, cfg in enumerate(scenario.stations):
                    if cfg.saturated:
                        continue
                    rng = self.streams[b].stream("arrivals", i)
                    self._arrival_generators[b * N + i] = rng
                    self.state[b, i] = _DORMANT
                    if not skip_arrival_draws:
                        self.next_arrival_us[b, i] = float(
                            rng.exponential(
                                self.mean_interarrival_us[b, i]
                            )
                        )

        #: Per-round scratch published for ``on_round`` consumers:
        #: which lanes attempt, and each point's outcome code
        #: (0 idle / 1 success / 2 collision; -1 for finished points).
        self.attempting = np.zeros((B, N), dtype=bool)
        self.outcome = np.full(B, -1, dtype=np.int64)
        self.winner = np.full(B, -1, dtype=np.int64)
        #: Private feedback-phase scratch: lanes that finished their
        #: frame this round (winner, or drop at the retry limit).
        self._frame_done = np.zeros((B, N), dtype=bool)

    # -- lifecycle --------------------------------------------------------
    @property
    def active(self) -> np.ndarray:
        """Boolean (batch,) mask of points still inside their horizon."""
        return self.t <= self.sim_time_us

    @property
    def finished(self) -> bool:
        """Whether every point has consumed its configured sim time."""
        return not bool(self.active.any())

    def run(self) -> List[SimulationResult]:
        """Advance every point to completion and return the results."""
        self.advance(None)
        return self.results()

    def advance(self, max_rounds: Optional[int] = None) -> bool:
        """Run lockstep iterations until done (or ``max_rounds`` more).

        Returns ``True`` once every point has finished.  Pausing
        happens only between rounds, so interleaving ``advance`` calls
        with checkpoint snapshots executes the exact same iterations
        as an uninterrupted run (see :mod:`repro.checkpoint.batch`).
        """
        remaining = max_rounds
        while True:
            active = self.t <= self.sim_time_us
            if not active.any():
                return True
            if remaining is not None:
                if remaining <= 0:
                    return False
                remaining -= 1
            self._round(active)

    def _round(self, active: np.ndarray) -> None:
        """One slot event for every active point (vectorized)."""
        bc, dc, bpc = self.bc, self.dc, self.bpc
        act_lane = active[:, None] & self.lane

        # -- arrivals + wake (top of the SlotSimulator loop) -------------
        if self._has_unsat:
            contending = act_lane & (self.state != _DORMANT)
            due = (
                self.unsat
                & act_lane
                & (self.next_arrival_us <= self.t[:, None])
            )
            if due.any():
                self._advance_arrival_rows(np.flatnonzero(due.ravel()))
                # A dormant station whose queue just became non-empty
                # wakes with a fresh frame (reset_for_new_frame) and
                # contends in this very slot.
                wake = (
                    act_lane
                    & (self.state == _DORMANT)
                    & (self.queue > 0)
                )
                if wake.any():
                    bpc[wake] = 0
                    bc[wake] = 0
                    dc[wake] = 0
                    self.attempts[wake] = 0
                    self.state[wake] = _INIT
                    contending |= wake
        else:
            contending = act_lane

        # -- contention phase (Station.step) -----------------------------
        is_init = self.state == _INIT
        init_lane = contending & is_init
        redraw = init_lane & ((bpc == 0) | (bc == 0) | (dc == 0))
        jump = redraw & (dc == 0) & (bpc > 0) & (bc != 0)
        np.add(self.st_jumps, 1, out=self.st_jumps, where=jump)
        # Busy-slot decrement for INIT lanes that neither redraw nor
        # jump; idle-slot decrement for IDLE lanes.
        decrement = init_lane & ~redraw
        np.subtract(dc, 1, out=dc, where=decrement)
        idle_lane = contending & ~is_init
        np.subtract(bc, 1, out=bc, where=decrement | idle_lane)

        rows = np.flatnonzero(redraw.ravel())
        if rows.size:
            # Reload CW/DC for stage min(BPC, m-1), then draw a fresh
            # BC from each lane's own substream — batched through
            # LaneRngs, bit-identical to per-lane integers() calls.
            bpc_flat = bpc.ravel()
            stage = np.minimum(bpc_flat[rows], self._last_stage_flat[rows])
            sched = rows * self._num_sched_stages + stage
            new_cw = self._cw_sched_flat[sched]
            self.cw.ravel()[rows] = new_cw
            dc.ravel()[rows] = self._dc_sched_flat[sched]
            bpc_flat[rows] += 1
            bc.ravel()[rows] = self.rngs.draw(rows, new_cw)

        # -- medium outcome ----------------------------------------------
        # Dormant lanes keep their (stale) counters, so the mask must
        # come from ``contending``, not from ``bc == 0`` alone.
        attempting = contending & (bc == 0)
        if self._track_attempts:
            np.add(self.attempts, 1, out=self.attempts, where=attempting)
        count = attempting.sum(axis=1)
        idle_pt = active & (count == 0)
        succ_pt = active & (count == 1)
        coll_pt = active & (count >= 2)

        self.attempting = attempting
        outcome = self.outcome
        outcome.fill(-1)
        outcome[idle_pt] = 0
        outcome[succ_pt] = 1
        outcome[coll_pt] = 2
        winner = self.winner
        winner.fill(-1)
        succ_rows = np.flatnonzero(succ_pt)
        if succ_rows.size:
            winner[succ_rows] = attempting[succ_rows].argmax(axis=1)

        if self.on_round is not None:
            # Same instant SlotSimulator records its trace rows: after
            # the contention phase, before the feedback phase.
            self.on_round(self)

        # -- clock + aggregate counters ----------------------------------
        np.add(self.idle_slots, 1, out=self.idle_slots, where=idle_pt)
        np.add(self.successes, 1, out=self.successes, where=succ_pt)
        np.add(
            self.collision_events,
            1,
            out=self.collision_events,
            where=coll_pt,
        )
        np.add(self.collisions, count, out=self.collisions, where=coll_pt)
        dt = np.where(
            idle_pt,
            self.slot_us,
            np.where(succ_pt, self.ts_us, self.tc_us),
        )
        np.add(self.t, dt, out=self.t, where=active)

        # -- feedback phase (Station.resolve) ----------------------------
        cols = None
        if succ_rows.size:
            cols = winner[succ_rows]
            self.st_successes[succ_rows, cols] += 1
            # Winner's resolve: BPC := 0, attempt count cleared.
            bpc[succ_rows, cols] = 0
            if self._plain:
                # Saturated fast path: reset_for_new_frame right away
                # (the next frame contends immediately from stage 0).
                bc[succ_rows, cols] = 0
                dc[succ_rows, cols] = 0
        collided = attempting & coll_pt[:, None]
        np.add(self.st_collisions, 1, out=self.st_collisions, where=collided)
        dropped = None
        if self._track_attempts:
            if cols is not None:
                self.attempts[succ_rows, cols] = 0
            # Collision at the retry limit: drop the frame (resolve's
            # COLLISION branch) — the frame-done handling below treats
            # it exactly like a delivered frame.
            dropped = collided & (self.attempts >= self.retry_limit)
            if dropped.any():
                np.add(self.st_drops, 1, out=self.st_drops, where=dropped)
                bpc[dropped] = 0
                self.attempts[dropped] = 0
            else:
                dropped = None
        # Busy outcome puts every contending station of the point in
        # INIT; an idle slot puts them in the BC-countdown state.
        # Dormant lanes stay dormant (resolve returns early for them).
        busy_lane = contending & (count > 0)[:, None]
        np.copyto(self.state, _INIT, where=busy_lane)
        np.copyto(self.state, _IDLE, where=contending & ~busy_lane)

        if not self._plain and (succ_rows.size or dropped is not None):
            self._finish_frames(succ_rows, cols, dropped)
        self.rounds += 1

    def _finish_frames(
        self,
        succ_rows: np.ndarray,
        cols: Optional[np.ndarray],
        dropped: Optional[np.ndarray],
    ) -> None:
        """Frame-done handling: the main loop's post-``resolve`` branch.

        Saturated lanes reset for the next frame immediately; an
        unsaturated lane consumes its queued frame, accounts arrivals
        up to the *advanced* clock, and either resets (queue still
        non-empty) or goes dormant with its counters preserved
        (``Station.sleep``).
        """
        frame_done = self._frame_done
        frame_done.fill(False)
        if cols is not None:
            frame_done[succ_rows, cols] = True
        if dropped is not None:
            frame_done |= dropped

        if self._has_unsat:
            fd_sat = frame_done & ~self.unsat
            fd_unsat = frame_done & self.unsat
        else:
            fd_sat = frame_done
            fd_unsat = None
        # reset_for_new_frame for saturated finishers (BPC and the
        # attempt count were already cleared by resolve).
        bc = self.bc
        dc = self.dc
        bc[fd_sat] = 0
        dc[fd_sat] = 0
        if fd_unsat is not None and fd_unsat.any():
            # Dequeue first, then account arrivals at the new clock —
            # the same order as the scalar loop, which matters for
            # queue-loss accounting at capacity.
            self.queue[fd_unsat] -= 1
            self._advance_arrival_rows(np.flatnonzero(fd_unsat.ravel()))
            refill = fd_unsat & (self.queue > 0)
            bc[refill] = 0
            dc[refill] = 0
            self.state[fd_unsat & (self.queue == 0)] = _DORMANT

    def _advance_arrival_rows(self, rows: np.ndarray) -> None:
        """Account all due arrivals for the given flat lane indices.

        Mirrors ``_ArrivalProcess.advance`` per lane: arrivals up to
        the owning point's clock enqueue (or count as losses at
        capacity), each followed by a fresh exponential interarrival
        from the lane's own substream — scalar draws, in the same
        order the scalar simulator would make them.
        """
        N = self.max_stations
        t = self.t
        queue = self.queue.ravel()
        cap = self.queue_cap.ravel()
        nxt = self.next_arrival_us.ravel()
        mean = self.mean_interarrival_us.ravel()
        arrivals = self.arrivals.ravel()
        losses = self.losses.ravel()
        for r in rows.tolist():
            now = t[r // N]
            next_us = nxt[r]
            if next_us > now:
                continue
            rng = self._arrival_generators[r]
            mean_us = mean[r]
            while next_us <= now:
                arrivals[r] += 1
                if queue[r] < cap[r]:
                    queue[r] += 1
                else:
                    losses[r] += 1
                next_us += float(rng.exponential(mean_us))
            nxt[r] = next_us

    # -- results ----------------------------------------------------------
    def results(self) -> List[SimulationResult]:
        """Per-point results, identical to ``SlotSimulator.run()``'s."""
        if not self.finished:
            raise RuntimeError("batch has not run to completion")
        out = []
        for b, scenario in enumerate(self.scenarios):
            n = scenario.num_stations
            stats = [
                StationStats(
                    index=i,
                    successes=int(self.st_successes[b, i]),
                    collisions=int(self.st_collisions[b, i]),
                    drops=int(self.st_drops[b, i]),
                    jumps=int(self.st_jumps[b, i]),
                    arrivals=int(self.arrivals[b, i]),
                    queue_losses=int(self.losses[b, i]),
                )
                for i in range(n)
            ]
            out.append(
                SimulationResult(
                    scenario=scenario,
                    duration_us=float(self.t[b]),
                    successes=int(self.successes[b]),
                    collisions=int(self.collisions[b]),
                    collision_events=int(self.collision_events[b]),
                    idle_slots=int(self.idle_slots[b]),
                    stations=stats,
                )
            )
        return out


def batch_simulate(
    scenarios: Sequence[ScenarioConfig],
    streams: Optional[Sequence[RandomStreams]] = None,
) -> List[SimulationResult]:
    """Run a batch of scenarios through the kernel in one call.

    >>> from repro.core.config import ScenarioConfig
    >>> points = [
    ...     ScenarioConfig.homogeneous(2, sim_time_us=1e5, seed=s)
    ...     for s in (1, 2)
    ... ]
    >>> [r.successes > 0 for r in batch_simulate(points)]
    [True, True]
    """
    return BatchSlotKernel(scenarios, streams=streams).run()
