"""Vectorized struct-of-arrays slot kernel for saturated scenarios.

:class:`BatchSlotKernel` advances *many* independent ``(scenario,
seed)`` points per process in lockstep.  Where
:class:`~repro.core.simulator.SlotSimulator` dispatches one Python
method call per station per slot event, the kernel keeps every
counter of every point in ``(batch, station)`` numpy arrays

- ``bc``  — backoff counters,
- ``dc``  — deferral counters,
- ``bpc`` — backoff procedure counters,
- ``cw``  — current contention windows,

plus per-point clocks and outcome counters, and applies the paper's
BC/DC update rules as masked array operations.  One lockstep
iteration is one *slot event per point*: decrement/redraw counters,
find the attempting stations, classify each point's medium outcome
(idle / success / collision) and apply the feedback phase — all
batched across points.

Equivalence is the contract
---------------------------
The kernel is **bit-exact** against ``SlotSimulator``: each
``(point, station)`` lane owns the same named substream
(``streams.stream("station", i)``) the scalar simulator would use,
and draws from it *only* at the FSM's redraw events, in the same
order.  Every counter update mirrors
:meth:`repro.core.station.Station.step` /
:meth:`~repro.core.station.Station.resolve` exactly, so a batch of
points produces, per point, the very numbers an independent
``SlotSimulator`` run would — the differential harness in
``tests/batch/`` locks this per round.  Backoff draws are the only
per-lane scalar operation left (a lane's next variate depends on its
own generator state); everything else is array code, which is where
the ≥10× throughput over the event-driven FSM comes from
(``benchmarks/bench_engine_performance.py`` records the ratio).

Supported scenarios
-------------------
Saturated, single-priority contention — the paper's operating regime
and the large-N workload the ROADMAP targets.  Everything else
(unsaturated arrivals, retry limits, delay/trace recording beyond the
round hook) raises :class:`UnsupportedScenario` so callers fall back
to the event-driven/scalar paths; see :func:`check_supported`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.config import ScenarioConfig
from ..core.results import SimulationResult, StationStats
from ..engine.randomness import RandomStreams
from .lanes import LaneRngs

__all__ = [
    "UnsupportedScenario",
    "check_supported",
    "supports_scenario",
    "BatchSlotKernel",
    "batch_simulate",
]


class UnsupportedScenario(ValueError):
    """The batch kernel cannot run this scenario (use the FSM paths)."""


def check_supported(scenario: ScenarioConfig) -> None:
    """Raise :class:`UnsupportedScenario` unless the kernel can run it.

    The kernel handles the paper's operating regime: every station
    saturated (always has a frame pending) and contending in a single
    priority class with infinite retries.  Chaos plans, PRS priority
    resolution and unsaturated traffic live in the event-driven
    testbed and the scalar simulator.
    """
    for i, cfg in enumerate(scenario.stations):
        if not cfg.saturated:
            raise UnsupportedScenario(
                f"station {i} is unsaturated (arrival_rate_pps="
                f"{cfg.arrival_rate_pps}); the batch kernel only "
                "handles saturated stations"
            )
        if cfg.csma.retry_limit is not None:
            raise UnsupportedScenario(
                f"station {i} has a finite retry limit "
                f"({cfg.csma.retry_limit}); the batch kernel assumes "
                "the paper's infinite retries"
            )


def supports_scenario(scenario: ScenarioConfig) -> bool:
    """Whether :class:`BatchSlotKernel` can run ``scenario``."""
    try:
        check_supported(scenario)
    except UnsupportedScenario:
        return False
    return True


class BatchSlotKernel:
    """Lockstep slot-synchronous simulation of a batch of points.

    Parameters
    ----------
    scenarios:
        One :class:`~repro.core.config.ScenarioConfig` per point.
        Points may differ in station count, schedules, timing and
        simulated duration; shorter points simply finish earlier and
        their lanes go inert.
    streams:
        Optional parallel sequence of
        :class:`~repro.engine.randomness.RandomStreams`, one per
        point.  Defaults to ``RandomStreams(scenario.seed)``, exactly
        like ``SlotSimulator``.  Pass the trees from
        :func:`repro.runner.seeding.streams_for` to reproduce runner
        points.  Each tree must be exclusive to this kernel —
        substream generators are stateful (see
        ``RandomStreams.clone``).
    on_round:
        Optional callback invoked once per lockstep iteration, after
        the contention phase and outcome classification but before
        the feedback phase — the exact instant ``SlotSimulator``
        snapshots its per-slot trace records.  Receives the kernel;
        read (do not mutate) the array attributes.  Used by the
        differential trace adapter.
    """

    def __init__(
        self,
        scenarios: Sequence[ScenarioConfig],
        streams: Optional[Sequence[RandomStreams]] = None,
        on_round: Optional[Callable[["BatchSlotKernel"], None]] = None,
    ) -> None:
        if not scenarios:
            raise ValueError("batch needs at least one scenario")
        for scenario in scenarios:
            check_supported(scenario)
        if streams is not None and len(streams) != len(scenarios):
            raise ValueError(
                f"got {len(streams)} stream trees for "
                f"{len(scenarios)} scenarios"
            )
        self.scenarios = list(scenarios)
        self.on_round = on_round

        B = len(self.scenarios)
        N = max(s.num_stations for s in self.scenarios)
        S = max(
            cfg.csma.num_stages
            for s in self.scenarios
            for cfg in s.stations
        )
        self.batch_size = B
        self.max_stations = N

        # -- static per-point / per-lane configuration ------------------
        #: Lanes that hold a real station (points with fewer stations
        #: than the widest one leave their trailing lanes inert).
        self.lane = np.zeros((B, N), dtype=bool)
        self.cw_sched = np.ones((B, N, S), dtype=np.int64)
        self.dc_sched = np.zeros((B, N, S), dtype=np.int64)
        #: Per-lane ``num_stages - 1`` (the stage clamp).
        self.last_stage = np.zeros((B, N), dtype=np.int64)
        self.slot_us = np.empty(B, dtype=np.float64)
        self.ts_us = np.empty(B, dtype=np.float64)
        self.tc_us = np.empty(B, dtype=np.float64)
        self.sim_time_us = np.empty(B, dtype=np.float64)

        for b, scenario in enumerate(self.scenarios):
            timing = scenario.timing
            self.slot_us[b] = timing.slot
            self.ts_us[b] = timing.ts
            self.tc_us[b] = timing.tc
            self.sim_time_us[b] = scenario.sim_time_us
            for i, cfg in enumerate(scenario.stations):
                csma = cfg.csma
                m = csma.num_stages
                self.lane[b, i] = True
                self.last_stage[b, i] = m - 1
                # Pad short schedules with the last stage's values; the
                # stage index is clamped to last_stage anyway, so the
                # padding is never selected — it only keeps the gather
                # in one rectangular array.
                self.cw_sched[b, i, :m] = csma.cw
                self.cw_sched[b, i, m:] = csma.cw[-1]
                self.dc_sched[b, i, :m] = csma.dc
                self.dc_sched[b, i, m:] = csma.dc[-1]

        # -- per-lane RNG streams (the bit-exactness anchor) -------------
        if streams is None:
            streams = [RandomStreams(s.seed) for s in self.scenarios]
        self.streams = list(streams)
        #: Flat (b * N + i) list of per-lane generators; inert lanes
        #: keep ``None`` and never draw.  Exactly the substreams the
        #: scalar simulator's stations would own.
        self._generators: List[Optional[np.random.Generator]] = [None] * (
            B * N
        )
        for b, scenario in enumerate(self.scenarios):
            for i in range(scenario.num_stations):
                self._generators[b * N + i] = self.streams[b].stream(
                    "station", i
                )
        self.rngs = LaneRngs(self._generators)

        # Flat views used by the redraw gather (C-contiguous, so
        # ``ravel`` aliases the 2-D arrays).
        self._num_sched_stages = S
        self._cw_sched_flat = self.cw_sched.reshape(-1)
        self._dc_sched_flat = self.dc_sched.reshape(-1)
        self._last_stage_flat = self.last_stage.ravel()

        # -- dynamic state (mirrors Station + SlotSimulator loop) --------
        self.bc = np.zeros((B, N), dtype=np.int64)
        self.dc = np.zeros((B, N), dtype=np.int64)
        self.bpc = np.zeros((B, N), dtype=np.int64)
        self.cw = self.cw_sched[:, :, 0].copy()
        #: Whether the point's previous slot event was busy (stations
        #: in the INIT state) — per *point*: the synchronous medium
        #: puts every station of a point in the same macro-state.
        self.in_init = np.ones(B, dtype=bool)
        self.t = np.zeros(B, dtype=np.float64)
        self.rounds = 0

        self.successes = np.zeros(B, dtype=np.int64)
        self.collisions = np.zeros(B, dtype=np.int64)
        self.collision_events = np.zeros(B, dtype=np.int64)
        self.idle_slots = np.zeros(B, dtype=np.int64)
        self.st_successes = np.zeros((B, N), dtype=np.int64)
        self.st_collisions = np.zeros((B, N), dtype=np.int64)
        self.st_jumps = np.zeros((B, N), dtype=np.int64)

        #: Per-round scratch published for ``on_round`` consumers:
        #: which lanes attempt, and each point's outcome code
        #: (0 idle / 1 success / 2 collision; -1 for finished points).
        self.attempting = np.zeros((B, N), dtype=bool)
        self.outcome = np.full(B, -1, dtype=np.int64)
        self.winner = np.full(B, -1, dtype=np.int64)

    # -- lifecycle --------------------------------------------------------
    @property
    def active(self) -> np.ndarray:
        """Boolean (batch,) mask of points still inside their horizon."""
        return self.t <= self.sim_time_us

    @property
    def finished(self) -> bool:
        """Whether every point has consumed its configured sim time."""
        return not bool(self.active.any())

    def run(self) -> List[SimulationResult]:
        """Advance every point to completion and return the results."""
        self.advance(None)
        return self.results()

    def advance(self, max_rounds: Optional[int] = None) -> bool:
        """Run lockstep iterations until done (or ``max_rounds`` more).

        Returns ``True`` once every point has finished.  Pausing
        happens only between rounds, so interleaving ``advance`` calls
        with checkpoint snapshots executes the exact same iterations
        as an uninterrupted run (see :mod:`repro.checkpoint.batch`).
        """
        remaining = max_rounds
        while True:
            active = self.t <= self.sim_time_us
            if not active.any():
                return True
            if remaining is not None:
                if remaining <= 0:
                    return False
                remaining -= 1
            self._round(active)

    def _round(self, active: np.ndarray) -> None:
        """One slot event for every active point (vectorized)."""
        bc, dc, bpc = self.bc, self.dc, self.bpc
        act_lane = active[:, None] & self.lane

        # -- contention phase (Station.step) -----------------------------
        init_lane = act_lane & self.in_init[:, None]
        redraw = init_lane & ((bpc == 0) | (bc == 0) | (dc == 0))
        jump = redraw & (dc == 0) & (bpc > 0) & (bc != 0)
        np.add(self.st_jumps, 1, out=self.st_jumps, where=jump)
        # Busy-slot decrement for INIT lanes that neither redraw nor
        # jump; idle-slot decrement for IDLE lanes.
        decrement = init_lane & ~redraw
        np.subtract(dc, 1, out=dc, where=decrement)
        idle_lane = act_lane & ~self.in_init[:, None]
        np.subtract(bc, 1, out=bc, where=decrement | idle_lane)

        rows = np.flatnonzero(redraw.ravel())
        if rows.size:
            # Reload CW/DC for stage min(BPC, m-1), then draw a fresh
            # BC from each lane's own substream — batched through
            # LaneRngs, bit-identical to per-lane integers() calls.
            bpc_flat = bpc.ravel()
            stage = np.minimum(bpc_flat[rows], self._last_stage_flat[rows])
            sched = rows * self._num_sched_stages + stage
            new_cw = self._cw_sched_flat[sched]
            self.cw.ravel()[rows] = new_cw
            dc.ravel()[rows] = self._dc_sched_flat[sched]
            bpc_flat[rows] += 1
            bc.ravel()[rows] = self.rngs.draw(rows, new_cw)

        # -- medium outcome ----------------------------------------------
        attempting = act_lane & (bc == 0)
        count = attempting.sum(axis=1)
        idle_pt = active & (count == 0)
        succ_pt = active & (count == 1)
        coll_pt = active & (count >= 2)

        self.attempting = attempting
        outcome = self.outcome
        outcome.fill(-1)
        outcome[idle_pt] = 0
        outcome[succ_pt] = 1
        outcome[coll_pt] = 2
        winner = self.winner
        winner.fill(-1)
        succ_rows = np.flatnonzero(succ_pt)
        if succ_rows.size:
            winner[succ_rows] = attempting[succ_rows].argmax(axis=1)

        if self.on_round is not None:
            # Same instant SlotSimulator records its trace rows: after
            # the contention phase, before the feedback phase.
            self.on_round(self)

        # -- clock + aggregate counters ----------------------------------
        np.add(self.idle_slots, 1, out=self.idle_slots, where=idle_pt)
        np.add(self.successes, 1, out=self.successes, where=succ_pt)
        np.add(
            self.collision_events,
            1,
            out=self.collision_events,
            where=coll_pt,
        )
        np.add(self.collisions, count, out=self.collisions, where=coll_pt)
        dt = np.where(
            idle_pt,
            self.slot_us,
            np.where(succ_pt, self.ts_us, self.tc_us),
        )
        np.add(self.t, dt, out=self.t, where=active)

        # -- feedback phase (Station.resolve) ----------------------------
        if succ_rows.size:
            cols = winner[succ_rows]
            self.st_successes[succ_rows, cols] += 1
            # Winner: BPC := 0, then reset_for_new_frame (saturated:
            # the next frame contends immediately from stage 0).
            bpc[succ_rows, cols] = 0
            bc[succ_rows, cols] = 0
            dc[succ_rows, cols] = 0
        collided = attempting & coll_pt[:, None]
        np.add(self.st_collisions, 1, out=self.st_collisions, where=collided)
        # Busy outcome puts every station of the point in INIT; an
        # idle slot puts them all in the BC-countdown state.
        np.copyto(self.in_init, count > 0, where=active)
        self.rounds += 1

    # -- results ----------------------------------------------------------
    def results(self) -> List[SimulationResult]:
        """Per-point results, identical to ``SlotSimulator.run()``'s."""
        if not self.finished:
            raise RuntimeError("batch has not run to completion")
        out = []
        for b, scenario in enumerate(self.scenarios):
            n = scenario.num_stations
            stats = [
                StationStats(
                    index=i,
                    successes=int(self.st_successes[b, i]),
                    collisions=int(self.st_collisions[b, i]),
                    drops=0,
                    jumps=int(self.st_jumps[b, i]),
                    arrivals=0,
                    queue_losses=0,
                )
                for i in range(n)
            ]
            out.append(
                SimulationResult(
                    scenario=scenario,
                    duration_us=float(self.t[b]),
                    successes=int(self.successes[b]),
                    collisions=int(self.collisions[b]),
                    collision_events=int(self.collision_events[b]),
                    idle_slots=int(self.idle_slots[b]),
                    stations=stats,
                )
            )
        return out


def batch_simulate(
    scenarios: Sequence[ScenarioConfig],
    streams: Optional[Sequence[RandomStreams]] = None,
) -> List[SimulationResult]:
    """Run a batch of scenarios through the kernel in one call.

    >>> from repro.core.config import ScenarioConfig
    >>> points = [
    ...     ScenarioConfig.homogeneous(2, sim_time_us=1e5, seed=s)
    ...     for s in (1, 2)
    ... ]
    >>> [r.successes > 0 for r in batch_simulate(points)]
    [True, True]
    """
    return BatchSlotKernel(scenarios, streams=streams).run()
