"""Vectorized per-lane RNG: batched, bit-exact ``Generator.integers``.

The batch kernel's equivalence contract requires every ``(point,
station)`` lane to draw backoffs from its *own*
:class:`numpy.random.Generator` substream, in FSM order — which naively
costs one Python-level ``Generator.integers`` call per redraw (~1 µs
each) and dominates the kernel's runtime.

:class:`LaneRngs` removes that bottleneck by advancing all lanes'
generators *as arrays*: it lifts each lane's PCG64 state (the 128-bit
LCG state/increment plus the buffered-uint32 half-word) into numpy
arrays and reimplements exactly the code path
``Generator.integers(0, cw)`` takes for ranges below 2**32 —
PCG64 XSL-RR 128/64 output, the low-half-first uint32 buffer, and
Lemire's bounded rejection sampling on 32-bit words (including the
no-consumption shortcut for a range of 1).  A draw through
:meth:`LaneRngs.draw` therefore consumes and produces *bit-identical*
values to calling ``integers(0, cw)`` on the lane's own generator.

Because this mirrors numpy internals, it is guarded twice:

- :func:`vector_draws_available` runs a self-test on first use —
  thousands of interleaved draws across range shapes (powers of two,
  odd ranges, range 1) compared against real ``Generator`` objects.
  Any divergence (e.g. a future numpy changing its bounded-integer
  algorithm) disables the vector path for the process and the kernel
  falls back to per-lane scalar calls — slower, never wrong.
- The differential harness in ``tests/batch/`` re-proves kernel ==
  FSM equality on every run.

``REPRO_BATCH_SCALAR_DRAWS=1`` forces the scalar fallback (used by the
tests to prove both paths agree).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["LaneRngs", "vector_draws_available"]

_U64 = np.uint64
#: PCG64's 128-bit LCG multiplier (PCG_DEFAULT_MULTIPLIER_128).
_MULT_HI = _U64(2549297995355413924)
_MULT_LO = _U64(4865540595714422341)
_M32 = _U64(0xFFFFFFFF)
_SH32 = _U64(32)

#: Cached self-test verdict (None = not yet run).
_VECTOR_OK: Optional[bool] = None


def _mul128(ahi, alo, bhi, blo):
    """(ahi:alo) * (bhi:blo) mod 2**128, in 64-bit numpy lanes."""
    a0 = alo & _M32
    a1 = alo >> _SH32
    b0 = blo & _M32
    b1 = blo >> _SH32
    p00 = a0 * b0
    p01 = a0 * b1
    p10 = a1 * b0
    mid = (p00 >> _SH32) + (p01 & _M32) + (p10 & _M32)
    lo = (p00 & _M32) | ((mid & _M32) << _SH32)
    carry = (mid >> _SH32) + (p01 >> _SH32) + (p10 >> _SH32) + a1 * b1
    hi = ahi * blo + alo * bhi + carry
    return hi, lo


def _pcg64_step(shi, slo, ihi, ilo):
    """state = state * MULT + inc (the 128-bit LCG advance)."""
    hi, lo = _mul128(shi, slo, _MULT_HI, _MULT_LO)
    lo2 = lo + ilo
    hi2 = hi + ihi + (lo2 < lo).astype(_U64)
    return hi2, lo2


def _pcg64_output(shi, slo):
    """XSL-RR 128/64: rotate (hi ^ lo) right by the state's top 6 bits."""
    rot = shi >> _U64(58)
    x = shi ^ slo
    left = x << ((_U64(64) - rot) % _U64(64))
    return (x >> rot) | np.where(rot == _U64(0), _U64(0), left)


class LaneRngs:
    """A fixed set of per-lane PCG64 generators, advanced in batch.

    Parameters
    ----------
    generators:
        One ``numpy.random.Generator`` per lane (``None`` entries make
        inert lanes that must never draw).  When every real lane is
        PCG64-backed and the self-test passes, draws run vectorized;
        otherwise they fall back to per-lane scalar ``integers`` calls.

    The instance is picklable either way (arrays, or the generator
    objects themselves), which is what the batch checkpoint snapshots.
    """

    def __init__(
        self,
        generators: Sequence[Optional[np.random.Generator]],
        _force_vector: Optional[bool] = None,
    ):
        self.num_lanes = len(generators)
        if _force_vector is None:
            _force_vector = vector_draws_available()
        self.vectorized = _force_vector and all(
            g is None or isinstance(g.bit_generator, np.random.PCG64)
            for g in generators
        )
        if self.vectorized:
            n = self.num_lanes
            self.shi = np.zeros(n, dtype=_U64)
            self.slo = np.zeros(n, dtype=_U64)
            self.ihi = np.zeros(n, dtype=_U64)
            self.ilo = np.zeros(n, dtype=_U64)
            self.has_uint32 = np.zeros(n, dtype=bool)
            self.uinteger = np.zeros(n, dtype=_U64)
            mask = _M32 | (_M32 << _SH32)  # 2**64 - 1 as a python int
            for j, gen in enumerate(generators):
                if gen is None:
                    continue
                raw = gen.bit_generator.state
                state = raw["state"]["state"]
                inc = raw["state"]["inc"]
                self.shi[j] = (state >> 64) & int(mask)
                self.slo[j] = state & int(mask)
                self.ihi[j] = (inc >> 64) & int(mask)
                self.ilo[j] = inc & int(mask)
                self.has_uint32[j] = bool(raw["has_uint32"])
                self.uinteger[j] = raw["uinteger"]
            self._gens: Optional[List] = None
        else:
            self._gens = list(generators)

    # -- draws -------------------------------------------------------------
    def draw(self, rows: np.ndarray, cw: np.ndarray) -> np.ndarray:
        """``integers(0, cw[k])`` on each lane ``rows[k]``, batched.

        ``rows`` are lane indices (each at most once per call, FSM
        order is per-lane so intra-call order is immaterial); ``cw``
        their contention windows (``>= 1``, ``< 2**32``).  Returns the
        drawn backoff counters as int64.
        """
        if not self.vectorized:
            gens = self._gens
            return np.array(
                [
                    int(gens[j].integers(0, w))
                    for j, w in zip(rows.tolist(), cw.tolist())
                ],
                dtype=np.int64,
            )
        with np.errstate(over="ignore"):
            return self._draw_vector(rows, cw)

    def _draw_vector(self, rows, cw) -> np.ndarray:
        rng = cw.astype(_U64) - _U64(1)  # inclusive max, Lemire's "rng"
        # Gather lane state once; scatter back once at the end.
        shi = self.shi[rows]
        slo = self.slo[rows]
        has = self.has_uint32[rows]
        ui = self.uinteger[rows]

        live = rng > _U64(0)  # rng == 0 consumes nothing, returns 0
        rng_excl = (rng + _U64(1)) & _M32
        m = np.zeros(len(rows), dtype=_U64)
        if live.any():
            word = self._masked_next32(rows, shi, slo, has, ui, live)
            m = word * rng_excl
            leftover = m & _M32
            redo = live & (leftover < rng_excl)
            if redo.any():
                threshold = (_M32 - rng) % np.where(
                    rng_excl == _U64(0), _U64(1), rng_excl
                )
                while True:
                    redo &= leftover < threshold
                    if not redo.any():
                        break
                    word = self._masked_next32(rows, shi, slo, has, ui, redo)
                    m = np.where(redo, word * rng_excl, m)
                    leftover = m & _M32
        value = np.where(live, m >> _SH32, _U64(0))

        self.shi[rows] = shi
        self.slo[rows] = slo
        self.has_uint32[rows] = has
        self.uinteger[rows] = ui
        return value.astype(np.int64)

    def _masked_next32(self, rows, shi, slo, has, ui, mask):
        """``_next32`` for only the lanes selected by ``mask``."""
        out = np.where(has & mask, ui, _U64(0))
        need = mask & ~has
        if need.any():
            nhi, nlo = _pcg64_step(shi, slo, self.ihi[rows], self.ilo[rows])
            shi[need] = nhi[need]
            slo[need] = nlo[need]
            word = _pcg64_output(shi, slo)
            out = np.where(need, word & _M32, out)
            ui[need] = (word >> _SH32)[need]
        has[mask] = ~has[mask]
        return out & _M32

    # -- interop -----------------------------------------------------------
    def write_back(
        self, generators: Sequence[Optional[np.random.Generator]]
    ) -> None:
        """Sync the lanes' advanced states back into real generators.

        After this, calling ``integers`` on a lane's generator
        continues its stream exactly where the batched draws left it —
        proven by ``tests/batch/test_lanes.py``.  No-op in scalar mode
        (the generators were advanced directly).
        """
        if not self.vectorized:
            return
        for j, gen in enumerate(generators):
            if gen is None:
                continue
            raw = gen.bit_generator.state
            raw["state"]["state"] = (int(self.shi[j]) << 64) | int(
                self.slo[j]
            )
            raw["has_uint32"] = int(bool(self.has_uint32[j]))
            raw["uinteger"] = int(self.uinteger[j])
            gen.bit_generator.state = raw


def _selftest() -> bool:
    """Interleaved vector-vs-scalar draws across awkward range shapes."""
    widths = [1, 2, 7, 8, 16, 32, 33, 64, 100, 255, 1000, 2**16, 2**31]

    def make():
        return [
            np.random.default_rng(
                np.random.SeedSequence(entropy=20260808, spawn_key=(k,))
            )
            for k in range(len(widths))
        ]

    try:
        vec_gens, ref_gens = make(), make()
        lanes = LaneRngs(vec_gens, _force_vector=True)
        if not lanes.vectorized:
            return False
        rows = np.arange(len(widths))
        cw = np.array(widths, dtype=np.int64)
        with np.errstate(over="ignore"):
            for _ in range(512):
                got = lanes._draw_vector(rows, cw)
                want = [
                    int(g.integers(0, w)) for g, w in zip(ref_gens, widths)
                ]
                if got.tolist() != want:
                    return False
        # Writing the advanced state back must continue the streams
        # exactly where the batched draws left them.
        lanes.write_back(vec_gens)
        cont = [int(g.integers(0, w)) for g, w in zip(vec_gens, widths)]
        ref_cont = [int(g.integers(0, w)) for g, w in zip(ref_gens, widths)]
        return cont == ref_cont
    except Exception:
        return False


def vector_draws_available() -> bool:
    """Whether the vectorized draw path is proven safe on this numpy.

    The verdict is computed once per process.  Returns ``False`` when
    ``REPRO_BATCH_SCALAR_DRAWS=1`` or when the self-test finds any
    divergence from real ``Generator.integers`` draws.
    """
    global _VECTOR_OK
    if os.environ.get("REPRO_BATCH_SCALAR_DRAWS") == "1":
        return False
    if _VECTOR_OK is None:
        _VECTOR_OK = _selftest()
    return _VECTOR_OK
