"""Configuration boosting: search for better (CW, DC) schedules.

- :mod:`repro.boost.objectives` — scoring objectives and the
  protocol-independent throughput upper bound;
- :mod:`repro.boost.search` — candidate families and model-driven
  search, with simulation re-validation;
- :mod:`repro.boost.tradeoff` — CW/DC ablation curves;
- :mod:`repro.boost.adaptive` — per-N and robust recommendations plus
  the default-vs-boosted report.
"""

from .adaptive import BoostRow, boost_report, recommend_for_n, recommend_robust
from .asymptotics import (
    collision_cost_slots,
    optimal_single_stage_cw,
    optimal_tau_asymptotic,
)
from .objectives import (
    Objective,
    mean_throughput,
    optimal_tau,
    throughput_at_n,
    throughput_upper_bound,
    worst_case_throughput,
)
from .search import (
    CandidateScore,
    default_candidates,
    deferral_family,
    evaluate_candidate,
    search,
    single_stage_family,
    standard_family,
    validate_by_simulation,
)
from .tradeoff import (
    TradeoffPoint,
    cw_sweep,
    dc_sweep,
    deferral_ablation,
    disable_deferral,
    scale_deferral,
)

__all__ = [
    "BoostRow",
    "CandidateScore",
    "Objective",
    "TradeoffPoint",
    "boost_report",
    "collision_cost_slots",
    "cw_sweep",
    "optimal_single_stage_cw",
    "optimal_tau_asymptotic",
    "dc_sweep",
    "default_candidates",
    "deferral_ablation",
    "deferral_family",
    "disable_deferral",
    "evaluate_candidate",
    "mean_throughput",
    "optimal_tau",
    "recommend_for_n",
    "recommend_robust",
    "scale_deferral",
    "search",
    "single_stage_family",
    "standard_family",
    "throughput_at_n",
    "throughput_upper_bound",
    "validate_by_simulation",
    "worst_case_throughput",
]
