"""N-aware configuration recommendation ("boosting" deliverable).

Two regimes:

- when the network size N is known (e.g. measured by the CCo and
  broadcast in beacons), :func:`recommend_for_n` searches the candidate
  families for the best schedule at that N;
- when N is unknown, :func:`recommend_robust` maximizes the worst-case
  throughput over an N range — the deployable recommendation.

:func:`boost_report` assembles the before/after comparison (default
1901 vs. boosted) that the benchmark suite prints.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from ..analysis.model import Model1901
from ..core.config import CsmaConfig, TimingConfig
from .objectives import (
    throughput_at_n,
    throughput_upper_bound,
    worst_case_throughput,
)
from .search import CandidateScore, default_candidates, search

__all__ = ["recommend_for_n", "recommend_robust", "BoostRow", "boost_report"]


def recommend_for_n(
    num_stations: int,
    candidates: Optional[Sequence[CsmaConfig]] = None,
    timing: Optional[TimingConfig] = None,
) -> CandidateScore:
    """Best candidate configuration for a known network size."""
    pool = list(candidates) if candidates is not None else default_candidates()
    best = search(pool, throughput_at_n(num_stations), timing, top=1)
    return best[0]


def recommend_robust(
    station_counts: Sequence[int],
    candidates: Optional[Sequence[CsmaConfig]] = None,
    timing: Optional[TimingConfig] = None,
    runner=None,
) -> CandidateScore:
    """Best worst-case candidate over a range of network sizes.

    ``runner`` (a :class:`repro.runner.ExperimentRunner`) parallelizes
    and caches the candidate evaluation.
    """
    pool = list(candidates) if candidates is not None else default_candidates()
    best = search(
        pool, worst_case_throughput(station_counts), timing, top=1,
        runner=runner,
    )
    return best[0]


@dataclasses.dataclass(frozen=True)
class BoostRow:
    """Default vs. boosted configuration at one network size."""

    num_stations: int
    default_throughput: float
    boosted_throughput: float
    upper_bound: float
    default_collision_probability: float
    boosted_collision_probability: float

    @property
    def gain_percent(self) -> float:
        """Relative throughput improvement of the boosted config."""
        if self.default_throughput == 0:
            return float("inf")
        return 100.0 * (
            self.boosted_throughput / self.default_throughput - 1.0
        )


def boost_report(
    station_counts: Sequence[int],
    boosted: Optional[CsmaConfig] = None,
    timing: Optional[TimingConfig] = None,
    runner=None,
) -> Tuple[CsmaConfig, List[BoostRow]]:
    """Compare default 1901 against a boosted configuration per N.

    If ``boosted`` is not given, the robust recommendation over
    ``station_counts`` is used (searched through ``runner`` when one
    is supplied).
    """
    timing = timing if timing is not None else TimingConfig()
    if boosted is None:
        boosted = recommend_robust(
            station_counts, timing=timing, runner=runner
        ).config
    default_model = Model1901(CsmaConfig.default_1901(), timing, "recursive")
    boosted_model = Model1901(boosted, timing, "recursive")
    rows = []
    for n in station_counts:
        d = default_model.solve(n)
        b = boosted_model.solve(n)
        rows.append(
            BoostRow(
                num_stations=n,
                default_throughput=d.normalized_throughput,
                boosted_throughput=b.normalized_throughput,
                upper_bound=throughput_upper_bound(n, timing),
                default_collision_probability=d.collision_probability,
                boosted_collision_probability=b.collision_probability,
            )
        )
    return boosted, rows
