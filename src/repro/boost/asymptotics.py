"""Closed-form guidance for window sizing (large-N asymptotics).

For a slotted CSMA network the throughput-optimal attempt probability
is approximately

    τ* ≈ (1/N) · sqrt(2σ / T̄c)

(σ the slot duration, T̄c the collision cost): balancing the expected
idle time against the expected collision time per successful
transmission.  A single-stage protocol with window W and a
*non-expiring* deferral counter attempts with τ = 2/(W+1) regardless
of load, so the optimal fixed window grows linearly in N:

    W*(N) ≈ N · sqrt(2·T̄c/σ) − 1.

Subtlety: a single-stage schedule with d₀ = 0 behaves differently —
every busy slot makes it *redraw* BC (the 1901 jump re-enters the same
stage), discarding countdown progress and *lowering* its attempt rate
under load; the τ = 2/(W+1) identity needs dc = cw (no jumps).  Tests
pin both behaviours.

These formulas turn the numeric search of :mod:`repro.boost.search`
into design rules-of-thumb; tests check them against the exact numeric
optima.
"""

from __future__ import annotations

import math

from ..core.config import TimingConfig

__all__ = [
    "optimal_tau_asymptotic",
    "optimal_single_stage_cw",
    "collision_cost_slots",
]


def collision_cost_slots(timing: TimingConfig) -> float:
    """Collision duration in slot units (T̄c/σ)."""
    return timing.tc / timing.slot


def optimal_tau_asymptotic(num_stations: int, timing: TimingConfig) -> float:
    """τ* ≈ sqrt(2σ/Tc)/N — the classic large-N approximation."""
    if num_stations < 1:
        raise ValueError("num_stations must be >= 1")
    return math.sqrt(2.0 / collision_cost_slots(timing)) / num_stations


def optimal_single_stage_cw(
    num_stations: int, timing: TimingConfig
) -> int:
    """W*(N): the throughput-optimal fixed contention window.

    From τ = 2/(W+1) at the asymptotic optimum; rounded to the nearest
    integer ≥ 2.

    >>> optimal_single_stage_cw(10, TimingConfig()) >= 50
    True
    """
    tau = optimal_tau_asymptotic(num_stations, timing)
    window = 2.0 / tau - 1.0
    return max(2, round(window))
