"""Objectives and theoretical bounds for configuration boosting.

The boosting problem: choose the CSMA/CA parameter vectors (cw, dc) so
the network's saturation throughput is maximized — either at a known
number of stations N, or robustly across a range of N (the practically
interesting case, since N is unknown to stations).

:func:`optimal_tau` gives the protocol-independent upper bound: the
attempt probability that maximizes the renewal throughput formula.  Any
(cw, dc) schedule whose fixed point lands near it is near-optimal.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import minimize_scalar

from ..core.config import TimingConfig
from ..analysis.throughput import network_prediction

__all__ = [
    "optimal_tau",
    "throughput_upper_bound",
    "Objective",
    "throughput_at_n",
    "worst_case_throughput",
    "mean_throughput",
]


def optimal_tau(num_stations: int, timing: TimingConfig) -> float:
    """Attempt probability maximizing normalized throughput at N.

    Found numerically; the classic approximation for large N is
    τ* ≈ sqrt(2σ/Tc)/N.
    """
    if num_stations < 1:
        raise ValueError("num_stations must be >= 1")

    def negative_throughput(tau: float) -> float:
        return -network_prediction(
            tau, num_stations, timing
        ).normalized_throughput

    result = minimize_scalar(
        negative_throughput, bounds=(1e-6, 1.0 - 1e-6), method="bounded"
    )
    return float(result.x)


def throughput_upper_bound(num_stations: int, timing: TimingConfig) -> float:
    """Best achievable normalized throughput at N over all protocols
    with the renewal structure (i.e. over all attempt probabilities)."""
    tau = optimal_tau(num_stations, timing)
    return network_prediction(tau, num_stations, timing).normalized_throughput


@dataclasses.dataclass(frozen=True)
class Objective:
    """A scalar score for a configuration, to be *maximized*.

    ``evaluate`` maps a per-N throughput curve (aligned with
    ``station_counts``) to a score.
    """

    name: str
    station_counts: Sequence[int]
    evaluate: Callable[[np.ndarray], float]


def throughput_at_n(num_stations: int) -> Objective:
    """Maximize throughput at one known network size."""
    return Objective(
        name=f"throughput@N={num_stations}",
        station_counts=(num_stations,),
        evaluate=lambda curve: float(curve[0]),
    )


def worst_case_throughput(station_counts: Sequence[int]) -> Objective:
    """Maximize the minimum throughput over a range of N (robust)."""
    counts = tuple(station_counts)
    return Objective(
        name=f"min-throughput@N∈{list(counts)}",
        station_counts=counts,
        evaluate=lambda curve: float(np.min(curve)),
    )


def mean_throughput(station_counts: Sequence[int]) -> Objective:
    """Maximize the average throughput over a range of N."""
    counts = tuple(station_counts)
    return Objective(
        name=f"mean-throughput@N∈{list(counts)}",
        station_counts=counts,
        evaluate=lambda curve: float(np.mean(curve)),
    )
