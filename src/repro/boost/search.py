"""Configuration search: find (cw, dc) schedules that boost throughput.

The search evaluates candidate schedules with the fast stage-recursion
model (:class:`repro.analysis.recursive.RecursiveModel`) — hundreds of
configurations per second — and scores them with an
:class:`repro.boost.objectives.Objective`.  Promising candidates can
then be re-validated by simulation (:func:`validate_by_simulation`).

Candidate families implemented:

- the standard-shaped family: four stages, windows scaling by a factor,
  deferral counters scaling likewise (generalizes Table 1);
- single-stage ("DC-less") family: one window, no stage escalation —
  shows why the deferral counter matters;
- deferral-only family: constant window, escalating deferral counters —
  CW adaptation driven purely by sensing, the mechanism the paper's
  introduction motivates.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.model import Model1901
from ..core.config import CsmaConfig, ScenarioConfig, TimingConfig
from ..core.results import aggregate
from ..runner import ExperimentRunner, Task, TaskKind, require_complete
from ..runner.serialize import csma_to_jsonable, timing_to_jsonable
from .objectives import Objective

__all__ = [
    "CandidateScore",
    "evaluate_candidate",
    "search",
    "standard_family",
    "single_stage_family",
    "deferral_family",
    "default_candidates",
    "validate_by_simulation",
]


@dataclasses.dataclass(frozen=True)
class CandidateScore:
    """A scored configuration."""

    config: CsmaConfig
    score: float
    #: Normalized throughput per station count of the objective.
    throughput_curve: Tuple[float, ...]
    #: Collision probability per station count of the objective.
    collision_curve: Tuple[float, ...]


def evaluate_candidate(
    config: CsmaConfig,
    objective: Objective,
    timing: Optional[TimingConfig] = None,
) -> CandidateScore:
    """Score one configuration with the analytical model."""
    timing = timing if timing is not None else TimingConfig()
    model = Model1901(config, timing, method="recursive")
    throughputs = []
    collisions = []
    for n in objective.station_counts:
        prediction = model.solve(n)
        throughputs.append(prediction.normalized_throughput)
        collisions.append(prediction.collision_probability)
    curve = np.array(throughputs)
    return CandidateScore(
        config=config,
        score=objective.evaluate(curve),
        throughput_curve=tuple(throughputs),
        collision_curve=tuple(collisions),
    )


def search(
    candidates: Iterable[CsmaConfig],
    objective: Objective,
    timing: Optional[TimingConfig] = None,
    top: int = 10,
    runner: Optional[ExperimentRunner] = None,
) -> List[CandidateScore]:
    """Evaluate all ``candidates`` and return the ``top`` best scores.

    With a ``runner``, candidate curves are computed as one batch of
    ``model_curve`` tasks — in parallel across worker processes and
    memoized on disk, so resuming an interrupted search (or re-scoring
    the same families under a different objective over the same station
    counts) only solves new configurations.  The objective itself is
    applied in the submitting process (it can be any callable; only the
    curves are cached).
    """
    timing = timing if timing is not None else TimingConfig()
    configs = list(candidates)
    runner = runner if runner is not None else ExperimentRunner()
    counts = [int(n) for n in objective.station_counts]
    tasks = [
        Task(
            kind=TaskKind.MODEL_CURVE,
            payload={
                "family": "1901",
                "csma": csma_to_jsonable(config),
                "timing": timing_to_jsonable(timing),
                "station_counts": counts,
                "method": "recursive",
            },
        )
        for config in configs
    ]
    curves = runner.run(tasks)
    require_complete(curves, runner.failures)
    scores = []
    for config, curve in zip(configs, curves):
        throughputs = [p["normalized_throughput"] for p in curve["points"]]
        collisions = [p["collision_probability"] for p in curve["points"]]
        scores.append(
            CandidateScore(
                config=config,
                score=objective.evaluate(np.array(throughputs)),
                throughput_curve=tuple(throughputs),
                collision_curve=tuple(collisions),
            )
        )
    scores.sort(key=lambda cs: cs.score, reverse=True)
    return scores[:top]


# -- candidate families ------------------------------------------------------

def standard_family(
    cw0_values: Sequence[int] = (4, 8, 16, 32, 64),
    growth_factors: Sequence[int] = (1, 2, 4),
    dc0_values: Sequence[int] = (0, 1, 3, 7),
    num_stages: int = 4,
) -> List[CsmaConfig]:
    """Four-stage schedules generalizing Table 1's shape.

    Windows grow geometrically from ``cw0``; deferral counters follow
    the standard's doubling-ish pattern ``d_i = (d0+1)·2^i − 1``.
    """
    configs = []
    for cw0, growth, dc0 in itertools.product(
        cw0_values, growth_factors, dc0_values
    ):
        cw = tuple(min(cw0 * growth**i, 4096) for i in range(num_stages))
        dc = tuple((dc0 + 1) * 2**i - 1 for i in range(num_stages))
        configs.append(CsmaConfig(cw=cw, dc=dc))
    return configs


def single_stage_family(
    cw_values: Sequence[int] = (8, 16, 32, 64, 128, 256),
) -> List[CsmaConfig]:
    """One-stage schedules: fixed window, deferral counter irrelevant.

    With a single stage there is nowhere to jump, so these isolate the
    pure backoff-efficiency/collision tradeoff in CW.
    """
    return [CsmaConfig(cw=(w,), dc=(0,)) for w in cw_values]


def deferral_family(
    cw_values: Sequence[int] = (8, 16, 32, 64),
    dc_ladders: Sequence[Tuple[int, ...]] = (
        (0, 1, 3, 15),
        (0, 1, 3, 7),
        (0, 3, 7, 15),
        (1, 3, 7, 15),
        (0, 0, 1, 3),
    ),
) -> List[CsmaConfig]:
    """Constant-window schedules: adaptation only via deferral jumps.

    These test the paper's central mechanism — growing caution *before*
    a collision happens — decoupled from window growth.
    """
    configs = []
    for w, ladder in itertools.product(cw_values, dc_ladders):
        configs.append(CsmaConfig(cw=(w,) * len(ladder), dc=ladder))
    return configs


def default_candidates() -> List[CsmaConfig]:
    """The union of all families plus the standard configurations."""
    configs = [CsmaConfig.default_1901()]
    configs += standard_family()
    configs += single_stage_family()
    configs += deferral_family()
    # De-duplicate on the (cw, dc) schedule.
    seen = set()
    unique = []
    for config in configs:
        key = (config.cw, config.dc)
        if key not in seen:
            seen.add(key)
            unique.append(config)
    return unique


def validate_by_simulation(
    score: CandidateScore,
    station_counts: Sequence[int],
    timing: Optional[TimingConfig] = None,
    sim_time_us: float = 2e7,
    repetitions: int = 3,
    seed: int = 1,
    runner: Optional[ExperimentRunner] = None,
) -> List[Tuple[int, float, float]]:
    """Re-measure a candidate by simulation.

    Returns ``(N, sim_throughput, sim_collision_probability)`` rows —
    the guard against the model mis-ranking configurations where the
    decoupling approximation is weak.  All ``N × repetitions`` points
    go through ``runner`` as one batch, seeded per the runner's
    ``(seed, point_index, repetition)`` contract.
    """
    timing = timing if timing is not None else TimingConfig()
    runner = runner if runner is not None else ExperimentRunner()
    scenarios = [
        ScenarioConfig.homogeneous(
            num_stations=n,
            csma=score.config,
            timing=timing,
            sim_time_us=sim_time_us,
            seed=seed,
        )
        for n in station_counts
    ]
    grouped = runner.run_scenarios(
        scenarios, root_seed=seed, repetitions=repetitions
    )
    rows = []
    for n, group in zip(station_counts, grouped):
        agg = aggregate([point.result for point in group])
        rows.append(
            (n, agg.normalized_throughput, agg.collision_probability)
        )
    return rows
