"""CW/DC tradeoff exploration (the paper's §2 motivation, quantified).

The paper's background section describes the core tradeoff: a large CW
means few collisions but wasted backoff slots; a small CW means backoff
efficiency but frequent collisions.  1901 resolves it by keeping CW
small and letting the *deferral counter* raise CW preemptively when the
medium is sensed busy often.

This module produces the ablation curves that make the argument
quantitative:

- :func:`cw_sweep` — single-stage protocols across CW (no deferral, no
  escalation): the raw tradeoff frontier;
- :func:`dc_sweep` — the standard CW ladder with scaled deferral
  counters, from hair-trigger (all zeros) to effectively disabled: how
  aggressive preemptive escalation should be;
- :func:`deferral_ablation` — 1901 default vs. the same windows with
  deferral disabled (pure-BEB), the headline ablation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.model import Model1901
from ..core.config import CsmaConfig, TimingConfig
from ..runner import ExperimentRunner, Task, TaskKind
from ..runner.serialize import csma_to_jsonable, timing_to_jsonable

__all__ = [
    "TradeoffPoint",
    "cw_sweep",
    "dc_sweep",
    "deferral_ablation",
    "scale_deferral",
    "disable_deferral",
]


@dataclasses.dataclass(frozen=True)
class TradeoffPoint:
    """Model outputs for one configuration at one network size."""

    label: str
    config: CsmaConfig
    num_stations: int
    collision_probability: float
    normalized_throughput: float
    tau: float


def _point(
    label: str, config: CsmaConfig, n: int, timing: TimingConfig
) -> TradeoffPoint:
    prediction = Model1901(config, timing, method="recursive").solve(n)
    return TradeoffPoint(
        label=label,
        config=config,
        num_stations=n,
        collision_probability=prediction.collision_probability,
        normalized_throughput=prediction.normalized_throughput,
        tau=prediction.tau,
    )


def _model_curves(
    labeled: Sequence[Tuple[str, CsmaConfig]],
    station_counts: Sequence[int],
    timing: TimingConfig,
    runner: Optional[ExperimentRunner],
) -> Dict[int, List[TradeoffPoint]]:
    """One ``model_curve`` task per configuration, through the runner.

    Returns ``{config position: [TradeoffPoint per N]}`` so callers can
    reassemble their historical point orderings.
    """
    runner = runner if runner is not None else ExperimentRunner()
    counts = [int(n) for n in station_counts]
    tasks = [
        Task(
            kind=TaskKind.MODEL_CURVE,
            payload={
                "family": "1901",
                "csma": csma_to_jsonable(config),
                "timing": timing_to_jsonable(timing),
                "station_counts": counts,
                "method": "recursive",
            },
        )
        for _label, config in labeled
    ]
    curves = {}
    for i, ((label, config), curve) in enumerate(
        zip(labeled, runner.run(tasks))
    ):
        curves[i] = [
            TradeoffPoint(
                label=label,
                config=config,
                num_stations=p["num_stations"],
                collision_probability=p["collision_probability"],
                normalized_throughput=p["normalized_throughput"],
                tau=p["tau"],
            )
            for p in curve["points"]
        ]
    return curves


def scale_deferral(config: CsmaConfig, factor: float) -> CsmaConfig:
    """Scale all deferral counters by ``factor`` (rounded down)."""
    if factor < 0:
        raise ValueError("factor must be >= 0")
    return CsmaConfig(
        cw=config.cw,
        dc=tuple(int(d * factor) for d in config.dc),
        protocol=config.protocol,
        retry_limit=config.retry_limit,
    )


def disable_deferral(config: CsmaConfig) -> CsmaConfig:
    """Make every deferral counter non-expiring (pure BEB behaviour).

    A deferral counter equal to the stage's window can never be
    exhausted before the backoff counter (at most ``cw − 1`` busy slots
    can precede expiry), so jumps never fire.
    """
    return CsmaConfig(
        cw=config.cw,
        dc=tuple(config.cw),
        protocol=config.protocol,
        retry_limit=config.retry_limit,
    )


def cw_sweep(
    station_counts: Sequence[int],
    cw_values: Sequence[int] = (4, 8, 16, 32, 64, 128, 256),
    timing: Optional[TimingConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> List[TradeoffPoint]:
    """Single-stage fixed-CW protocols: the raw CW tradeoff."""
    timing = timing if timing is not None else TimingConfig()
    labeled = [
        (f"CW={w}", CsmaConfig(cw=(w,), dc=(0,))) for w in cw_values
    ]
    curves = _model_curves(labeled, station_counts, timing, runner)
    return [p for i in range(len(labeled)) for p in curves[i]]


def dc_sweep(
    station_counts: Sequence[int],
    factors: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    base: Optional[CsmaConfig] = None,
    timing: Optional[TimingConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> List[TradeoffPoint]:
    """Scale the default deferral ladder up and down."""
    timing = timing if timing is not None else TimingConfig()
    base = base if base is not None else CsmaConfig.default_1901()
    labeled = [
        (f"dc×{factor:g}", scale_deferral(base, factor))
        for factor in factors
    ]
    curves = _model_curves(labeled, station_counts, timing, runner)
    return [p for i in range(len(labeled)) for p in curves[i]]


def deferral_ablation(
    station_counts: Sequence[int],
    timing: Optional[TimingConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> List[TradeoffPoint]:
    """1901 default vs. identical windows with deferral disabled."""
    timing = timing if timing is not None else TimingConfig()
    default = CsmaConfig.default_1901()
    beb = disable_deferral(default)
    labeled = [
        ("1901 (with DC)", default),
        ("same CWs, no DC", beb),
    ]
    curves = _model_curves(labeled, station_counts, timing, runner)
    # Historical point order: N-major, default before BEB at each N.
    points = []
    for j in range(len(station_counts)):
        points.append(curves[0][j])
        points.append(curves[1][j])
    return points
