"""CW/DC tradeoff exploration (the paper's §2 motivation, quantified).

The paper's background section describes the core tradeoff: a large CW
means few collisions but wasted backoff slots; a small CW means backoff
efficiency but frequent collisions.  1901 resolves it by keeping CW
small and letting the *deferral counter* raise CW preemptively when the
medium is sensed busy often.

This module produces the ablation curves that make the argument
quantitative:

- :func:`cw_sweep` — single-stage protocols across CW (no deferral, no
  escalation): the raw tradeoff frontier;
- :func:`dc_sweep` — the standard CW ladder with scaled deferral
  counters, from hair-trigger (all zeros) to effectively disabled: how
  aggressive preemptive escalation should be;
- :func:`deferral_ablation` — 1901 default vs. the same windows with
  deferral disabled (pure-BEB), the headline ablation.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..analysis.model import Model1901
from ..core.config import CsmaConfig, TimingConfig

__all__ = [
    "TradeoffPoint",
    "cw_sweep",
    "dc_sweep",
    "deferral_ablation",
    "scale_deferral",
    "disable_deferral",
]


@dataclasses.dataclass(frozen=True)
class TradeoffPoint:
    """Model outputs for one configuration at one network size."""

    label: str
    config: CsmaConfig
    num_stations: int
    collision_probability: float
    normalized_throughput: float
    tau: float


def _point(
    label: str, config: CsmaConfig, n: int, timing: TimingConfig
) -> TradeoffPoint:
    prediction = Model1901(config, timing, method="recursive").solve(n)
    return TradeoffPoint(
        label=label,
        config=config,
        num_stations=n,
        collision_probability=prediction.collision_probability,
        normalized_throughput=prediction.normalized_throughput,
        tau=prediction.tau,
    )


def scale_deferral(config: CsmaConfig, factor: float) -> CsmaConfig:
    """Scale all deferral counters by ``factor`` (rounded down)."""
    if factor < 0:
        raise ValueError("factor must be >= 0")
    return CsmaConfig(
        cw=config.cw,
        dc=tuple(int(d * factor) for d in config.dc),
        protocol=config.protocol,
        retry_limit=config.retry_limit,
    )


def disable_deferral(config: CsmaConfig) -> CsmaConfig:
    """Make every deferral counter non-expiring (pure BEB behaviour).

    A deferral counter equal to the stage's window can never be
    exhausted before the backoff counter (at most ``cw − 1`` busy slots
    can precede expiry), so jumps never fire.
    """
    return CsmaConfig(
        cw=config.cw,
        dc=tuple(config.cw),
        protocol=config.protocol,
        retry_limit=config.retry_limit,
    )


def cw_sweep(
    station_counts: Sequence[int],
    cw_values: Sequence[int] = (4, 8, 16, 32, 64, 128, 256),
    timing: Optional[TimingConfig] = None,
) -> List[TradeoffPoint]:
    """Single-stage fixed-CW protocols: the raw CW tradeoff."""
    timing = timing if timing is not None else TimingConfig()
    points = []
    for w in cw_values:
        config = CsmaConfig(cw=(w,), dc=(0,))
        for n in station_counts:
            points.append(_point(f"CW={w}", config, n, timing))
    return points


def dc_sweep(
    station_counts: Sequence[int],
    factors: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    base: Optional[CsmaConfig] = None,
    timing: Optional[TimingConfig] = None,
) -> List[TradeoffPoint]:
    """Scale the default deferral ladder up and down."""
    timing = timing if timing is not None else TimingConfig()
    base = base if base is not None else CsmaConfig.default_1901()
    points = []
    for factor in factors:
        config = scale_deferral(base, factor)
        label = f"dc×{factor:g}"
        for n in station_counts:
            points.append(_point(label, config, n, timing))
    return points


def deferral_ablation(
    station_counts: Sequence[int],
    timing: Optional[TimingConfig] = None,
) -> List[TradeoffPoint]:
    """1901 default vs. identical windows with deferral disabled."""
    timing = timing if timing is not None else TimingConfig()
    default = CsmaConfig.default_1901()
    beb = disable_deferral(default)
    points = []
    for n in station_counts:
        points.append(_point("1901 (with DC)", default, n, timing))
        points.append(_point("same CWs, no DC", beb, n, timing))
    return points
