"""In-simulation chaos layer: fault injection + runtime invariants.

Three parts (see ``docs/robustness.md`` for the full taxonomy):

- **channel impairments** (:mod:`repro.chaos.impairments`) — bursty
  Gilbert–Elliott errors, impulsive-noise windows, per-station link
  asymmetry, all as time-aware PB error models for the power strip;
- **device/MAC fault injection** (:mod:`repro.chaos.plan`,
  :mod:`repro.chaos.injector`) — a JSON-able, seedable
  :class:`~repro.chaos.plan.ChaosPlan` of SACK loss/corruption,
  station churn, firmware counter glitches and sniffer-path faults,
  executed against a testbed by
  :class:`~repro.chaos.injector.ChaosInjector`;
- **invariant checking + recovery** (:mod:`repro.chaos.invariants`,
  :mod:`repro.chaos.recovery`) — a runtime
  :class:`~repro.chaos.invariants.InvariantChecker` on the probe bus
  asserting the 1901 FSM stays legal under fault load, and
  :func:`~repro.chaos.recovery.run_recovery_experiment` verifying the
  MAC re-converges once faults clear.

This layer is *in-simulation*: it breaks the emulated network.  The
*process-level* counterpart (worker crashes, hangs) is
:mod:`repro.runner.faults`; the two compose freely.
"""

from .experiment import attach_chaos, chaos_collision_test
from .impairments import (
    AsymmetricLinkQuality,
    ComposedErrorModel,
    GilbertElliottPbErrors,
    ImpulsiveNoiseBursts,
)
from .injector import ChaosInjector
from .invariants import InvariantChecker, InvariantViolation
from .plan import FAULT_IDS, PRESETS, ChaosPlan, preset_plan
from .recovery import (
    RecoveryResult,
    default_recovery_plan,
    run_recovery_experiment,
)

__all__ = [
    "AsymmetricLinkQuality",
    "ChaosInjector",
    "ChaosPlan",
    "ComposedErrorModel",
    "FAULT_IDS",
    "GilbertElliottPbErrors",
    "ImpulsiveNoiseBursts",
    "InvariantChecker",
    "InvariantViolation",
    "PRESETS",
    "RecoveryResult",
    "attach_chaos",
    "chaos_collision_test",
    "default_recovery_plan",
    "preset_plan",
    "run_recovery_experiment",
]
