"""Chaos-instrumented collision tests.

:func:`chaos_collision_test` is the fault-injected sibling of
:func:`repro.obs.capture.observed_collision_test`: it builds a §3.2
testbed, installs a :class:`~repro.chaos.plan.ChaosPlan` through a
:class:`~repro.chaos.injector.ChaosInjector`, runs the invariant
checker over the whole run, and returns the measurement together with
the chaos report (injection ledger + checker summary + optional obs
capture).
"""

from __future__ import annotations

import contextlib
import sys
from typing import Any, Dict, Optional, Tuple, Union

from ..obs.probe import MacProbe, deinstrument, instrument_testbed
from .injector import ChaosInjector
from .invariants import InvariantChecker
from .plan import ChaosPlan

__all__ = ["chaos_collision_test", "attach_chaos"]


def _chaos_span(**attrs):
    """A ``chaos_test`` telemetry span — or a no-op scope.

    Gated through ``sys.modules`` like every other telemetry touch
    point: a process that never loaded :mod:`repro.telemetry.context`,
    or has no active run, pays one dict lookup and nothing else.
    """
    module = sys.modules.get("repro.telemetry.context")
    if module is None or module.current() is None:
        return contextlib.nullcontext()
    return module.span("chaos_test", **attrs)


def attach_chaos(
    testbed,
    plan: Union[ChaosPlan, Dict[str, Any]],
    probe: Optional[MacProbe] = None,
    deep_every: int = 256,
    registry=None,
) -> Tuple[ChaosInjector, InvariantChecker, MacProbe]:
    """Wire a plan + invariant checker into a built testbed.

    Returns ``(injector, checker, probe)`` — the injector already
    installed, the checker subscribed to the (possibly fresh) probe.
    Callers that already hold a probe (an obs capture session) pass it
    in so chaos and capture share one event stream.
    """
    plan = ChaosPlan.from_jsonable(plan)
    if probe is None:
        probe = instrument_testbed(testbed)
    checker = InvariantChecker(
        policy=plan.invariants, deep_every=deep_every, registry=registry
    )
    checker.watch_testbed(testbed)
    probe.subscribe(checker)
    injector = ChaosInjector(testbed, plan, checker=checker).install()
    return injector, checker, probe


def chaos_collision_test(
    num_stations: int,
    plan: Union[ChaosPlan, Dict[str, Any]],
    duration_us: Optional[float] = None,
    warmup_us: Optional[float] = None,
    seed: int = 1,
    obs=None,
    deep_every: int = 256,
    **testbed_kwargs,
):
    """One §3.2 collision test under a chaos plan.

    Returns ``(test, report)``: the usual
    :class:`~repro.experiments.procedures.CollisionTest` plus a report
    dict with the injection ledger (``report["injection"]``), the
    invariant-checker summary (``report["invariants"]``) and — when an
    :class:`~repro.obs.capture.ObsConfig` is given via ``obs`` — the
    capture summary (``report["capture"]``).

    With the plan's ``raise`` policy an invariant violation aborts the
    run by raising :class:`~repro.chaos.invariants.InvariantViolation`.
    """
    from ..experiments.procedures import (
        DEFAULT_TEST_DURATION_US,
        DEFAULT_WARMUP_US,
        run_collision_test,
    )
    from ..experiments.testbed import build_testbed

    if duration_us is None:
        duration_us = DEFAULT_TEST_DURATION_US
    if warmup_us is None:
        warmup_us = DEFAULT_WARMUP_US

    plan = ChaosPlan.from_jsonable(plan)
    with _chaos_span(stations=num_stations, plan_seed=plan.seed):
        testbed = build_testbed(num_stations, seed=seed, **testbed_kwargs)
        session = None
        probe = None
        if obs is not None:
            from ..obs.capture import ObsSession

            session = ObsSession(testbed, obs)
            probe = session.probe
        injector, checker, probe = attach_chaos(
            testbed, plan, probe=probe, deep_every=deep_every
        )
        test = run_collision_test(
            num_stations,
            duration_us=duration_us,
            warmup_us=warmup_us,
            seed=seed,
            testbed=testbed,
        )
        injector.flush()
        report: Dict[str, Any] = {
            "plan": plan.as_jsonable(),
            "injection": injector.report(),
            "invariants": checker.finalize(),
        }
        if session is not None:
            # Persist the injection event log next to the capture
            # artifacts, one line per fault fired (run_id-stamped when
            # a telemetry run is active).
            ledger_path = session.config.chaos_ledger_path
            if injector.flush_ledger_jsonl(ledger_path):
                report["injection"]["ledger_path"] = str(ledger_path)
            report["capture"] = session.finalize()
        else:
            deinstrument(
                coordinator=testbed.avln.coordinator,
                strip=testbed.avln.strip,
                nodes=[device.node for device in testbed.avln.devices],
            )
    return test, report
