"""Time-varying channel impairments (the chaos layer's PHY faults).

The paper's measurements run over real power strips whose channels are
bursty and time-varying (§3), while the emulated medium defaults to
:class:`repro.phy.channel.IdealChannel` and i.i.d.
:class:`~repro.phy.channel.BernoulliPbErrors`.  This module supplies
the missing realism as *time-aware* error models (the ``time_aware``
protocol of :class:`repro.phy.channel.TimeAwareErrorModel`):

- :class:`GilbertElliottPbErrors` — the classic two-state Markov burst
  model: a good state with rare PB errors and a bad state with
  frequent ones, state transitions drawn per physical block;
- :class:`ImpulsiveNoiseBursts` — scheduled high-error windows
  (appliance switching, dimmer spikes: impulsive noise is the
  dominant PLC impairment class);
- :class:`AsymmetricLinkQuality` — per-source extra error probability
  (heterogeneous links: some outlets are simply worse);
- :class:`ComposedErrorModel` — OR-composition of any of the above
  with each other or the stock models.

All models draw from a caller-supplied ``numpy`` generator, so a
:class:`~repro.chaos.plan.ChaosPlan` can hand each one its own
``SeedSequence`` child stream and keep runs bit-reproducible.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..phy.framing import Mpdu

__all__ = [
    "GilbertElliottPbErrors",
    "ImpulsiveNoiseBursts",
    "AsymmetricLinkQuality",
    "ComposedErrorModel",
]


def _check_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return float(value)


class GilbertElliottPbErrors:
    """Two-state Markov (Gilbert–Elliott) per-PB error model.

    The channel is either *good* (PB error probability ``error_good``)
    or *bad* (``error_bad``).  Before each physical block the state
    transitions with probability ``p_good_to_bad`` /
    ``p_bad_to_good``; runs of bad-state blocks produce the error
    bursts that i.i.d. models cannot.

    The model is only active inside ``[start_us, end_us)`` (the chaos
    plan's fault window); outside it no errors are produced and the
    state is frozen, so fault clearance is abrupt and the recovery
    harness can measure re-convergence.

    >>> rng = np.random.default_rng(0)
    >>> model = GilbertElliottPbErrors(0.1, 0.3, 0.0, 1.0, rng)
    >>> abs(model.stationary_error_rate - 0.25) < 1e-12
    True
    """

    time_aware = True

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        error_good: float,
        error_bad: float,
        rng: np.random.Generator,
        start_us: float = 0.0,
        end_us: Optional[float] = None,
    ) -> None:
        self.p_good_to_bad = _check_probability("p_good_to_bad", p_good_to_bad)
        self.p_bad_to_good = _check_probability("p_bad_to_good", p_bad_to_good)
        if self.p_good_to_bad + self.p_bad_to_good <= 0.0:
            raise ValueError(
                "p_good_to_bad + p_bad_to_good must be > 0 "
                "(an absorbing chain has no stationary error rate)"
            )
        self.error_good = _check_probability("error_good", error_good)
        self.error_bad = _check_probability("error_bad", error_bad)
        self.rng = rng
        self.start_us = float(start_us)
        self.end_us = None if end_us is None else float(end_us)
        #: Current state: False = good, True = bad (starts good).
        self.in_bad_state = False
        #: Diagnostics: PBs seen / errored while the model was active.
        self.pbs_seen = 0
        self.pbs_errored = 0

    # -- analysis helpers (the hypothesis property test pins these) ------
    @property
    def stationary_bad_probability(self) -> float:
        """π_bad of the two-state chain."""
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)

    @property
    def stationary_error_rate(self) -> float:
        """Long-run PB error rate: π_g·e_g + π_b·e_b."""
        pi_bad = self.stationary_bad_probability
        return (1.0 - pi_bad) * self.error_good + pi_bad * self.error_bad

    @property
    def correlation(self) -> float:
        """Lag-1 state correlation ρ = 1 − p_gb − p_bg.

        The empirical error rate over ``n`` blocks has variance
        ≈ r(1−r)·(1+ρ)/(1−ρ)/n — the burstiness inflates it by the
        factor (1+ρ)/(1−ρ) relative to i.i.d. sampling.
        """
        return 1.0 - self.p_good_to_bad - self.p_bad_to_good

    def _step(self) -> bool:
        """Advance the state one block and draw that block's error."""
        if self.in_bad_state:
            if self.rng.random() < self.p_bad_to_good:
                self.in_bad_state = False
        else:
            if self.rng.random() < self.p_good_to_bad:
                self.in_bad_state = True
        error_probability = (
            self.error_bad if self.in_bad_state else self.error_good
        )
        errored = bool(self.rng.random() < error_probability)
        self.pbs_seen += 1
        if errored:
            self.pbs_errored += 1
        return errored

    def sample_flags(self, count: int) -> List[bool]:
        """Draw ``count`` consecutive PB flags (for statistical tests)."""
        return [self._step() for _ in range(count)]

    def active(self, time_us: float) -> bool:
        if time_us < self.start_us:
            return False
        return self.end_us is None or time_us < self.end_us

    def pb_error_flags(self, mpdu: Mpdu, time_us: float = 0.0) -> List[bool]:
        n = max(mpdu.num_blocks, 1)
        if not self.active(time_us):
            return [False] * n
        return [self._step() for _ in range(n)]


class ImpulsiveNoiseBursts:
    """Scheduled impulsive-noise windows.

    ``windows`` is a sequence of ``(start_us, duration_us,
    error_probability)`` triples; inside a window every PB is errored
    independently with that window's probability, outside all windows
    the channel is clean.  Overlapping windows combine by taking the
    maximum error probability.
    """

    time_aware = True

    def __init__(
        self,
        windows: Sequence[Tuple[float, float, float]],
        rng: np.random.Generator,
    ) -> None:
        checked = []
        for start_us, duration_us, probability in windows:
            if duration_us <= 0:
                raise ValueError(
                    f"impulse window duration must be > 0, got {duration_us}"
                )
            checked.append(
                (
                    float(start_us),
                    float(duration_us),
                    _check_probability("impulse error_probability", probability),
                )
            )
        self.windows = tuple(checked)
        self.rng = rng
        self.pbs_errored = 0

    def error_probability_at(self, time_us: float) -> float:
        probability = 0.0
        for start_us, duration_us, window_probability in self.windows:
            if start_us <= time_us < start_us + duration_us:
                probability = max(probability, window_probability)
        return probability

    def pb_error_flags(self, mpdu: Mpdu, time_us: float = 0.0) -> List[bool]:
        n = max(mpdu.num_blocks, 1)
        probability = self.error_probability_at(time_us)
        if probability <= 0.0:
            return [False] * n
        flags = [bool(f) for f in self.rng.random(n) < probability]
        self.pbs_errored += sum(flags)
        return flags


class AsymmetricLinkQuality:
    """Per-source extra PB error probability (heterogeneous outlets).

    ``probabilities`` maps a source TEI to that station's extra error
    probability; alternatively pass a callable ``tei -> probability``
    (the chaos injector uses one, because TEIs are only assigned at
    association time while the plan is keyed by MAC address).
    """

    time_aware = True

    def __init__(
        self,
        probabilities: Union[Mapping[int, float], Callable[[int], float]],
        rng: np.random.Generator,
    ) -> None:
        if callable(probabilities):
            self._probability_of = probabilities
        else:
            table = {
                int(tei): _check_probability("link error probability", p)
                for tei, p in probabilities.items()
            }
            self._probability_of = lambda tei: table.get(tei, 0.0)
        self.rng = rng
        self.pbs_errored = 0

    def pb_error_flags(self, mpdu: Mpdu, time_us: float = 0.0) -> List[bool]:
        n = max(mpdu.num_blocks, 1)
        probability = _check_probability(
            "link error probability", self._probability_of(mpdu.source_tei)
        )
        if probability <= 0.0:
            return [False] * n
        flags = [bool(f) for f in self.rng.random(n) < probability]
        self.pbs_errored += sum(flags)
        return flags


class ComposedErrorModel:
    """OR-composition of several error models (independent causes).

    A PB is errored if *any* component flags it.  Components may be
    time-aware or not; every component is consulted on every MPDU so
    stateful models (Gilbert–Elliott) keep evolving consistently.
    """

    time_aware = True

    def __init__(self, models: Sequence[object]) -> None:
        if not models:
            raise ValueError("ComposedErrorModel needs at least one model")
        self.models = tuple(models)

    def pb_error_flags(self, mpdu: Mpdu, time_us: float = 0.0) -> List[bool]:
        combined: Optional[List[bool]] = None
        for model in self.models:
            if getattr(model, "time_aware", False):
                flags = model.pb_error_flags(mpdu, time_us)
            else:
                flags = model.pb_error_flags(mpdu)
            if combined is None:
                combined = list(flags)
            else:
                combined = [a or b for a, b in zip(combined, flags)]
        assert combined is not None
        return combined
