"""The chaos injector: executes a :class:`~repro.chaos.plan.ChaosPlan`
against a built testbed.

:class:`ChaosInjector` translates the plan's declarative fault schedule
into concrete interventions on a
:class:`~repro.experiments.testbed.Testbed`:

- **channel impairments** become an error model installed on the power
  strip (composed with whatever model the testbed already had);
- **SACK loss / corruption** wrap each station node's ``notify_sack``
  (the coordinator's delivery point), dropping or bit-flipping the
  selective acknowledgments the MAC would otherwise trust;
- **station churn** runs as engine processes that build, attach and
  detach whole devices mid-run — graceful leaves drain the MAC queue
  first, crash-leaves yank the station even while it holds the medium;
- **firmware glitches** corrupt the VS_STATS counters at scheduled
  times via :meth:`repro.hpav.firmware.FirmwareStats.apply_glitch`;
- **sniffer faults** wrap the destination's host indication path,
  dropping or reordering faifa's capture stream.

Every fault family draws from its own :meth:`ChaosPlan.stream
<repro.chaos.plan.ChaosPlan.stream>` substream, so enabling one family
never perturbs another and none perturb the simulation's own draws.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from ..engine.marks import ProcMark
from ..obs.recording import JsonlEventLog
from ..phy.channel import IdealChannel
from ..tools.ampstat import Ampstat
from ..traffic.generators import SaturatedSource
from ..traffic.packets import mac_address
from .impairments import (
    AsymmetricLinkQuality,
    ComposedErrorModel,
    GilbertElliottPbErrors,
    ImpulsiveNoiseBursts,
)
from .invariants import InvariantChecker
from .plan import ChaosPlan

__all__ = ["ChaosInjector"]

#: MAC index base for stations the injector creates (clear of the
#: testbed's own ``mac_address(0..N)`` range).
_JOIN_MAC_BASE = 200

#: Poll period of the graceful-leave queue-drain loop (µs).
_DRAIN_POLL_US = 1_000.0


def _window_active(spec: Dict[str, float], time_us: float) -> bool:
    start = float(spec.get("start_us", 0.0))
    end = spec.get("end_us")
    if time_us < start:
        return False
    return end is None or time_us < float(end)


class ChaosInjector:
    """Installs a plan's faults on a testbed and tracks what happened.

    Parameters
    ----------
    testbed:
        A built (not yet run) :class:`~repro.experiments.testbed
        .Testbed`.
    plan:
        The fault schedule.
    checker:
        Optional :class:`~repro.chaos.invariants.InvariantChecker`;
        stations created by churn joins are registered with it (and
        given the coordinator's probe) so the safety net follows the
        membership.

    Call :meth:`install` once before running the simulation;
    :meth:`report` afterwards for the injection ledger.
    """

    def __init__(
        self,
        testbed,
        plan: ChaosPlan,
        checker: Optional[InvariantChecker] = None,
    ) -> None:
        self.testbed = testbed
        self.plan = plan
        self.checker = checker
        self.gilbert_elliott: Optional[GilbertElliottPbErrors] = None
        self.impulse_noise_model: Optional[ImpulsiveNoiseBursts] = None
        self.link_quality_model: Optional[AsymmetricLinkQuality] = None
        self._installed = False
        self._held_indication: Optional[bytes] = None
        self._sniffer_downstream = lambda frame_bytes: None
        self._join_count = 0
        #: Per-fault-family RNGs, created once at install time and kept
        #: by name so a checkpoint can capture/restore their states in
        #: place (the fault wrappers close over the generator objects).
        self._rngs: Dict[str, Any] = {}
        #: Resume bookmarks of the churn/glitch processes, keyed
        #: ``("churn", i)`` / ``("glitch", i)`` by plan-schedule index.
        self._proc_marks: Dict[Tuple, ProcMark] = {}
        #: Structural membership changes (joins/leaves) in order, so a
        #: checkpoint restore can rebuild the same device roster before
        #: overlaying the captured state.
        self.membership_log: List[Dict[str, str]] = []
        #: Injection ledger (see :meth:`report`).
        self.sacks_dropped = 0
        self.sacks_corrupted = 0
        self.joins = 0
        self.leaves = 0
        self.crash_leaves = 0
        self.glitches_applied: List[Dict[str, Any]] = []
        self.indications_dropped = 0
        self.indications_reordered = 0
        #: Per-injection event log: one timestamped record per fault
        #: actually fired, flushable to JSONL
        #: (:meth:`flush_ledger_jsonl`) with the same conventions as
        #: every other trace — so when a telemetry run is active, each
        #: injection line carries the run's ``run_id``/``span_id``.
        self.ledger = JsonlEventLog()

    def _ledger(self, event: str, **fields: Any) -> None:
        self.ledger.append(
            {"event": event, "t_us": self.testbed.env.now, **fields}
        )

    def _mark(self, *key) -> ProcMark:
        mark = self._proc_marks.get(key)
        if mark is None:
            mark = ProcMark(key)
            self._proc_marks[key] = mark
        return mark

    def _stream(self, name: str):
        rng = self._rngs.get(name)
        if rng is None:
            rng = self.plan.stream(name)
            self._rngs[name] = rng
        return rng

    # -- installation ------------------------------------------------------
    def install(self) -> "ChaosInjector":
        """Wire every fault family of the plan into the testbed."""
        if self._installed:
            raise RuntimeError("ChaosInjector.install called twice")
        self._installed = True
        self._install_channel_impairments()
        self._install_sack_faults()
        self._install_churn()
        self._install_firmware_glitches()
        self._install_sniffer_faults()
        return self

    def _install_channel_impairments(self) -> None:
        plan = self.plan
        if not plan.any_channel_impairment:
            return
        strip = self.testbed.avln.strip
        models: List[object] = []
        existing = strip.error_model
        if not isinstance(existing, IdealChannel):
            models.append(existing)
        if plan.gilbert_elliott is not None:
            ge = plan.gilbert_elliott
            self.gilbert_elliott = GilbertElliottPbErrors(
                p_good_to_bad=ge["p_good_to_bad"],
                p_bad_to_good=ge["p_bad_to_good"],
                error_good=ge.get("error_good", 0.0),
                error_bad=ge.get("error_bad", 0.0),
                rng=self._stream("gilbert_elliott"),
                start_us=ge.get("start_us", 0.0),
                end_us=ge.get("end_us"),
            )
            models.append(self.gilbert_elliott)
        if plan.impulse_noise:
            self.impulse_noise_model = ImpulsiveNoiseBursts(
                windows=[
                    (
                        w["start_us"],
                        w["duration_us"],
                        w.get("error_probability", 0.0),
                    )
                    for w in plan.impulse_noise
                ],
                rng=self._stream("impulse_noise"),
            )
            models.append(self.impulse_noise_model)
        if plan.link_quality:
            quality = {
                mac.lower(): float(p)
                for mac, p in plan.link_quality.items()
            }
            devices = self.testbed.avln.devices

            def probability_of(tei: int) -> float:
                # TEIs are assigned at association time, so resolve the
                # plan's MAC keys to TEIs per lookup, not at install.
                for device in devices:
                    if device.node.tei == tei:
                        return quality.get(device.mac_addr, 0.0)
                return 0.0

            self.link_quality_model = AsymmetricLinkQuality(
                probabilities=probability_of,
                rng=self._stream("link_quality"),
            )
            models.append(self.link_quality_model)
        if len(models) == 1:
            strip.error_model = models[0]
        else:
            strip.error_model = ComposedErrorModel(models)

    def _install_sack_faults(self) -> None:
        plan = self.plan
        env = self.testbed.env
        if plan.sack_loss is not None:
            self._wrap_sacks_drop(plan.sack_loss, env)
        if plan.sack_corruption is not None:
            self._wrap_sacks_corrupt(plan.sack_corruption, env)

    def _target_devices(self, spec: Dict[str, Any]) -> list:
        mac = spec.get("mac")
        if mac is not None:
            return [self.testbed.avln.find_device(mac)]
        return list(self.testbed.stations)

    def _wrap_sacks_drop(self, spec, env) -> None:
        rng = self._stream("sack_loss")
        probability = float(spec.get("probability", 0.0))
        for device in self._target_devices(spec):
            node = device.node
            original = node.notify_sack

            def dropped(
                sack, burst, outcome, _original=original, _spec=spec
            ):
                if (
                    _window_active(_spec, env.now)
                    and rng.random() < probability
                ):
                    # The SACK is lost on the air: the firmware never
                    # hears it, retransmission logic never fires.
                    self.sacks_dropped += 1
                    self._ledger("sack_dropped")
                    return
                _original(sack, burst, outcome)

            node.notify_sack = dropped

    def _wrap_sacks_corrupt(self, spec, env) -> None:
        rng = self._stream("sack_corruption")
        probability = float(spec.get("probability", 0.0))
        for device in self._target_devices(spec):
            node = device.node
            original = node.notify_sack

            def corrupted(
                sack, burst, outcome, _original=original, _spec=spec
            ):
                if (
                    _window_active(_spec, env.now)
                    and rng.random() < probability
                ):
                    self.sacks_corrupted += 1
                    self._ledger("sack_corrupted")
                    flipped = tuple(
                        (not flag) if rng.random() < 0.5 else flag
                        for flag in sack.pb_errors
                    )
                    sack = dataclasses.replace(sack, pb_errors=flipped)
                _original(sack, burst, outcome)

            node.notify_sack = corrupted

    # -- churn -------------------------------------------------------------
    def _install_churn(self) -> None:
        for index, event in enumerate(self.plan.churn):
            self.testbed.env.process(
                self._churn_process(index, dict(event))
            )
            self._mark("churn", index).stamp_created(self.testbed.env)

    def _churn_process(
        self,
        index: int,
        event: Dict[str, Any],
        resume_wake_us: Optional[float] = None,
        resume_phase: Optional[str] = None,
        resume_mac: Optional[str] = None,
    ):
        env = self.testbed.env
        mark = self._mark("churn", index)
        action = event["action"]
        phase = resume_phase
        device = None

        if phase is None:
            delay = float(event["time_us"]) - env.now
            if delay > 0:
                mark.sleeping(env, env.now + delay, phase="fire")
                yield env.timeout(delay)
            phase = "fire"
        else:
            yield env.timeout_at(resume_wake_us)
            if resume_mac is not None:
                try:
                    device = self.testbed.avln.find_device(resume_mac)
                except KeyError:
                    # The device left some other way; nothing to do.
                    mark.finish()
                    return

        if phase == "fire":
            if action == "join":
                device = self._join_station(event.get("mac"))
                leave_at = event.get("leave_at_us")
                if leave_at is None:
                    mark.finish()
                    return
                wait = max(float(leave_at) - env.now, 0.0)
                mark.sleeping(
                    env,
                    env.now + wait,
                    phase="leave",
                    mac=device.mac_addr,
                )
                yield env.timeout(wait)
            else:
                device = self._resolve_leaver(event.get("mac"))
                if device is None:
                    mark.finish()
                    return
            phase = "leave"

        if phase == "leave":
            crash = (
                event.get("crash", False)
                if action == "join"
                else action == "crash_leave"
            )
            if crash:
                self._crash_leave(device)
                mark.finish()
                return
            self._stop_sources_of(device)
            phase = "drain"

        # Graceful leave: drain the MAC queue, then detach.  A resume
        # into "drain" re-enters the loop exactly as a live wake would
        # (the restored source state is already stopped).
        while device.node.pending_priority() is not None:
            mark.sleeping(
                env,
                env.now + _DRAIN_POLL_US,
                phase="drain",
                mac=device.mac_addr,
            )
            yield env.timeout(_DRAIN_POLL_US)
        self._detach(device)
        self.leaves += 1
        self._ledger("leave", mac=device.mac_addr)
        self.membership_log.append(
            {"action": "leave", "mac": device.mac_addr}
        )
        mark.finish()

    def _join_station(self, mac: Optional[str]):
        testbed = self.testbed
        if mac is None:
            mac = mac_address(_JOIN_MAC_BASE + self._join_count)
        self._join_count += 1
        device = testbed.avln.add_device(mac)
        probe = testbed.avln.coordinator.probe
        if probe is not None:
            device.node.set_probe(probe)
        source = SaturatedSource(
            testbed.env,
            device,
            dst_mac=testbed.destination.mac_addr,
        )
        testbed.stations.append(device)
        testbed.sources.append(source)
        testbed.ampstats[device.mac_addr] = Ampstat(device)
        if self.checker is not None:
            self.checker.watch_node(device.node)
        self.joins += 1
        self._ledger("join", mac=device.mac_addr)
        self.membership_log.append({"action": "join", "mac": device.mac_addr})
        return device

    def _resolve_leaver(self, mac: Optional[str]):
        testbed = self.testbed
        if mac is not None:
            device = testbed.avln.find_device(mac)
        elif testbed.stations:
            device = testbed.stations[-1]
        else:
            return None
        if device is testbed.destination:
            raise ValueError("the destination/CCo cannot leave")
        return device

    def _stop_sources_of(self, device) -> None:
        for source in self.testbed.sources:
            if source.device is device:
                source.stop()

    def _detach(self, device) -> None:
        self.testbed.avln.remove_device(device)
        if device in self.testbed.stations:
            self.testbed.stations.remove(device)
        self.testbed.sources = [
            source
            for source in self.testbed.sources
            if source.device is not device
        ]
        self.testbed.ampstats.pop(device.mac_addr, None)

    def _crash_leave(self, device) -> None:
        """Yank the station immediately — even mid-backoff or while its
        burst is on the wire (the coordinator's ``detached`` guards
        absorb the in-flight round)."""
        self._stop_sources_of(device)
        self._detach(device)
        self.crash_leaves += 1
        self._ledger("crash_leave", mac=device.mac_addr)
        self.membership_log.append(
            {"action": "leave", "mac": device.mac_addr}
        )

    # -- firmware glitches ---------------------------------------------------
    def _install_firmware_glitches(self) -> None:
        if not self.plan.firmware_glitches:
            return
        self._stream("firmware_glitches")
        for index, glitch in enumerate(self.plan.firmware_glitches):
            self.testbed.env.process(
                self._glitch_process(index, dict(glitch))
            )
            self._mark("glitch", index).stamp_created(self.testbed.env)

    def _glitch_process(
        self,
        index: int,
        glitch: Dict[str, Any],
        resume_wake_us: Optional[float] = None,
    ):
        env = self.testbed.env
        mark = self._mark("glitch", index)
        rng = self._rngs["firmware_glitches"]
        if resume_wake_us is not None:
            yield env.timeout_at(resume_wake_us)
        else:
            delay = float(glitch["time_us"]) - env.now
            if delay > 0:
                mark.sleeping(env, env.now + delay, phase="armed")
                yield env.timeout(delay)
        kind = glitch.get("kind", "zero")
        mac = glitch.get("mac")
        if mac is not None:
            devices = [self.testbed.avln.find_device(mac)]
        else:
            devices = list(self.testbed.avln.devices)
        for device in devices:
            summary = device.firmware.apply_glitch(kind, rng)
            self.glitches_applied.append(
                {
                    "time_us": env.now,
                    "mac": device.mac_addr,
                    "kind": kind,
                    **summary,
                }
            )
            self._ledger("glitch", mac=device.mac_addr, kind=kind)
        mark.finish()

    # -- sniffer faults -------------------------------------------------------
    def _install_sniffer_faults(self) -> None:
        spec = self.plan.sniffer
        if spec is None:
            return
        rng = self._stream("sniffer")
        drop = float(spec.get("drop_probability", 0.0))
        reorder = float(spec.get("reorder_probability", 0.0))
        device = self.testbed.destination
        original = device.host_indication_handler
        self._sniffer_downstream = original

        def faulty(frame_bytes: bytes) -> None:
            if drop and rng.random() < drop:
                self.indications_dropped += 1
                self._ledger("indication_dropped")
                return
            if self._held_indication is not None:
                # Deliver the newer frame first, then the held one:
                # one adjacent transposition in the capture stream.
                held, self._held_indication = self._held_indication, None
                original(frame_bytes)
                original(held)
                self.indications_reordered += 1
                self._ledger("indication_reordered")
                return
            if reorder and rng.random() < reorder:
                self._held_indication = frame_bytes
                return
            original(frame_bytes)

        device.host_indication_handler = faulty

    # -- checkpoint capture / restore ----------------------------------------
    def adopt_mark(self, mark: ProcMark) -> None:
        """Install a restored bookmark over the freshly built one."""
        self._proc_marks[tuple(mark.key)] = mark

    def restart_marked(self, mark: ProcMark) -> bool:
        """Restart the scheduled fault process behind a restored mark."""
        key = tuple(mark.key)
        kind, index = key[0], key[1]
        env = self.testbed.env
        if kind == "churn":
            env.process(
                self._churn_process(
                    index,
                    dict(self.plan.churn[index]),
                    resume_wake_us=mark.wake_us,
                    resume_phase=mark.phase,
                    resume_mac=mark.data.get("mac"),
                )
            )
        elif kind == "glitch":
            env.process(
                self._glitch_process(
                    index,
                    dict(self.plan.firmware_glitches[index]),
                    resume_wake_us=mark.wake_us,
                )
            )
        else:
            raise ValueError(f"unknown process mark {key!r}")
        mark.stamp_created(env)
        return True

    def replay_membership(self, log: List[Dict[str, str]]) -> None:
        """Re-apply logged joins/leaves on a freshly built testbed.

        Rebuilds the device roster *structurally*; the captured
        per-device state and the injector's own ledger are overlaid
        afterwards by :meth:`restore_state`.
        """
        for entry in log:
            if entry["action"] == "join":
                self._join_station(entry["mac"])
            else:
                device = self.testbed.avln.find_device(entry["mac"])
                self._stop_sources_of(device)
                self._detach(device)

    def capture_state(self) -> Dict[str, Any]:
        """Everything mutable the injector owns, picklable."""
        state: Dict[str, Any] = {
            "rngs": {
                name: rng.bit_generator.state
                for name, rng in self._rngs.items()
            },
            "join_count": self._join_count,
            "membership_log": [dict(e) for e in self.membership_log],
            "held_indication": self._held_indication,
            "ledger": {
                "sacks_dropped": self.sacks_dropped,
                "sacks_corrupted": self.sacks_corrupted,
                "joins": self.joins,
                "leaves": self.leaves,
                "crash_leaves": self.crash_leaves,
                "glitches_applied": [dict(g) for g in self.glitches_applied],
                "indications_dropped": self.indications_dropped,
                "indications_reordered": self.indications_reordered,
            },
            "ledger_events": [dict(e) for e in self.ledger.events],
        }
        if self.gilbert_elliott is not None:
            state["gilbert_elliott"] = {
                "in_bad_state": self.gilbert_elliott.in_bad_state,
                "pbs_seen": self.gilbert_elliott.pbs_seen,
                "pbs_errored": self.gilbert_elliott.pbs_errored,
            }
        if self.impulse_noise_model is not None:
            state["impulse_noise"] = {
                "pbs_errored": self.impulse_noise_model.pbs_errored,
            }
        if self.link_quality_model is not None:
            state["link_quality"] = {
                "pbs_errored": self.link_quality_model.pbs_errored,
            }
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Overlay a captured state onto a freshly installed injector.

        Must run after :meth:`install` and :meth:`replay_membership`:
        the RNG states are written into the very generator objects the
        fault wrappers closed over at install time.
        """
        for name, rng_state in state["rngs"].items():
            self._rngs[name].bit_generator.state = rng_state
        self._join_count = state["join_count"]
        self.membership_log = [dict(e) for e in state["membership_log"]]
        self._held_indication = state["held_indication"]
        ledger = state["ledger"]
        self.sacks_dropped = ledger["sacks_dropped"]
        self.sacks_corrupted = ledger["sacks_corrupted"]
        self.joins = ledger["joins"]
        self.leaves = ledger["leaves"]
        self.crash_leaves = ledger["crash_leaves"]
        self.glitches_applied = [dict(g) for g in ledger["glitches_applied"]]
        self.indications_dropped = ledger["indications_dropped"]
        self.indications_reordered = ledger["indications_reordered"]
        # Pre-telemetry snapshots carry no event list; start empty so
        # old checkpoints stay restorable.  The rebuilt log is fully
        # unflushed: a resumed run re-emits the whole ledger into its
        # own file.
        self.ledger = JsonlEventLog()
        for event in state.get("ledger_events", []):
            self.ledger.append(dict(event))
        if "gilbert_elliott" in state:
            ge = state["gilbert_elliott"]
            self.gilbert_elliott.in_bad_state = ge["in_bad_state"]
            self.gilbert_elliott.pbs_seen = ge["pbs_seen"]
            self.gilbert_elliott.pbs_errored = ge["pbs_errored"]
        if "impulse_noise" in state:
            self.impulse_noise_model.pbs_errored = (
                state["impulse_noise"]["pbs_errored"]
            )
        if "link_quality" in state:
            self.link_quality_model.pbs_errored = (
                state["link_quality"]["pbs_errored"]
            )

    def flush(self) -> None:
        """Deliver any indication still held by the reorder fault."""
        if self._held_indication is not None:
            held, self._held_indication = self._held_indication, None
            self._sniffer_downstream(held)

    def flush_ledger_jsonl(self, path) -> int:
        """Append the injection event log to ``path`` (JSONL)."""
        return self.ledger.flush_jsonl(path)

    # -- reporting -------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """The injection ledger: what the plan actually did."""
        data: Dict[str, Any] = {
            "plan_seed": self.plan.seed,
            "sacks_dropped": self.sacks_dropped,
            "sacks_corrupted": self.sacks_corrupted,
            "joins": self.joins,
            "leaves": self.leaves,
            "crash_leaves": self.crash_leaves,
            "glitches_applied": list(self.glitches_applied),
            "indications_dropped": self.indications_dropped,
            "indications_reordered": self.indications_reordered,
        }
        if self.gilbert_elliott is not None:
            data["gilbert_elliott"] = {
                "pbs_seen": self.gilbert_elliott.pbs_seen,
                "pbs_errored": self.gilbert_elliott.pbs_errored,
                "stationary_error_rate": (
                    self.gilbert_elliott.stationary_error_rate
                ),
            }
        return data
