"""Runtime MAC invariant checker (the chaos layer's safety net).

Fault injection is only useful if protocol damage is *detected*: the
checker rides the existing :class:`~repro.obs.probe.MacProbe` event bus
and asserts, on every event it sees, that the 1901 backoff machinery is
still in a legal state — and periodically (every ``deep_every`` events,
plus once at :meth:`finalize`) runs a *deep sweep* over every station
FSM and the coordinator's airtime ledger.

Invariants enforced
-------------------
Per event (O(1), on the probe hot path):

- ``backoff_stage``: the redrawn BC lies in ``[0, CW)``, CW ≥ 1, DC ≥ 0;
- ``defer``: BC and DC stay non-negative after the busy-slot decrement;
- ``dc_jump``: the jump fired with BPC > 0 and an unexpired BC;
- ``slot``/``success``: exactly **one** source TEI (no two concurrent
  transmissions may both be marked successful);
- ``slot``/``collision``: at least two distinct sources;
- ``airtime``: strictly positive quanta.

Per deep sweep:

- every station FSM passes
  :meth:`repro.core.station.Station.check_invariants` (BC/DC/BPC/stage
  bounds, CW from the configured schedule, attempt ⇒ BC = 0);
- airtime conservation: the per-TEI airtime accumulated from probe
  events equals the coordinator :class:`~repro.mac.coordinator
  .RoundLog` ledger (the two are written adjacently in the
  coordinator, so any drift means lost or duplicated accounting).

Violation policy (from :attr:`ChaosPlan.invariants <repro.chaos.plan
.ChaosPlan.invariants>`): ``raise`` aborts the run with
:class:`InvariantViolation`, ``log`` records every description (up to a
cap) and keeps going, ``count`` only counts — optionally into a
:class:`repro.obs.registry.MetricsRegistry` counter
(``chaos_invariant_violations_total``, labelled by ``check``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["InvariantViolation", "InvariantChecker"]

#: Relative tolerance of the airtime-conservation comparison.  The two
#: accumulations add the same floats in the same order, so they agree
#: bitwise today; the epsilon only guards against a future reordering.
_AIRTIME_RTOL = 1e-9

#: Cap on stored violation descriptions (``log`` policy); the count
#: keeps increasing past it.
_MAX_STORED = 200


class InvariantViolation(AssertionError):
    """A MAC invariant failed during a chaos run.

    ``AssertionError`` subclass: a violation is a *bug surface* (either
    in the protocol implementation or in a fault injector), not an
    operational error.  Carries the simulation time and check name.
    """

    def __init__(self, description: str, check: str, time_us: float) -> None:
        super().__init__(f"[t={time_us:.1f}µs] {check}: {description}")
        self.description = description
        self.check = check
        self.time_us = time_us


class InvariantChecker:
    """Probe subscriber asserting MAC invariants at runtime.

    Parameters
    ----------
    policy:
        ``raise`` / ``log`` / ``count`` (see module docstring).
    deep_every:
        Run the deep sweep every this many probe events (0 disables
        periodic sweeps; :meth:`finalize` always sweeps once).
    registry:
        Optional :class:`repro.obs.registry.MetricsRegistry`; when
        given, violations increment
        ``chaos_invariant_violations_total{check=...}``.

    Use: subscribe to a probe and register the components to sweep::

        probe = instrument_testbed(testbed)
        checker = InvariantChecker(policy="raise")
        checker.watch_testbed(testbed)
        probe.subscribe(checker)
    """

    def __init__(
        self,
        policy: str = "raise",
        deep_every: int = 256,
        registry=None,
    ) -> None:
        if policy not in ("raise", "log", "count"):
            raise ValueError(
                f"policy must be raise/log/count, got {policy!r}"
            )
        if deep_every < 0:
            raise ValueError("deep_every must be >= 0")
        self.policy = policy
        self.deep_every = int(deep_every)
        self._counter = None
        if registry is not None:
            self._counter = registry.counter(
                "chaos_invariant_violations_total",
                "MAC invariant violations detected by the chaos checker",
                labelnames=("check",),
            )
        #: Components under watch.
        self._nodes: List[Any] = []
        self._coordinator = None
        #: Airtime accumulated from probe events, per source TEI.
        self._airtime_seen: Dict[int, float] = {}
        #: RoundLog airtime at watch time (pre-existing ledger content
        #: that predates our subscription and must be excluded).
        self._airtime_baseline: Dict[int, float] = {}
        #: Stats.
        self.events_seen = 0
        self.deep_sweeps = 0
        self.violation_count = 0
        self.violations: List[str] = []
        self._last_time_us = 0.0

    # -- registration ----------------------------------------------------
    def watch(self, coordinator=None, nodes=()) -> None:
        """Register a coordinator and/or MAC nodes for deep sweeps."""
        if coordinator is not None:
            self._coordinator = coordinator
            self._airtime_baseline = dict(
                coordinator.log.airtime_by_source
            )
            self._airtime_seen.clear()
        for node in nodes:
            if node not in self._nodes:
                self._nodes.append(node)

    def watch_node(self, node) -> None:
        """Register one MAC node (late joiners during churn)."""
        if node not in self._nodes:
            self._nodes.append(node)

    def watch_testbed(self, testbed) -> None:
        """Register every layer of a built testbed."""
        self.watch(
            coordinator=testbed.avln.coordinator,
            nodes=[device.node for device in testbed.avln.devices],
        )

    # -- status ----------------------------------------------------------
    @property
    def green(self) -> bool:
        """True while no invariant has been violated."""
        return self.violation_count == 0

    def summary(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "events_seen": self.events_seen,
            "deep_sweeps": self.deep_sweeps,
            "violation_count": self.violation_count,
            "violations": list(self.violations),
            "green": self.green,
        }

    # -- violation handling ----------------------------------------------
    def _violate(self, description: str, check: str) -> None:
        self.violation_count += 1
        if self._counter is not None:
            self._counter.inc(check=check)
        if self.policy == "raise":
            raise InvariantViolation(description, check, self._last_time_us)
        if self.policy == "log" and len(self.violations) < _MAX_STORED:
            self.violations.append(
                f"[t={self._last_time_us:.1f}µs] {check}: {description}"
            )

    # -- the probe-event fast path ----------------------------------------
    def __call__(self, event: Dict[str, Any]) -> None:
        self.events_seen += 1
        self._last_time_us = float(event.get("t_us", self._last_time_us))
        kind = event.get("event")
        if kind == "backoff_stage":
            cw = event["cw"]
            bc = event["bc"]
            if cw < 1:
                self._violate(
                    f"station {event.get('station')}: redraw with CW={cw}",
                    "backoff_cw",
                )
            if not 0 <= bc < max(cw, 1):
                self._violate(
                    f"station {event.get('station')}: redrawn BC={bc} "
                    f"outside [0, {cw})",
                    "backoff_bc",
                )
            if event["dc"] < 0:
                self._violate(
                    f"station {event.get('station')}: reloaded "
                    f"DC={event['dc']} negative",
                    "backoff_dc",
                )
        elif kind == "defer":
            if event["bc"] < 0 or event["dc"] < 0:
                self._violate(
                    f"station {event.get('station')}: defer left "
                    f"BC={event['bc']} DC={event['dc']}",
                    "defer_counters",
                )
        elif kind == "dc_jump":
            if event["bpc"] <= 0:
                self._violate(
                    f"station {event.get('station')}: DC jump with "
                    f"BPC={event['bpc']}",
                    "dc_jump",
                )
            if event["bc"] == 0:
                self._violate(
                    f"station {event.get('station')}: DC jump with "
                    "expired BC (should have attempted)",
                    "dc_jump",
                )
        elif kind == "slot":
            outcome = event.get("outcome")
            if outcome == "success":
                sources = event.get("sources", ())
                if len(sources) != 1:
                    self._violate(
                        f"success slot with sources={list(sources)} "
                        "(exactly one transmitter may succeed)",
                        "single_success",
                    )
            elif outcome == "collision":
                sources = event.get("sources", ())
                if len(sources) < 2:
                    self._violate(
                        f"collision slot with sources={list(sources)} "
                        "(needs at least two transmitters)",
                        "collision_sources",
                    )
        elif kind == "airtime":
            airtime = event.get("airtime_us", 0.0)
            if airtime <= 0.0:
                self._violate(
                    f"non-positive airtime quantum {airtime} for TEI "
                    f"{event.get('source_tei')}",
                    "airtime_positive",
                )
            else:
                tei = event["source_tei"]
                self._airtime_seen[tei] = (
                    self._airtime_seen.get(tei, 0.0) + airtime
                )
        if self.deep_every and self.events_seen % self.deep_every == 0:
            self.deep_sweep()

    # -- deep sweeps ------------------------------------------------------
    def deep_sweep(self) -> None:
        """Sweep every watched FSM and the airtime ledger."""
        self.deep_sweeps += 1
        for node in self._nodes:
            for station in node.stations().values():
                for description in station.check_invariants():
                    self._violate(description, "station_fsm")
        self._check_airtime_conservation()

    def _check_airtime_conservation(self) -> None:
        coordinator = self._coordinator
        if coordinator is None:
            return
        ledger = coordinator.log.airtime_by_source
        baseline = self._airtime_baseline
        total_ledger = sum(ledger.values())
        total_baseline = sum(baseline.values())
        if total_ledger < total_baseline - 1e-9:
            # The ledger was reset (warmup cut, RoundLog.reset()):
            # re-anchor rather than reporting phantom loss.
            self._airtime_baseline = {
                tei: ledger.get(tei, 0.0) - seen
                for tei, seen in self._airtime_seen.items()
            }
            baseline = self._airtime_baseline
        for tei, seen in self._airtime_seen.items():
            expected = baseline.get(tei, 0.0) + seen
            actual = ledger.get(tei, 0.0)
            tolerance = _AIRTIME_RTOL * max(abs(expected), abs(actual), 1.0)
            if abs(actual - expected) > tolerance:
                self._violate(
                    f"airtime ledger for TEI {tei} is {actual:.3f}µs but "
                    f"probe events account for {expected:.3f}µs",
                    "airtime_conservation",
                )

    def finalize(self) -> Dict[str, Any]:
        """Run one last deep sweep and return :meth:`summary`."""
        self.deep_sweep()
        return self.summary()
