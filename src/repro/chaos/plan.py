"""The chaos plan: a JSON-able, seedable schedule of fault injections.

A :class:`ChaosPlan` describes *what* to break and *when*, in a form
that rides inside runner task payloads (``payload["chaos"]``) exactly
like :class:`~repro.obs.capture.ObsConfig` rides in ``payload["obs"]``
— so the plan participates in the result-cache key and identical
``(scenario, plan, seed)`` triples are bit-identical across the serial
and parallel runner paths.

Determinism contract
--------------------
Every fault family draws from its own ``numpy`` generator derived as
``SeedSequence(entropy=plan.seed, spawn_key=(FAULT_ID,))`` — a fixed
id per family (:data:`FAULT_IDS`), independent of installation order
and of the experiment's own :class:`~repro.engine.randomness
.RandomStreams` tree.  Adding one fault family to a plan therefore
never perturbs the draws of another, and none of them perturb the
backoff/traffic draws of the simulation under test.

This is the *in-simulation* counterpart of the process-level
:mod:`repro.runner.faults` (which kills/hangs worker processes); see
``docs/robustness.md`` for how the two layers compose.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

__all__ = ["ChaosPlan", "FAULT_IDS", "preset_plan", "PRESETS"]

#: Fixed spawn-key ids, one per fault family (append-only: reordering
#: or reusing an id silently changes every existing plan's draws).
FAULT_IDS: Dict[str, int] = {
    "gilbert_elliott": 1,
    "impulse_noise": 2,
    "link_quality": 3,
    "sack_loss": 4,
    "sack_corruption": 5,
    "churn": 6,
    "firmware_glitches": 7,
    "sniffer": 8,
}

_CHURN_ACTIONS = ("join", "leave", "crash_leave")
_GLITCH_KINDS = ("zero", "inflate_acked", "corrupt_collided")
_INVARIANT_POLICIES = ("raise", "log", "count")


def _probability(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def _as_tuple_of_dicts(value) -> Tuple[Dict[str, Any], ...]:
    return tuple(dict(item) for item in (value or ()))


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """What to break, when, and how violations are policed.

    All fields are JSON-able; :meth:`as_jsonable` /
    :meth:`from_jsonable` round-trip exactly (tuples become lists on
    disk and come back as tuples).

    >>> plan = ChaosPlan(seed=7, sack_loss={"probability": 0.1})
    >>> ChaosPlan.from_jsonable(plan.as_jsonable()) == plan
    True
    """

    #: Root seed of the per-fault substreams (independent of the
    #: experiment seed on purpose: the same fault schedule can be
    #: replayed against different scenario seeds).
    seed: int = 0
    #: Gilbert–Elliott burst-error channel: keys ``p_good_to_bad``,
    #: ``p_bad_to_good``, ``error_good``, ``error_bad`` and optional
    #: ``start_us`` / ``end_us`` fault window.
    gilbert_elliott: Optional[Dict[str, float]] = None
    #: Impulsive-noise windows: dicts with ``start_us``,
    #: ``duration_us``, ``error_probability``.
    impulse_noise: Tuple[Dict[str, float], ...] = ()
    #: Station MAC address → extra per-PB error probability.
    link_quality: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Drop a station's SACKs: ``probability`` plus optional
    #: ``start_us`` / ``end_us``.
    sack_loss: Optional[Dict[str, float]] = None
    #: Corrupt (bit-flip the PB error map of) delivered SACKs.
    sack_corruption: Optional[Dict[str, float]] = None
    #: Timed membership changes: dicts with ``time_us``, ``action``
    #: (``join`` / ``leave`` / ``crash_leave``), optional ``mac`` and —
    #: for joins — optional ``leave_at_us`` / ``crash`` scheduling the
    #: paired departure.
    churn: Tuple[Dict[str, Any], ...] = ()
    #: Firmware counter glitches: dicts with ``time_us``, optional
    #: ``mac`` and ``kind`` (``zero`` / ``inflate_acked`` /
    #: ``corrupt_collided``).
    firmware_glitches: Tuple[Dict[str, Any], ...] = ()
    #: Sniffer-path faults: ``drop_probability`` and/or
    #: ``reorder_probability`` applied to host sniffer indications.
    sniffer: Optional[Dict[str, float]] = None
    #: Invariant-checker violation policy: ``raise`` / ``log`` /
    #: ``count``.
    invariants: str = "raise"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "impulse_noise", _as_tuple_of_dicts(self.impulse_noise)
        )
        object.__setattr__(self, "churn", _as_tuple_of_dicts(self.churn))
        object.__setattr__(
            self,
            "firmware_glitches",
            _as_tuple_of_dicts(self.firmware_glitches),
        )
        object.__setattr__(self, "link_quality", dict(self.link_quality))
        self.validate()

    # -- validation ------------------------------------------------------
    def validate(self) -> None:
        if self.invariants not in _INVARIANT_POLICIES:
            raise ValueError(
                f"invariants policy must be one of {_INVARIANT_POLICIES}, "
                f"got {self.invariants!r}"
            )
        if self.gilbert_elliott is not None:
            ge = self.gilbert_elliott
            for key in ("p_good_to_bad", "p_bad_to_good"):
                if key not in ge:
                    raise ValueError(f"gilbert_elliott needs {key!r}")
                _probability(f"gilbert_elliott.{key}", ge[key])
            for key in ("error_good", "error_bad"):
                _probability(f"gilbert_elliott.{key}", ge.get(key, 0.0))
        for window in self.impulse_noise:
            if float(window.get("duration_us", 0.0)) <= 0:
                raise ValueError("impulse_noise window needs duration_us > 0")
            _probability(
                "impulse_noise.error_probability",
                window.get("error_probability", 0.0),
            )
        for mac, probability in self.link_quality.items():
            _probability(f"link_quality[{mac!r}]", probability)
        for name, spec in (
            ("sack_loss", self.sack_loss),
            ("sack_corruption", self.sack_corruption),
        ):
            if spec is not None:
                _probability(
                    f"{name}.probability", spec.get("probability", 0.0)
                )
        for event in self.churn:
            action = event.get("action")
            if action not in _CHURN_ACTIONS:
                raise ValueError(
                    f"churn action must be one of {_CHURN_ACTIONS}, "
                    f"got {action!r}"
                )
            if "time_us" not in event:
                raise ValueError("churn event needs time_us")
        for glitch in self.firmware_glitches:
            kind = glitch.get("kind", "zero")
            if kind not in _GLITCH_KINDS:
                raise ValueError(
                    f"firmware glitch kind must be one of {_GLITCH_KINDS}, "
                    f"got {kind!r}"
                )
            if "time_us" not in glitch:
                raise ValueError("firmware glitch needs time_us")
        if self.sniffer is not None:
            _probability(
                "sniffer.drop_probability",
                self.sniffer.get("drop_probability", 0.0),
            )
            _probability(
                "sniffer.reorder_probability",
                self.sniffer.get("reorder_probability", 0.0),
            )

    # -- deterministic per-fault randomness ------------------------------
    def stream(self, fault: str) -> np.random.Generator:
        """The dedicated generator of one fault family.

        >>> plan = ChaosPlan(seed=3)
        >>> a = plan.stream("churn").random()
        >>> b = plan.stream("churn").random()
        >>> a == b  # fresh generator per call, same substream
        True
        """
        try:
            fault_id = FAULT_IDS[fault]
        except KeyError:
            raise ValueError(
                f"unknown fault family {fault!r}; "
                f"expected one of {sorted(FAULT_IDS)}"
            ) from None
        sequence = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(fault_id,)
        )
        return np.random.default_rng(sequence)

    # -- codec -----------------------------------------------------------
    def as_jsonable(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["impulse_noise"] = [dict(w) for w in self.impulse_noise]
        data["churn"] = [dict(e) for e in self.churn]
        data["firmware_glitches"] = [dict(g) for g in self.firmware_glitches]
        return data

    @classmethod
    def from_jsonable(
        cls, data: Union["ChaosPlan", Mapping[str, Any]]
    ) -> "ChaosPlan":
        if isinstance(data, cls):
            return data
        return cls(**dict(data))

    @property
    def any_channel_impairment(self) -> bool:
        return bool(
            self.gilbert_elliott or self.impulse_noise or self.link_quality
        )


#: Named preset plans (CLI ``--preset`` and the CI chaos-smoke job).
PRESETS = ("ge", "churn", "full")


def preset_plan(
    name: str,
    duration_us: float,
    seed: int = 0,
    invariants: str = "raise",
) -> ChaosPlan:
    """A ready-made plan scaled to an experiment of ``duration_us``.

    ``ge``
        Gilbert–Elliott bursts over the middle half of the run.
    ``churn``
        One station joins a quarter in and crash-leaves at three
        quarters, plus mild SACK loss while it is present.
    ``full``
        Both of the above plus an impulsive-noise window, a firmware
        glitch and sniffer drop/reorder.
    """
    quarter = float(duration_us) / 4.0
    ge = {
        "p_good_to_bad": 0.05,
        "p_bad_to_good": 0.4,
        "error_good": 0.0,
        "error_bad": 0.6,
        "start_us": quarter,
        "end_us": 3.0 * quarter,
    }
    churn = (
        {
            "time_us": quarter,
            "action": "join",
            "crash": True,
            "leave_at_us": 3.0 * quarter,
        },
    )
    if name == "ge":
        return ChaosPlan(seed=seed, gilbert_elliott=ge, invariants=invariants)
    if name == "churn":
        return ChaosPlan(
            seed=seed,
            churn=churn,
            sack_loss={
                "probability": 0.05,
                "start_us": quarter,
                "end_us": 3.0 * quarter,
            },
            invariants=invariants,
        )
    if name == "full":
        return ChaosPlan(
            seed=seed,
            gilbert_elliott=ge,
            impulse_noise=(
                {
                    "start_us": 1.5 * quarter,
                    "duration_us": 0.5 * quarter,
                    "error_probability": 0.8,
                },
            ),
            churn=churn,
            sack_loss={
                "probability": 0.05,
                "start_us": quarter,
                "end_us": 3.0 * quarter,
            },
            sack_corruption={
                "probability": 0.02,
                "start_us": quarter,
                "end_us": 3.0 * quarter,
            },
            firmware_glitches=(
                {"time_us": 2.0 * quarter, "kind": "inflate_acked"},
            ),
            sniffer={"drop_probability": 0.1, "reorder_probability": 0.1},
            invariants=invariants,
        )
    raise ValueError(f"unknown preset {name!r}; expected one of {PRESETS}")
