"""MAC re-convergence after fault clearance (the recovery harness).

The point of injecting faults is to show the MAC *recovers* from them:
after a burst-error episode ends and a churning station leaves, the
collision probability — the paper's headline §3.2 metric — must return
to its fault-free level, because the 1901 backoff state that the fault
perturbed (inflated BPC stages, retransmission queues) drains within a
few contention rounds.

:func:`run_recovery_experiment` measures that on one testbed with three
consecutive measurement windows:

1. **baseline** — fault-free, right after warm-up;
2. **faulty** — a fault episode (by default: one extra station joins
   *and* a Gilbert–Elliott burst channel switches on, both of which
   push the collision probability up);
3. **recovered** — after the faults clear and a settle gap elapses.

Each window uses the §3.2 procedure (reset stats → run → read ΣC/ΣA).
Recovery holds when the recovered window's collision probability is
back within ``tolerance`` (relative, with an absolute ``floor`` for
near-zero baselines) of the baseline.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional

from .experiment import attach_chaos
from .plan import ChaosPlan

__all__ = [
    "RecoveryResult",
    "run_recovery_experiment",
    "resume_recovery_experiment",
    "default_recovery_plan",
]


def default_recovery_plan(
    fault_start_us: float,
    fault_end_us: float,
    seed: int = 0,
    invariants: str = "raise",
) -> ChaosPlan:
    """The standard recovery episode: +1 station (crash-leave at the
    end) and a Gilbert–Elliott burst channel over the fault window."""
    return ChaosPlan(
        seed=seed,
        gilbert_elliott={
            "p_good_to_bad": 0.05,
            "p_bad_to_good": 0.4,
            "error_good": 0.0,
            "error_bad": 0.6,
            "start_us": fault_start_us,
            "end_us": fault_end_us,
        },
        churn=(
            {
                "time_us": fault_start_us,
                "action": "join",
                "crash": True,
                "leave_at_us": fault_end_us,
            },
        ),
        invariants=invariants,
    )


@dataclasses.dataclass(frozen=True)
class RecoveryResult:
    """Collision probabilities of the three windows + the verdict."""

    num_stations: int
    window_us: float
    baseline: float
    faulty: float
    recovered: float
    tolerance: float
    floor: float
    #: Invariant-checker summary over the whole experiment.
    invariants: Dict[str, Any]
    #: Injection ledger.
    injection: Dict[str, Any]

    @property
    def deviation(self) -> float:
        """|recovered − baseline|."""
        return abs(self.recovered - self.baseline)

    @property
    def allowed_deviation(self) -> float:
        return max(self.tolerance * self.baseline, self.floor)

    @property
    def converged(self) -> bool:
        """Did the MAC return to its fault-free operating point?"""
        return self.deviation <= self.allowed_deviation

    def as_dict(self) -> Dict[str, Any]:
        return {
            "num_stations": self.num_stations,
            "window_us": self.window_us,
            "baseline": self.baseline,
            "faulty": self.faulty,
            "recovered": self.recovered,
            "deviation": self.deviation,
            "allowed_deviation": self.allowed_deviation,
            "converged": self.converged,
            "invariants": dict(self.invariants),
            "injection": dict(self.injection),
        }


def _window_collision_probability(testbed, window_us: float) -> float:
    """One §3.2 measurement window on a running testbed."""
    testbed.reset_data_stats()
    testbed.run_until(testbed.env.now + window_us)
    rows = testbed.read_data_stats()
    acked = sum(row[1] for row in rows)
    collided = sum(row[2] for row in rows)
    return collided / acked if acked else 0.0


def run_recovery_experiment(
    num_stations: int = 3,
    seed: int = 1,
    plan: Optional[ChaosPlan] = None,
    window_us: float = 20e6,
    settle_us: float = 5e6,
    warmup_us: float = 2e6,
    tolerance: float = 0.05,
    floor: float = 0.02,
    plan_seed: int = 0,
    checkpoint_store=None,
    **testbed_kwargs,
) -> RecoveryResult:
    """Measure baseline → fault → recovery on one testbed.

    ``plan=None`` uses :func:`default_recovery_plan` timed to the
    window layout; a custom plan must schedule its faults inside
    ``[warmup_us + window_us, warmup_us + 2·window_us)`` to line up
    with the faulty window.

    ``floor`` is the absolute deviation always tolerated: collision
    probability is a ratio of two counters with O(1/√n) noise per
    window, so a purely relative tolerance would make short windows
    flaky at small baselines.

    ``checkpoint_store`` (a
    :class:`~repro.checkpoint.CheckpointStore`) snapshots the full
    testbed + chaos state at the first contention-round boundary of
    the settle gap — i.e. just after the fault episode clears.
    :func:`resume_recovery_experiment` re-enters the experiment from
    that snapshot and re-measures only the recovery window, producing
    a :class:`RecoveryResult` bit-identical to this one; it requires
    JSON-serializable ``testbed_kwargs``.
    """
    from ..experiments.testbed import build_testbed

    fault_start_us = warmup_us + window_us
    fault_end_us = fault_start_us + window_us
    if plan is None:
        plan = default_recovery_plan(
            fault_start_us, fault_end_us, seed=plan_seed
        )

    testbed = build_testbed(num_stations, seed=seed, **testbed_kwargs)
    injector, checker, _probe = attach_chaos(testbed, plan)

    testbed.run_until(warmup_us)
    if not testbed.avln.all_associated:
        testbed.run_until(warmup_us + 1e6)
    if not testbed.avln.all_associated:
        raise RuntimeError("stations failed to associate during warm-up")

    baseline = _window_collision_probability(testbed, window_us)
    faulty = _window_collision_probability(testbed, window_us)
    if checkpoint_store is not None:
        # Mirror Environment.run's stop arithmetic for the two runs
        # that remain, so the resumed experiment can reproduce the
        # exact stop instants with run_until_at.
        settle_start = testbed.env.now
        settle_stop = settle_start + (
            (settle_start + settle_us) - settle_start
        )
        recovered_stop = settle_stop + (
            (settle_stop + window_us) - settle_stop
        )
        try:
            json.dumps(testbed_kwargs)
        except TypeError as exc:
            raise ValueError(
                "checkpointed recovery requires JSON-serializable "
                f"testbed_kwargs: {exc}"
            ) from None
        _arm_settle_checkpoint(
            testbed,
            injector,
            checker,
            checkpoint_store,
            settle_stop=settle_stop,
            meta={
                "experiment": "recovery",
                "num_stations": num_stations,
                "seed": seed,
                "testbed_kwargs": testbed_kwargs,
                "plan": plan.as_jsonable()
                if isinstance(plan, ChaosPlan)
                else dict(plan),
                "window_us": window_us,
                "settle_us": settle_us,
                "warmup_us": warmup_us,
                "tolerance": tolerance,
                "floor": floor,
                "baseline": baseline,
                "faulty": faulty,
                "settle_stop_us": settle_stop,
                "recovered_stop_us": recovered_stop,
            },
        )
    # Let the faults clear and the backoff state drain before the
    # recovery window.
    try:
        testbed.run_until(testbed.env.now + settle_us)
    finally:
        if checkpoint_store is not None:
            testbed.avln.coordinator.checkpoint_hook = None
    recovered = _window_collision_probability(testbed, window_us)

    injector.flush()
    return RecoveryResult(
        num_stations=num_stations,
        window_us=window_us,
        baseline=baseline,
        faulty=faulty,
        recovered=recovered,
        tolerance=tolerance,
        floor=floor,
        invariants=checker.finalize(),
        injection=injector.report(),
    )


def _arm_settle_checkpoint(
    testbed, injector, checker, store, settle_stop: float, meta: Dict[str, Any]
) -> None:
    """One-shot snapshot at the first safe point of the settle gap.

    Fires at a contention-round boundary (the coordinator's checkpoint
    hook), skips instants with another event pending at the same time
    (relative order would not be reconstructible), and never fires
    inside the recovery measurement window — the resume must re-enter
    *before* the window's stat reset.
    """
    done = []

    def hook() -> None:
        env = testbed.env
        if done or env.now >= settle_stop or env.peek() == env.now:
            return
        from ..checkpoint.format import Checkpoint
        from ..checkpoint.testbed import capture_testbed

        store.write(
            Checkpoint(
                kind="testbed",
                seq=store.next_seq(),
                sim_time_us=env.now,
                meta=dict(meta),
                state=capture_testbed(
                    testbed, injector=injector, checker=checker
                ),
            )
        )
        done.append(True)

    testbed.avln.coordinator.checkpoint_hook = hook


def resume_recovery_experiment(store, checkpoint=None) -> RecoveryResult:
    """Re-enter a recovery experiment from its settle-gap snapshot.

    Rebuilds the testbed and chaos stack from the checkpoint's meta,
    restores the captured state, and re-runs only the tail of the
    settle gap plus the recovery window.  The returned
    :class:`RecoveryResult` — recovered collision probability,
    invariant summary and injection ledger included — is bit-identical
    to the one :func:`run_recovery_experiment` produced (or would have
    produced, had it not crashed after the snapshot).
    """
    from ..checkpoint.format import CheckpointError
    from ..checkpoint.testbed import restore_testbed_state
    from ..experiments.testbed import build_testbed

    if checkpoint is None:
        checkpoint = store.latest_valid()
        if checkpoint is None:
            raise CheckpointError(
                f"no valid checkpoint in {store.directory}"
            )
    meta = checkpoint.meta
    if checkpoint.kind != "testbed" or meta.get("experiment") != "recovery":
        raise CheckpointError(
            "checkpoint is not a recovery-experiment snapshot "
            f"(kind={checkpoint.kind!r}, "
            f"experiment={meta.get('experiment')!r})"
        )

    testbed = build_testbed(
        meta["num_stations"],
        seed=meta["seed"],
        **(meta.get("testbed_kwargs") or {}),
    )
    injector, checker, _probe = attach_chaos(testbed, meta["plan"])
    restore_testbed_state(
        testbed, checkpoint.state, injector=injector, checker=checker
    )

    testbed.env.run_until_at(meta["settle_stop_us"])
    testbed.reset_data_stats()
    testbed.env.run_until_at(meta["recovered_stop_us"])
    rows = testbed.read_data_stats()
    acked = sum(row[1] for row in rows)
    collided = sum(row[2] for row in rows)
    recovered = collided / acked if acked else 0.0

    injector.flush()
    return RecoveryResult(
        num_stations=meta["num_stations"],
        window_us=meta["window_us"],
        baseline=meta["baseline"],
        faulty=meta["faulty"],
        recovered=recovered,
        tolerance=meta["tolerance"],
        floor=meta["floor"],
        invariants=checker.finalize(),
        injection=injector.report(),
    )
