"""Deterministic checkpoint/resume for long simulations.

The engine, the RNG stream tree and the station FSMs are fully
deterministic, so a simulation restored from a checkpoint can be made
*bit-identical* to the uninterrupted run — a far stronger guarantee
than approximate resumption.  This package provides:

- :mod:`repro.checkpoint.integrity` — sha256 + atomic-write helpers
  (shared with the runner's result cache);
- :mod:`repro.checkpoint.format` — the versioned, checksummed on-disk
  container and the :class:`CheckpointStore` directory layout
  (newest-valid-wins, corrupted files skipped);
- :mod:`repro.checkpoint.slotsim` — snapshot/restore for the
  slot-synchronous :class:`~repro.core.simulator.SlotSimulator`;
- :mod:`repro.checkpoint.batch` — round-boundary array-state
  snapshot/restore for the vectorized
  :class:`~repro.batch.kernel.BatchSlotKernel`;
- :mod:`repro.checkpoint.testbed` — safe-point snapshot/restore for the
  event-driven §3.2 testbed (plain and chaos-injected), plus the
  checkpointed collision-test drivers the runner and CLI use.
"""

from .format import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    inspect_file,
    read_file,
    write_file,
)
from .batch import (
    DEFAULT_BATCH_EVERY_ROUNDS,
    restore_batch_kernel,
    run_batch_with_checkpoints,
    snapshot_batch_kernel,
)
from .integrity import FileLock, atomic_write_bytes, sha256_hex
from .slotsim import (
    restore_slot_simulator,
    run_simulate_with_checkpoints,
    snapshot_slot_simulator,
)
from .testbed import (
    DEFAULT_CHECKPOINT_EVERY_US,
    checkpointed_collision_test,
    resume_collision_test,
)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "DEFAULT_BATCH_EVERY_ROUNDS",
    "DEFAULT_CHECKPOINT_EVERY_US",
    "FileLock",
    "atomic_write_bytes",
    "checkpointed_collision_test",
    "inspect_file",
    "read_file",
    "restore_batch_kernel",
    "restore_slot_simulator",
    "resume_collision_test",
    "run_batch_with_checkpoints",
    "run_simulate_with_checkpoints",
    "sha256_hex",
    "snapshot_batch_kernel",
    "snapshot_slot_simulator",
    "write_file",
]
