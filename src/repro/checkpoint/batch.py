"""Checkpoint/restore for the vectorized batch kernel.

:class:`~repro.batch.kernel.BatchSlotKernel` pauses only at lockstep
*round boundaries* (between ``_round`` iterations), which is the batch
analogue of the scalar simulator pausing between slot events: a run
interleaved with any number of snapshots executes the exact same
iterations as an uninterrupted one, so resumption is **bit-identical**.

A snapshot is a single picklable dict of

- the per-point :class:`~repro.engine.randomness.RandomStreams` trees
  — with the lane RNG state written back into the real generator
  objects first (:meth:`~repro.batch.lanes.LaneRngs.write_back`), so
  the trees alone carry the complete RNG truth regardless of whether
  the draws ran vectorized or scalar;
- copies of every dynamic array (counters, clocks, per-station state).

Restoring constructs a fresh kernel from the scenarios and the
unpickled trees (which re-derives the lane arrays from the
written-back generator states) and overwrites the dynamic arrays.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..batch.kernel import BatchSlotKernel
from ..core.config import ScenarioConfig
from ..core.results import SimulationResult
from .format import Checkpoint, CheckpointStore

__all__ = [
    "DEFAULT_BATCH_EVERY_ROUNDS",
    "snapshot_batch_kernel",
    "restore_batch_kernel",
    "run_batch_with_checkpoints",
]

#: Default snapshot cadence, in lockstep rounds.  At the measured
#: kernel rate (thousands of points per round in microseconds) this
#: keeps snapshot overhead far below the slotsim layer's 10% budget.
DEFAULT_BATCH_EVERY_ROUNDS = 50_000

#: Dynamic kernel state captured/restored verbatim.
_DYNAMIC_ARRAYS = (
    "bc",
    "dc",
    "bpc",
    "cw",
    "state",
    "attempts",
    "queue",
    "next_arrival_us",
    "arrivals",
    "losses",
    "t",
    "successes",
    "collisions",
    "collision_events",
    "idle_slots",
    "st_successes",
    "st_collisions",
    "st_jumps",
    "st_drops",
)


def snapshot_batch_kernel(kernel: BatchSlotKernel) -> Dict[str, Any]:
    """The picklable checkpoint payload of a (possibly mid-run) kernel.

    Must be taken at a round boundary (i.e. outside ``advance``),
    which is the only place callers can observe the kernel anyway.
    """
    # Make the stream trees the single source of RNG truth: in vector
    # mode the real generators lag behind the lane arrays until the
    # state is written back.
    kernel.rngs.write_back(kernel._generators)
    return {
        "streams": kernel.streams,
        "arrays": {
            name: np.array(getattr(kernel, name), copy=True)
            for name in _DYNAMIC_ARRAYS
        },
        "rounds": kernel.rounds,
    }


def restore_batch_kernel(
    scenarios: Sequence[ScenarioConfig],
    payload: Dict[str, Any],
    on_round=None,
) -> BatchSlotKernel:
    """Rebuild a mid-run kernel from a snapshot payload.

    ``scenarios`` must be the configurations the snapshot was taken
    under (the checkpoint's ``meta`` carries their JSON forms so
    callers can verify).
    """
    # ``skip_arrival_draws``: the snapshot's stream trees carry the
    # arrival generators mid-stream; re-running the construction-time
    # initial interarrival draws would advance them past the snapshot
    # state.  The dynamic ``next_arrival_us`` array is overwritten
    # below anyway.
    kernel = BatchSlotKernel(
        scenarios,
        streams=payload["streams"],
        on_round=on_round,
        skip_arrival_draws=True,
    )
    for name in _DYNAMIC_ARRAYS:
        target = getattr(kernel, name)
        source = payload["arrays"][name]
        if target.shape != source.shape:
            raise ValueError(
                f"snapshot array {name!r} has shape {source.shape}, "
                f"kernel expects {target.shape} — scenario list mismatch?"
            )
        target[...] = source
    kernel.rounds = int(payload["rounds"])
    return kernel


def run_batch_with_checkpoints(
    kernel: BatchSlotKernel,
    store: CheckpointStore,
    every_rounds: Optional[int] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> List[SimulationResult]:
    """Drive ``kernel`` to completion, snapshotting every ``every_rounds``.

    Works identically for a fresh kernel and one restored from a
    checkpoint.  Pauses land between lockstep rounds, so the executed
    iterations — and the results — are bit-identical to an
    uninterrupted :meth:`~repro.batch.kernel.BatchSlotKernel.run`.
    """
    if every_rounds is None:
        every_rounds = DEFAULT_BATCH_EVERY_ROUNDS
    if every_rounds <= 0:
        raise ValueError(
            f"every_rounds must be > 0, got {every_rounds}"
        )
    while not kernel.advance(every_rounds):
        store.write(
            Checkpoint(
                kind="batch",
                seq=store.next_seq(),
                sim_time_us=float(np.min(kernel.t)),
                meta=dict(meta or {}),
                state=snapshot_batch_kernel(kernel),
            )
        )
    return kernel.results()
