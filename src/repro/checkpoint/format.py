"""The on-disk checkpoint container and store.

A checkpoint file is::

    REPRO-CKPT\\n
    <one JSON header line>\\n
    <pickle payload bytes>

The header carries the format version, the checkpoint kind
(``"slotsim"`` / ``"testbed"``), a monotone sequence number, the
simulation time, a JSON-able ``meta`` dict (everything needed to
rebuild the simulation's *structure* — the state itself lives in the
payload), the payload length and its sha256.  ``inspect`` parses only
the header; ``read`` additionally verifies length + checksum and
unpickles.  Files are written via write-to-temp + fsync + rename
(:mod:`repro.checkpoint.integrity`), so a torn write is detectable and
never mistaken for a checkpoint.

A :class:`CheckpointStore` is a directory of ``ckpt-<seq>.ckpt`` files.
``latest_valid`` walks them newest-first and returns the first one that
verifies, skipping corrupted or truncated files — so resumption always
lands on the newest checkpoint that survived the crash intact.

Fault hook: if ``REPRO_CHECKPOINT_KILL`` is set to an integer N, the
process is killed (``os._exit``) immediately after it durably writes
checkpoint N.  The retried task then resumes from N and next writes
N + 1, so the kill fires exactly once without any cross-process claim
bookkeeping — the deterministic crash the kill-mid-run tests and the CI
``checkpoint-smoke`` job rely on.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import re
from typing import Any, Dict, List, Optional

from .integrity import atomic_write_bytes, sha256_hex

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "MAGIC",
    "KILL_ENV",
    "KILL_EXIT_CODE",
    "JOURNAL_FILENAME",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "journal_event",
    "write_file",
    "read_file",
    "inspect_file",
]

CHECKPOINT_FORMAT_VERSION = 1
MAGIC = b"REPRO-CKPT\n"

#: Environment variable holding the checkpoint seq after which the
#: writing process kills itself (crash-injection for resumption tests).
KILL_ENV = "REPRO_CHECKPOINT_KILL"
#: Exit code of the injected post-checkpoint kill.
KILL_EXIT_CODE = 96

_FILE_RE = re.compile(r"^ckpt-(\d{8})\.ckpt$")

#: Telemetry journal inside a store directory.  Not matched by
#: ``_FILE_RE``, so store scans ignore it.
JOURNAL_FILENAME = "journal.jsonl"


def journal_event(directory: str, event: str, **fields: Any) -> None:
    """Append one save/resume event to the store's telemetry journal.

    Written only while a telemetry context is active (checked through
    ``sys.modules``, same as :func:`repro.obs.recording.append_jsonl`,
    so telemetry-free checkpointing pays nothing and imports nothing).
    The line flows through ``append_jsonl`` and therefore carries the
    run's ``run_id``/``span_id`` — the join key between checkpoint
    activity and the rest of the run's streams.  Journal failures are
    swallowed: telemetry must never break a checkpoint write.
    """
    import sys

    module = sys.modules.get("repro.telemetry.context")
    if module is None or module.current_ids() is None:
        return
    from ..obs.recording import append_jsonl

    try:
        append_jsonl(
            os.path.join(directory, JOURNAL_FILENAME),
            [{"event": event, **fields}],
        )
    except OSError:
        pass


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, malformed, or fails verification."""


@dataclasses.dataclass
class Checkpoint:
    """One snapshot: JSON-able identity + pickled simulation state."""

    kind: str
    seq: int
    sim_time_us: float
    meta: Dict[str, Any]
    state: Any

    def header(self, payload: bytes) -> Dict[str, Any]:
        return {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "kind": self.kind,
            "seq": self.seq,
            "sim_time_us": self.sim_time_us,
            "meta": self.meta,
            "payload_bytes": len(payload),
            "payload_sha256": sha256_hex(payload),
        }


def write_file(path: str, checkpoint: Checkpoint) -> None:
    """Serialize ``checkpoint`` to ``path`` atomically."""
    payload = pickle.dumps(checkpoint.state, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps(
        checkpoint.header(payload), sort_keys=True, separators=(",", ":")
    )
    atomic_write_bytes(
        path, MAGIC + header.encode("utf-8") + b"\n" + payload
    )


def _split(path: str) -> tuple:
    """Return ``(header_dict, payload_bytes)`` or raise CheckpointError."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read {path}: {exc}") from exc
    if not blob.startswith(MAGIC):
        raise CheckpointError(f"{path}: bad magic (not a checkpoint file)")
    rest = blob[len(MAGIC):]
    newline = rest.find(b"\n")
    if newline < 0:
        raise CheckpointError(f"{path}: truncated header")
    try:
        header = json.loads(rest[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: malformed header: {exc}") from exc
    if not isinstance(header, dict):
        raise CheckpointError(f"{path}: header is not an object")
    if header.get("format_version") != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported format version "
            f"{header.get('format_version')!r}"
        )
    return header, rest[newline + 1:]


def inspect_file(path: str) -> Dict[str, Any]:
    """Parse and return the header without touching the payload."""
    header, _payload = _split(path)
    return header


def read_file(path: str) -> Checkpoint:
    """Fully read, verify and deserialize one checkpoint file."""
    header, payload = _split(path)
    if len(payload) != header.get("payload_bytes"):
        raise CheckpointError(
            f"{path}: payload is {len(payload)} bytes, header says "
            f"{header.get('payload_bytes')} (truncated write?)"
        )
    digest = sha256_hex(payload)
    if digest != header.get("payload_sha256"):
        raise CheckpointError(f"{path}: payload sha256 mismatch")
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # corrupt-but-checksummed cannot happen;
        # an unpicklable payload means a foreign or incompatible writer.
        raise CheckpointError(f"{path}: cannot unpickle payload: {exc}") from exc
    return Checkpoint(
        kind=str(header["kind"]),
        seq=int(header["seq"]),
        sim_time_us=float(header["sim_time_us"]),
        meta=dict(header.get("meta") or {}),
        state=state,
    )


class CheckpointStore:
    """A directory of sequence-numbered checkpoint files."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def __repr__(self) -> str:
        return f"CheckpointStore({self.directory!r})"

    def path_for(self, seq: int) -> str:
        return os.path.join(self.directory, f"ckpt-{seq:08d}.ckpt")

    def sequence_numbers(self) -> List[int]:
        """All on-disk sequence numbers, ascending (validity unchecked)."""
        seqs = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            match = _FILE_RE.match(name)
            if match:
                seqs.append(int(match.group(1)))
        return sorted(seqs)

    def next_seq(self) -> int:
        seqs = self.sequence_numbers()
        return (seqs[-1] + 1) if seqs else 1

    def write(self, checkpoint: Checkpoint) -> str:
        """Durably write ``checkpoint``; returns its path.

        Honors the ``REPRO_CHECKPOINT_KILL`` crash-injection hook
        *after* the rename, so the injected crash always leaves a valid
        newest checkpoint behind.
        """
        path = self.path_for(checkpoint.seq)
        write_file(path, checkpoint)
        journal_event(
            self.directory,
            "checkpoint_save",
            kind=checkpoint.kind,
            seq=checkpoint.seq,
            sim_time_us=checkpoint.sim_time_us,
        )
        kill_after = os.environ.get(KILL_ENV)
        if kill_after is not None:
            try:
                kill_seq = int(kill_after)
            except ValueError:
                kill_seq = None
            if kill_seq is not None and kill_seq == checkpoint.seq:
                os._exit(KILL_EXIT_CODE)
        return path

    def latest_valid(self) -> Optional[Checkpoint]:
        """The newest checkpoint that verifies, or ``None``.

        Corrupted, truncated or foreign files are skipped (never
        deleted: they are evidence), so a crash mid-write simply falls
        back to the previous snapshot.
        """
        for seq in reversed(self.sequence_numbers()):
            try:
                return read_file(self.path_for(seq))
            except CheckpointError:
                continue
        return None

    def entries(self) -> List[Dict[str, Any]]:
        """Per-file inspection summary (for the CLI and CI artifacts)."""
        rows = []
        for seq in self.sequence_numbers():
            path = self.path_for(seq)
            row: Dict[str, Any] = {
                "seq": seq,
                "path": path,
                "bytes": os.path.getsize(path) if os.path.exists(path) else 0,
            }
            try:
                read_file(path)
                row["valid"] = True
                row["header"] = inspect_file(path)
            except CheckpointError as exc:
                row["valid"] = False
                row["error"] = str(exc)
            rows.append(row)
        return rows

    def prune(self, keep_last: int) -> int:
        """Delete all but the newest ``keep_last`` files; returns count."""
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        seqs = self.sequence_numbers()
        removed = 0
        for seq in seqs[:-keep_last]:
            try:
                os.unlink(self.path_for(seq))
                removed += 1
            except OSError:
                pass
        return removed
