"""Content integrity and atomic-write primitives.

Shared by the checkpoint container (:mod:`repro.checkpoint.format`) and
the runner's result cache (:mod:`repro.runner.cache`): both persist
state a crash must never corrupt silently, so both use the same two
building blocks — a sha256 content checksum verified on every read, and
write-to-temp + fsync + atomic rename so a file is either complete or
absent (a torn write leaves only a temp file behind, never a plausible
half-entry under the real name).
"""

from __future__ import annotations

import hashlib
import os
import tempfile

__all__ = ["sha256_hex", "atomic_write_bytes", "atomic_write_text"]


def sha256_hex(data: bytes) -> str:
    """Hex sha256 of ``data``."""
    return hashlib.sha256(data).hexdigest()


def atomic_write_bytes(path: str, data: bytes, temp_prefix: str = ".tmp-") -> None:
    """Write ``data`` to ``path`` atomically and durably.

    The bytes land in a same-directory temp file which is fsynced and
    then renamed over ``path``; the enclosing directory is fsynced too
    (best effort — not all platforms allow opening directories), so a
    crash at any instant leaves either the old file, the new file, or a
    stray temp file — never a truncated ``path``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(prefix=temp_prefix, dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def atomic_write_text(
    path: str, text: str, temp_prefix: str = ".tmp-"
) -> None:
    """Atomic, durable UTF-8 text write (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode("utf-8"), temp_prefix=temp_prefix)
