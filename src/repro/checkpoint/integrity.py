"""Content integrity and atomic-write primitives.

Shared by the checkpoint container (:mod:`repro.checkpoint.format`) and
the runner's result cache (:mod:`repro.runner.cache`): both persist
state a crash must never corrupt silently, so both use the same two
building blocks — a sha256 content checksum verified on every read, and
write-to-temp + fsync + atomic rename so a file is either complete or
absent (a torn write leaves only a temp file behind, never a plausible
half-entry under the real name).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading

try:  # POSIX advisory locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = [
    "FileLock",
    "sha256_hex",
    "atomic_write_bytes",
    "atomic_write_text",
]


def sha256_hex(data: bytes) -> str:
    """Hex sha256 of ``data``."""
    return hashlib.sha256(data).hexdigest()


def atomic_write_bytes(path: str, data: bytes, temp_prefix: str = ".tmp-") -> None:
    """Write ``data`` to ``path`` atomically and durably.

    The bytes land in a same-directory temp file which is fsynced and
    then renamed over ``path``; the enclosing directory is fsynced too
    (best effort — not all platforms allow opening directories), so a
    crash at any instant leaves either the old file, the new file, or a
    stray temp file — never a truncated ``path``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(prefix=temp_prefix, dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def atomic_write_text(
    path: str, text: str, temp_prefix: str = ".tmp-"
) -> None:
    """Atomic, durable UTF-8 text write (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode("utf-8"), temp_prefix=temp_prefix)


class FileLock:
    """Advisory cross-process mutex on a lock file (``flock``).

    Reentrant *within* a process, exclusive *across* processes via
    ``fcntl.flock`` — the coordination the result cache needs when
    workers of separate orchestrator processes write the same cache
    directory.  Reentrancy is process-wide, not per-instance: all
    ``FileLock`` objects for the same path share one hold through a
    class-level registry.  ``flock`` blocks between two open file
    descriptions *even in the same process*, so two ``ResultCache``
    instances on one directory (e.g. a ``clear`` fired from inside a
    ``put``'s critical section) would otherwise self-deadlock.
    Advisory by design: readers never take it (atomic rename already
    guarantees they see whole entries), so lock-free readers and
    locked writers coexist.

    Degrades to a process-local no-op where ``fcntl`` is unavailable —
    same-process reentrancy still works, cross-process exclusion is
    simply not provided (matching the pre-lock behavior there).
    """

    #: path -> {"fd": int | None, "depth": int}, shared process-wide.
    _holds: "dict[str, dict]" = {}
    _holds_guard = threading.Lock()

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = os.fspath(path)
        self._key = os.path.abspath(self.path)
        self._local_depth = 0

    def acquire(self) -> None:
        with FileLock._holds_guard:
            hold = FileLock._holds.get(self._key)
            if hold is not None:
                hold["depth"] += 1
                self._local_depth += 1
                return
        os.makedirs(os.path.dirname(self._key), exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
            except OSError:
                # Filesystems without flock (some network mounts):
                # advisory means optional, never fatal.
                pass
        with FileLock._holds_guard:
            FileLock._holds[self._key] = {"fd": fd, "depth": 1}
        self._local_depth += 1

    def release(self) -> None:
        if self._local_depth == 0:
            return
        self._local_depth -= 1
        with FileLock._holds_guard:
            hold = FileLock._holds.get(self._key)
            if hold is None:
                return
            hold["depth"] -= 1
            if hold["depth"] > 0:
                return
            del FileLock._holds[self._key]
        fd = hold["fd"]
        if fd is None:
            return
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
        os.close(fd)

    @property
    def held(self) -> bool:
        return self._local_depth > 0

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()
