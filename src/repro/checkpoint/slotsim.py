"""Checkpoint/restore for the slot-synchronous simulator.

:class:`~repro.core.simulator.SlotSimulator` keeps its whole loop state
(stations, arrival processes, trace, counters, clock) in picklable
objects, and its RNG draws all flow through the
:class:`~repro.engine.randomness.RandomStreams` tree whose generators
are picklable too.  A snapshot is therefore a single pickle of
``{streams, state}`` — pickling both together preserves the identity
sharing between the stream tree and the generators the stations hold,
so a restored simulator draws the exact same variates the original
would have.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.simulator import SlotSimulator
from .format import Checkpoint, CheckpointStore

__all__ = [
    "snapshot_slot_simulator",
    "restore_slot_simulator",
    "run_simulate_with_checkpoints",
]

#: Default snapshot interval for ``simulate`` tasks, in simulated µs.
DEFAULT_SLOTSIM_EVERY_US = 1e6


def snapshot_slot_simulator(sim: SlotSimulator) -> Dict[str, Any]:
    """The picklable checkpoint payload of a started simulator."""
    if sim._state is None:
        raise ValueError("cannot snapshot a simulator that has not started")
    return {
        "streams": sim.streams,
        "state": sim._state,
        "flags": {
            "record_trace": sim.record_trace,
            "record_slots": sim.record_slots,
            "record_delays": sim.record_delays,
        },
    }


def restore_slot_simulator(scenario, payload: Dict[str, Any]) -> SlotSimulator:
    """Rebuild a mid-run simulator from a snapshot payload.

    ``scenario`` must be the configuration the snapshot was taken
    under (the checkpoint's ``meta`` carries its JSON form so callers
    can verify); the recording flags ride in the payload itself.
    """
    flags = payload["flags"]
    sim = SlotSimulator(
        scenario,
        record_trace=flags["record_trace"],
        record_slots=flags["record_slots"],
        record_delays=flags["record_delays"],
        streams=payload["streams"],
    )
    # record_trace is ORed with record_slots in __init__; restore the
    # captured values verbatim so result assembly matches exactly.
    sim.record_trace = flags["record_trace"]
    sim._state = payload["state"]
    return sim


def run_simulate_with_checkpoints(
    sim: SlotSimulator,
    store: CheckpointStore,
    every_us: Optional[float] = None,
    meta: Optional[Dict[str, Any]] = None,
):
    """Drive ``sim`` to completion, snapshotting every ``every_us``.

    Works identically for a fresh simulator and one restored from a
    checkpoint: the next snapshot is always due ``every_us`` after the
    current clock.  Pauses land between slot events, so the executed
    iterations — and the result — are bit-identical to an uninterrupted
    :meth:`~repro.core.simulator.SlotSimulator.run`.
    """
    if every_us is None:
        every_us = DEFAULT_SLOTSIM_EVERY_US
    if every_us <= 0:
        raise ValueError(f"every_us must be > 0, got {every_us}")
    if sim._state is None:
        sim.advance(0.0)  # materialize the loop state without stepping
    next_due = sim._state["t"] + every_us
    while not sim.advance(next_due):
        now = sim._state["t"]
        store.write(
            Checkpoint(
                kind="slotsim",
                seq=store.next_seq(),
                sim_time_us=now,
                meta=dict(meta or {}),
                state=snapshot_slot_simulator(sim),
            )
        )
        next_due = now + every_us
    return sim.result()
