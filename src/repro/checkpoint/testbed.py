"""Safe-point checkpoint/restore for the event-driven §3 testbed.

The event MAC runs on generator processes, which cannot be pickled.
Checkpointing therefore happens at the coordinator's *round boundary*
(the one instant with no contention state in flight) and captures,
instead of the generators themselves, everything needed to rebuild an
observably identical simulation:

- the engine clock (:meth:`~repro.engine.environment.Environment
  .clock_state`) — the pending event heap is *not* captured;
- the state of every RNG substream in the
  :class:`~repro.engine.randomness.RandomStreams` tree (plus the chaos
  injector's own named generators);
- the mutable state of every device: MAC node counters, per-priority
  queues (the queued frames and MMEs are plain picklable dataclasses),
  in-flight bursts, retransmission lists, backoff FSMs, firmware
  counters, address tables and keys;
- the coordinator's :class:`~repro.mac.coordinator.RoundLog`, the
  strip's wire counters, the AVLN beacon sequence, the global MPDU/
  frame-id counters, traffic-source counters, sniffer captures, and —
  under chaos — the injector ledger, error-model Markov states and the
  invariant checker's accumulators;
- one :class:`~repro.engine.marks.ProcMark` per sleeping process
  (sources, beacon, association, channel estimation, churn, firmware
  glitches), from which restore restarts fresh generators that wake at
  the exact recorded instants, in the exact original order.

Restore rebuilds the testbed structurally (:func:`~repro.experiments
.testbed.build_testbed` + chaos membership replay), overlays the
captured state, restarts the marked processes in
:func:`~repro.engine.marks.restart_order`, and finally restarts the
coordinator — reproducing the original event heap's relative ordering,
which is what makes resumed runs *bit-identical* to uninterrupted ones.

:func:`checkpointed_collision_test` / :func:`resume_collision_test`
wrap the §3.2 measurement procedure (plain or chaos-injected) around
this machinery; the runner and the CLI drive those.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..core.parameters import PriorityClass
from ..engine.marks import ProcMark, restart_order
from ..phy.framing import mpdu_sequence_state, restore_mpdu_sequence
from ..traffic.packets import frame_id_state, restore_frame_ids
from .format import Checkpoint, CheckpointError, CheckpointStore

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY_US",
    "capture_testbed",
    "restore_testbed_state",
    "checkpointed_collision_test",
    "resume_collision_test",
]

#: Default snapshot interval for testbed runs, in simulated µs.  At the
#: paper's 240 s test duration this yields ~24 snapshots per test; the
#: checkpoint benchmark pins the overhead of this default under 10 %.
DEFAULT_CHECKPOINT_EVERY_US = 10e6

_STATION_FIELDS = (
    "state",
    "bpc",
    "bc",
    "dc",
    "cw",
    "attempts_this_frame",
    "successes",
    "collisions",
    "drops",
    "jumps",
    "_attempting",
)


# -- capture -----------------------------------------------------------------
def _capture_node(node) -> Dict[str, Any]:
    queues = node.queues
    return {
        "tei": node.tei,
        "data": {
            int(p): list(q) for p, q in queues._data.items() if q
        },
        "management": {
            int(p): list(q) for p, q in queues._management.items() if q
        },
        "queue_drops": queues.drops,
        "current_bursts": {
            int(p): burst for p, burst in node._current_bursts.items()
        },
        "contending_priority": (
            None
            if node._contending_priority is None
            else int(node._contending_priority)
        ),
        "retransmit": {
            int(p): list(mpdus)
            for p, mpdus in node._retransmit.items()
            if mpdus
        },
        "tx_bursts": node.tx_bursts,
        "tx_collisions": node.tx_collisions,
        "phy_retransmissions": node.phy_retransmissions,
        "stations": {
            int(p): {
                field: getattr(station, field)
                for field in _STATION_FIELDS
            }
            for p, station in node._stations.items()
        },
    }


def _restore_node(node, state: Dict[str, Any]) -> None:
    node.tei = state["tei"]
    queues = node.queues
    for priority in PriorityClass:
        queues._data[priority] = deque(state["data"].get(int(priority), ()))
        queues._management[priority] = deque(
            state["management"].get(int(priority), ())
        )
    queues.drops = state["queue_drops"]
    node._current_bursts = {
        PriorityClass(p): burst
        for p, burst in state["current_bursts"].items()
    }
    node._contending_priority = (
        None
        if state["contending_priority"] is None
        else PriorityClass(state["contending_priority"])
    )
    node._retransmit = {
        PriorityClass(p): list(mpdus)
        for p, mpdus in state["retransmit"].items()
    }
    node.tx_bursts = state["tx_bursts"]
    node.tx_collisions = state["tx_collisions"]
    node.phy_retransmissions = state["phy_retransmissions"]
    for p, fields in state["stations"].items():
        station = node.station_for(PriorityClass(p))
        for field, value in fields.items():
            setattr(station, field, value)


def _capture_device(device) -> Dict[str, Any]:
    state = {
        "node": _capture_node(device.node),
        "address_table": dict(device.address_table),
        "nek": device.keys.nek,
        "received_frames": device.received_frames,
        "received_bytes": device.received_bytes,
        "received_frame_log": list(device.received_frame_log),
        "unresolved_drops": device.unresolved_drops,
        "beacons_seen": device.beacons_seen,
        "channel_est_seen": device.channel_est_seen,
        "mmes_sent": device.mmes_sent,
        "firmware": {
            "links": {
                key: (stats.acked, stats.collided)
                for key, stats in device.firmware._links.items()
            },
            "phy_errors": device.firmware.phy_errors,
        },
    }
    if device.is_cco:
        state["next_tei"] = device._next_tei
    return state


def _restore_device(device, state: Dict[str, Any]) -> None:
    _restore_node(device.node, state["node"])
    device.address_table = dict(state["address_table"])
    device.keys.nek = state["nek"]
    device.received_frames = state["received_frames"]
    device.received_bytes = state["received_bytes"]
    device.received_frame_log = list(state["received_frame_log"])
    device.unresolved_drops = state["unresolved_drops"]
    device.beacons_seen = state["beacons_seen"]
    device.channel_est_seen = state["channel_est_seen"]
    device.mmes_sent = state["mmes_sent"]
    firmware = device.firmware
    firmware._links.clear()
    for key, (acked, collided) in state["firmware"]["links"].items():
        stats = firmware.link(*key)
        stats.acked = acked
        stats.collided = collided
    firmware.phy_errors = state["firmware"]["phy_errors"]
    if device.is_cco:
        device._next_tei = state["next_tei"]


def _capture_checker(checker) -> Dict[str, Any]:
    return {
        "airtime_seen": dict(checker._airtime_seen),
        "airtime_baseline": dict(checker._airtime_baseline),
        "events_seen": checker.events_seen,
        "deep_sweeps": checker.deep_sweeps,
        "violation_count": checker.violation_count,
        "violations": list(checker.violations),
        "last_time_us": checker._last_time_us,
    }


def _restore_checker(checker, state: Dict[str, Any]) -> None:
    checker._airtime_seen = dict(state["airtime_seen"])
    checker._airtime_baseline = dict(state["airtime_baseline"])
    checker.events_seen = state["events_seen"]
    checker.deep_sweeps = state["deep_sweeps"]
    checker.violation_count = state["violation_count"]
    checker.violations = list(state["violations"])
    checker._last_time_us = state["last_time_us"]


def capture_testbed(
    testbed, injector=None, checker=None
) -> Dict[str, Any]:
    """The picklable state of a testbed paused at a safe point.

    Must be called at a coordinator round boundary (the
    ``checkpoint_hook``) with no other event pending at the current
    instant; :func:`checkpointed_collision_test` enforces both.
    """
    avln = testbed.avln
    coordinator = avln.coordinator
    state: Dict[str, Any] = {
        "clock": testbed.env.clock_state(),
        "streams": {
            key: rng.bit_generator.state
            for key, rng in testbed.streams._streams.items()
        },
        "mpdu_sequence": mpdu_sequence_state(),
        "frame_ids": frame_id_state(),
        "round_log": coordinator.log.as_dict(),
        "strip": {
            "sof_count": avln.strip.sof_count,
            "delivered_mpdus": avln.strip.delivered_mpdus,
        },
        "beacon_sequence": avln._beacon_sequence,
        "devices": {
            device.mac_addr: _capture_device(device)
            for device in avln.devices
        },
        "sources": [
            {
                "offered": source.offered,
                "accepted": source.accepted,
                "stopped": source.stopped,
                "mark": source.mark.as_state(),
            }
            for source in testbed.sources
        ],
        "avln_marks": [
            mark.as_state() for mark in avln._proc_marks.values()
        ],
        "faifa_captures": (
            list(testbed.faifa.captures)
            if testbed.faifa is not None
            else None
        ),
    }
    if injector is not None:
        state["injector"] = injector.capture_state()
        state["injector_marks"] = [
            mark.as_state() for mark in injector._proc_marks.values()
        ]
    if checker is not None:
        state["checker"] = _capture_checker(checker)
    return state


# -- restore -----------------------------------------------------------------
def restore_testbed_state(
    testbed, state: Dict[str, Any], injector=None, checker=None
) -> None:
    """Overlay a captured state onto a freshly built testbed.

    ``testbed`` must come from :func:`~repro.experiments.testbed
    .build_testbed` with the *same* configuration the snapshot was taken
    under; under chaos, ``injector``/``checker`` must come from
    :func:`~repro.chaos.experiment.attach_chaos` with the same plan.
    The order below is load-bearing — membership replay before the
    clock reset (its processes land on the discarded heap), state
    overlay before process restarts (restarted generators read it), and
    the coordinator last (its next event was, in the original run, the
    last one created at the safe point).
    """
    env = testbed.env
    avln = testbed.avln

    # 1. Structural membership replay (chaos churn joins/leaves).
    if injector is not None:
        injector.replay_membership(state["injector"]["membership_log"])
    captured_macs = set(state["devices"])
    roster_macs = {device.mac_addr for device in avln.devices}
    if captured_macs != roster_macs:
        raise CheckpointError(
            f"device roster mismatch: checkpoint has "
            f"{sorted(captured_macs)}, rebuilt testbed has "
            f"{sorted(roster_macs)} — wrong configuration or plan?"
        )
    if len(state["sources"]) != len(testbed.sources):
        raise CheckpointError(
            f"traffic source count mismatch: checkpoint has "
            f"{len(state['sources'])}, rebuilt testbed has "
            f"{len(testbed.sources)}"
        )

    # 2. Clock reset discards the build-time event heap wholesale; the
    # marked processes below re-create every pending timer.
    env.restore_clock_state(state["clock"])

    # 3. RNG streams and global sequence counters.
    for key, rng_state in state["streams"].items():
        testbed.streams.stream(*key).bit_generator.state = rng_state
    restore_mpdu_sequence(state["mpdu_sequence"])
    restore_frame_ids(state["frame_ids"])

    # 4. Aggregate ledgers.
    log = avln.coordinator.log
    round_log = state["round_log"]
    log.rounds = round_log["rounds"]
    log.idle_slots = round_log["idle_slots"]
    log.successes = round_log["successes"]
    log.collisions = round_log["collisions"]
    log.prs_phases = round_log["prs_phases"]
    log.mpdus_on_wire = round_log["mpdus_on_wire"]
    log.airtime_by_source = dict(round_log["airtime_by_source"])
    avln.strip.sof_count = state["strip"]["sof_count"]
    avln.strip.delivered_mpdus = state["strip"]["delivered_mpdus"]
    avln._beacon_sequence = state["beacon_sequence"]

    # 5. Per-device state (nodes, queues, FSMs, firmware, keys).
    for mac, device_state in state["devices"].items():
        _restore_device(avln.find_device(mac), device_state)

    # 6. Traffic sources (matched by position: build + membership
    # replay recreate the list in the original order).
    for source, source_state in zip(testbed.sources, state["sources"]):
        source.offered = source_state["offered"]
        source.accepted = source_state["accepted"]
        source.stopped = source_state["stopped"]
        source.mark = ProcMark.from_state(source_state["mark"])

    # 7. Observability surfaces.
    if testbed.faifa is not None and state["faifa_captures"] is not None:
        testbed.faifa.captures = list(state["faifa_captures"])
    if injector is not None:
        injector.restore_state(state["injector"])
    if checker is not None and "checker" in state:
        _restore_checker(checker, state["checker"])

    # 8. Adopt every captured mark (done ones included: they overwrite
    # the stale marks the rebuild stamped), then restart the live ones
    # in the original timer-creation order.
    restarts: List[Tuple[ProcMark, Any]] = []
    for source in testbed.sources:
        restarts.append(
            (source.mark, lambda m, s=source: s.restart(env))
        )
    for mark_state in state["avln_marks"]:
        mark = ProcMark.from_state(mark_state)
        avln.adopt_mark(mark)
        restarts.append((mark, avln.restart_marked))
    if injector is not None:
        for mark_state in state.get("injector_marks", ()):
            mark = ProcMark.from_state(mark_state)
            injector.adopt_mark(mark)
            restarts.append((mark, injector.restart_marked))
    handler_of = {id(mark): handler for mark, handler in restarts}
    for mark in restart_order(mark for mark, _handler in restarts):
        handler_of[id(mark)](mark)

    # 9. The coordinator's next event is always the last created at a
    # safe point, so its process restarts after everything else.
    avln.coordinator.restart()


# -- the §3.2 procedure, checkpointed ----------------------------------------
def _install_hook(
    testbed,
    store: CheckpointStore,
    meta: Dict[str, Any],
    first_due_us: float,
    run_stop_us: float,
    every_us: float,
    injector=None,
    checker=None,
) -> None:
    """Arm the coordinator's round-boundary snapshot hook."""
    env = testbed.env
    next_due = [first_due_us]

    def hook() -> None:
        now = env.now
        if now < next_due[0] or now >= run_stop_us:
            return
        if env.peek() == now:
            # Another event fires at this exact instant: its relative
            # order against restarted processes is not reconstructible,
            # so defer to the next round boundary.
            return
        store.write(
            Checkpoint(
                kind="testbed",
                seq=store.next_seq(),
                sim_time_us=now,
                meta=dict(meta),
                state=capture_testbed(
                    testbed, injector=injector, checker=checker
                ),
            )
        )
        next_due[0] = now + every_us

    testbed.avln.coordinator.checkpoint_hook = hook


def _chaos_report(plan, injector, checker) -> Dict[str, Any]:
    return {
        "plan": plan.as_jsonable(),
        "injection": injector.report(),
        "invariants": checker.finalize(),
    }


def checkpointed_collision_test(
    num_stations: int,
    store: CheckpointStore,
    duration_us: Optional[float] = None,
    warmup_us: Optional[float] = None,
    seed: Optional[int] = 1,
    checkpoint_every_us: Optional[float] = None,
    plan=None,
    deep_every: int = 256,
    **testbed_kwargs,
):
    """One §3.2 collision test, snapshotting into ``store`` as it runs.

    Mirrors :func:`~repro.experiments.procedures.run_collision_test`
    line for line (and, with ``plan``, :func:`~repro.chaos.experiment
    .chaos_collision_test`); the only addition is the round-boundary
    snapshot hook, which observes the simulation without perturbing it
    — the returned result is bit-identical to the uncheckpointed run.

    Returns a :class:`~repro.experiments.procedures.CollisionTest`, or
    ``(test, report)`` when a chaos ``plan`` is given.  Checkpoints are
    only taken inside the measurement window (warm-up state is cheap to
    recompute); ``testbed_kwargs`` must be JSON-serializable so a
    resume can rebuild the identical testbed from the checkpoint alone.
    """
    from ..chaos.experiment import attach_chaos
    from ..chaos.plan import ChaosPlan
    from ..experiments.procedures import (
        DEFAULT_TEST_DURATION_US,
        DEFAULT_WARMUP_US,
        CollisionTest,
    )
    from ..experiments.testbed import build_testbed

    if duration_us is None:
        duration_us = DEFAULT_TEST_DURATION_US
    if warmup_us is None:
        warmup_us = DEFAULT_WARMUP_US
    if checkpoint_every_us is None:
        checkpoint_every_us = DEFAULT_CHECKPOINT_EVERY_US
    if checkpoint_every_us <= 0:
        raise ValueError(
            f"checkpoint_every_us must be > 0, got {checkpoint_every_us}"
        )
    try:
        json.dumps(testbed_kwargs)
    except TypeError as exc:
        raise ValueError(
            "checkpointed tests require JSON-serializable testbed_kwargs "
            f"(resume rebuilds the testbed from the checkpoint): {exc}"
        ) from None

    plan_jsonable = None
    if plan is not None:
        plan = ChaosPlan.from_jsonable(plan)
        plan_jsonable = plan.as_jsonable()

    tb = build_testbed(num_stations, seed=seed, **testbed_kwargs)
    injector = checker = None
    if plan is not None:
        injector, checker, _probe = attach_chaos(
            tb, plan, deep_every=deep_every
        )

    # Bring-up: association handshakes, beacon lock, queue fill.
    tb.run_until(warmup_us)
    if not tb.avln.all_associated:
        tb.run_until(warmup_us + 1e6)
    if not tb.avln.all_associated:
        raise RuntimeError("stations failed to associate during warm-up")

    tb.reset_data_stats()
    rx_bytes_before = tb.destination.received_bytes
    start = tb.env.now
    # The exact instant Environment.run's delay arithmetic stops at; a
    # resume reaches the same float via run_until_at.
    run_stop_us = start + ((start + duration_us) - start)

    meta = {
        "num_stations": num_stations,
        "duration_us": duration_us,
        "warmup_us": warmup_us,
        "seed": seed,
        "testbed_kwargs": testbed_kwargs,
        "plan": plan_jsonable,
        "deep_every": deep_every,
        "start_us": start,
        "rx_bytes_before": rx_bytes_before,
        "run_stop_us": run_stop_us,
        "checkpoint_every_us": checkpoint_every_us,
    }
    _install_hook(
        tb,
        store,
        meta,
        first_due_us=start + checkpoint_every_us,
        run_stop_us=run_stop_us,
        every_us=checkpoint_every_us,
        injector=injector,
        checker=checker,
    )
    try:
        tb.run_until(start + duration_us)
    finally:
        tb.avln.coordinator.checkpoint_hook = None

    rows = tb.read_data_stats()
    elapsed = tb.env.now - start
    goodput_mbps = (
        (tb.destination.received_bytes - rx_bytes_before) * 8.0 / elapsed
    )
    test = CollisionTest(
        num_stations=num_stations,
        duration_us=elapsed,
        per_station=rows,
        goodput_mbps=goodput_mbps,
    )
    if plan is not None:
        injector.flush()
        return test, _chaos_report(plan, injector, checker)
    return test


def resume_collision_test(
    store: CheckpointStore,
    checkpoint: Optional[Checkpoint] = None,
):
    """Finish a :func:`checkpointed_collision_test` from its snapshot.

    Loads the newest valid checkpoint in ``store`` (or the given one),
    rebuilds the identical testbed from its metadata, restores the
    captured state, re-arms the snapshot hook and runs the remainder of
    the measurement window.  The result — rows, goodput, round log,
    traces — is bit-identical to the uninterrupted run's.
    """
    from ..chaos.experiment import attach_chaos
    from ..chaos.plan import ChaosPlan
    from ..experiments.procedures import CollisionTest
    from ..experiments.testbed import build_testbed

    if checkpoint is None:
        checkpoint = store.latest_valid()
    if checkpoint is None:
        raise CheckpointError(
            f"no valid checkpoint under {store.directory}"
        )
    if checkpoint.kind != "testbed":
        raise CheckpointError(
            f"expected a 'testbed' checkpoint, got {checkpoint.kind!r}"
        )
    meta = checkpoint.meta
    plan = None
    if meta["plan"] is not None:
        plan = ChaosPlan.from_jsonable(meta["plan"])

    tb = build_testbed(
        meta["num_stations"],
        seed=meta["seed"],
        **meta["testbed_kwargs"],
    )
    injector = checker = None
    if plan is not None:
        injector, checker, _probe = attach_chaos(
            tb, plan, deep_every=meta["deep_every"]
        )
    restore_testbed_state(
        tb, checkpoint.state, injector=injector, checker=checker
    )

    run_stop_us = meta["run_stop_us"]
    _install_hook(
        tb,
        store,
        meta,
        first_due_us=checkpoint.sim_time_us + meta["checkpoint_every_us"],
        run_stop_us=run_stop_us,
        every_us=meta["checkpoint_every_us"],
        injector=injector,
        checker=checker,
    )
    try:
        tb.env.run_until_at(run_stop_us)
    finally:
        tb.avln.coordinator.checkpoint_hook = None

    rows = tb.read_data_stats()
    elapsed = tb.env.now - meta["start_us"]
    goodput_mbps = (
        (tb.destination.received_bytes - meta["rx_bytes_before"])
        * 8.0
        / elapsed
    )
    test = CollisionTest(
        num_stations=meta["num_stations"],
        duration_us=elapsed,
        per_station=rows,
        goodput_mbps=goodput_mbps,
    )
    if plan is not None:
        injector.flush()
        return test, _chaos_report(plan, injector, checker)
    return test
