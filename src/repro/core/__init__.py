"""Core 1901 CSMA/CA implementation: the paper's primary contribution.

Public surface:

- :mod:`repro.core.parameters` — the standard's constants (Table 1);
- :class:`CsmaConfig`, :class:`TimingConfig`, :class:`StationConfig`,
  :class:`ScenarioConfig` — configuration (Table 3);
- :class:`Station` — the per-station backoff FSM (BC/DC/BPC);
- :class:`SlotSimulator` / :func:`simulate` / :func:`sim_1901` — the
  slot-synchronous simulator (§4.2);
- :mod:`repro.core.metrics` — collision probability, throughput,
  fairness and delay metrics;
- :class:`SimulationResult` / :class:`AggregateResult` — results.
"""

from . import metrics, parameters
from .parameters import PriorityClass
from .config import (
    CsmaConfig,
    Protocol,
    ScenarioConfig,
    StationConfig,
    TimingConfig,
)
from .results import AggregateResult, SimulationResult, StationStats, aggregate
from .simulator import SlotSimulator, sim_1901, simulate
from .station import SlotOutcome, Station, StationState
from .trace import SlotRecord, Trace, TransmissionRecord

__all__ = [
    "AggregateResult",
    "CsmaConfig",
    "PriorityClass",
    "Protocol",
    "ScenarioConfig",
    "SimulationResult",
    "SlotOutcome",
    "SlotRecord",
    "SlotSimulator",
    "Station",
    "StationConfig",
    "StationState",
    "StationStats",
    "TimingConfig",
    "Trace",
    "TransmissionRecord",
    "aggregate",
    "metrics",
    "parameters",
    "sim_1901",
    "simulate",
]
