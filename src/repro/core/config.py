"""Configuration objects for the CSMA/CA simulators (Table 3).

The reference simulator is invoked as::

    sim_1901(N, sim_time, Tc, Ts, frame_length, cw, dc)

Here the same inputs are grouped into small dataclasses:

- :class:`CsmaConfig` — the backoff parameter vectors (cw, dc) plus the
  protocol family (1901 deferral-counter rules vs. plain 802.11 BEB);
- :class:`TimingConfig` — slot/transmission durations (Tc, Ts, frame);
- :class:`StationConfig` — per-station protocol + traffic behaviour;
- :class:`ScenarioConfig` — the full simulation scenario.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

from . import parameters as P

__all__ = [
    "Protocol",
    "CsmaConfig",
    "TimingConfig",
    "StationConfig",
    "ScenarioConfig",
]


class Protocol:
    """Protocol family names accepted by :class:`CsmaConfig`."""

    IEEE_1901 = "1901"
    IEEE_80211 = "80211"


@dataclasses.dataclass(frozen=True)
class CsmaConfig:
    """Backoff parameters of a station.

    Parameters
    ----------
    cw:
        Contention window per backoff stage (Table 1 column ``CW_i``).
    dc:
        Initial deferral-counter value per stage (column ``d_i``).  For
        the 802.11 protocol family these are ignored (no deferral
        counter exists); use :meth:`ieee80211` to build such a config.
    protocol:
        ``"1901"`` (deferral-counter rules) or ``"80211"`` (plain
        binary exponential backoff).
    retry_limit:
        Maximum number of transmission attempts per frame;
        ``None`` reproduces the paper's infinite retry limit.
    """

    cw: Tuple[int, ...] = P.CW_CA0_CA1
    dc: Tuple[int, ...] = P.DC_CA0_CA1
    protocol: str = Protocol.IEEE_1901
    retry_limit: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "cw", tuple(int(w) for w in self.cw))
        object.__setattr__(self, "dc", tuple(int(d) for d in self.dc))
        P.validate_schedules(self.cw, self.dc)
        if self.protocol not in (Protocol.IEEE_1901, Protocol.IEEE_80211):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.retry_limit is not None and self.retry_limit < 1:
            raise ValueError("retry_limit must be >= 1 or None")

    @property
    def num_stages(self) -> int:
        """Number of backoff stages (``m`` in the reference code)."""
        return len(self.cw)

    def stage_cw(self, bpc: int) -> int:
        """Contention window for backoff-procedure-counter value ``bpc``.

        Stages beyond the last reuse the last stage's parameters, as in
        Table 1 (``BPC >= 3`` maps to stage 3).
        """
        return self.cw[min(bpc, self.num_stages - 1)]

    def stage_dc(self, bpc: int) -> int:
        """Initial deferral counter for BPC value ``bpc``."""
        return self.dc[min(bpc, self.num_stages - 1)]

    # -- constructors ---------------------------------------------------
    @classmethod
    def for_priority(
        cls, priority: P.PriorityClass, retry_limit: Optional[int] = None
    ) -> "CsmaConfig":
        """Standard 1901 configuration for a priority class (Table 1)."""
        return cls(
            cw=P.cw_schedule(priority),
            dc=P.dc_schedule(priority),
            protocol=Protocol.IEEE_1901,
            retry_limit=retry_limit,
        )

    @classmethod
    def default_1901(cls) -> "CsmaConfig":
        """The paper's default: CA0/CA1 parameters, infinite retries."""
        return cls.for_priority(P.PriorityClass.CA1)

    @classmethod
    def ieee80211(
        cls,
        cw_min: int = P.CW_80211_DEFAULT,
        max_stage: int = P.MAX_STAGE_80211_DEFAULT,
        retry_limit: Optional[int] = None,
    ) -> "CsmaConfig":
        """802.11 DCF baseline: ``CW_i = 2**i * cw_min``, no deferral.

        The deferral counters are set to a value that can never expire
        within a stage (``CW_i``), which makes the 1901 rules degenerate
        to plain BEB; the simulator additionally short-circuits on the
        protocol name.
        """
        if cw_min < 1 or max_stage < 0:
            raise ValueError("cw_min must be >= 1 and max_stage >= 0")
        cw = tuple(cw_min * 2**i for i in range(max_stage + 1))
        dc = tuple(w for w in cw)  # unreachable deferral expiry
        return cls(
            cw=cw, dc=dc, protocol=Protocol.IEEE_80211, retry_limit=retry_limit
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        kind = "1901" if self.protocol == Protocol.IEEE_1901 else "802.11"
        retries = "inf" if self.retry_limit is None else str(self.retry_limit)
        return f"{kind} cw={list(self.cw)} dc={list(self.dc)} retries={retries}"


@dataclasses.dataclass(frozen=True)
class TimingConfig:
    """Channel-occupancy durations, in microseconds (Table 3 inputs).

    ``ts`` / ``tc`` are the *total* durations of a successful
    transmission / collision as seen by the contention process (they
    include priority resolution, delimiters, inter-frame spaces and
    acknowledgments); ``frame`` is the useful airtime counted by the
    normalized-throughput metric.
    """

    slot: float = P.SLOT_DURATION_US
    ts: float = P.DEFAULT_TS_US
    tc: float = P.DEFAULT_TC_US
    frame: float = P.DEFAULT_FRAME_US

    def __post_init__(self) -> None:
        for name in ("slot", "ts", "tc", "frame"):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0:
                raise ValueError(f"{name} must be positive and finite, got {value}")
        if self.frame > self.ts:
            raise ValueError(
                f"frame duration ({self.frame}) cannot exceed the total "
                f"successful-transmission duration ts ({self.ts})"
            )

    @classmethod
    def paper_defaults(cls) -> "TimingConfig":
        """The Table 3 example values."""
        return cls()

    def scaled_to_frame(self, frame_us: float) -> "TimingConfig":
        """Return a config for a different frame duration.

        Keeps the success/collision *overheads* (ts - frame, tc - frame)
        constant, which is how the physical overheads behave when the
        payload duration changes.
        """
        return dataclasses.replace(
            self,
            frame=frame_us,
            ts=frame_us + (self.ts - self.frame),
            tc=frame_us + (self.tc - self.frame),
        )


@dataclasses.dataclass(frozen=True)
class StationConfig:
    """Per-station behaviour: backoff parameters + traffic model.

    ``arrival_rate_pps`` of ``None`` means the station is saturated
    (always has a frame pending), the paper's operating assumption.  A
    finite rate enables the unsaturated extension with Poisson frame
    arrivals and a finite queue.
    """

    csma: CsmaConfig = dataclasses.field(default_factory=CsmaConfig.default_1901)
    priority: P.PriorityClass = P.PriorityClass.CA1
    arrival_rate_pps: Optional[float] = None
    queue_capacity: int = 64
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.arrival_rate_pps is not None and self.arrival_rate_pps <= 0:
            raise ValueError("arrival_rate_pps must be positive or None")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")

    @property
    def saturated(self) -> bool:
        """Whether the station always has a frame to send."""
        return self.arrival_rate_pps is None


@dataclasses.dataclass(frozen=True)
class ScenarioConfig:
    """A full simulation scenario.

    The classic paper scenario (`sim_1901(N, ...)`) is ``N`` identical
    saturated stations; :meth:`homogeneous` builds that.  Heterogeneous
    scenarios list per-station configs explicitly.
    """

    stations: Tuple[StationConfig, ...]
    timing: TimingConfig = dataclasses.field(default_factory=TimingConfig)
    sim_time_us: float = P.DEFAULT_SIM_TIME_US
    seed: Optional[int] = 1

    def __post_init__(self) -> None:
        if not self.stations:
            raise ValueError("scenario needs at least one station")
        if self.sim_time_us <= 0:
            raise ValueError("sim_time_us must be positive")
        object.__setattr__(self, "stations", tuple(self.stations))

    @property
    def num_stations(self) -> int:
        """Number of contending stations ``N``."""
        return len(self.stations)

    @classmethod
    def homogeneous(
        cls,
        num_stations: int,
        csma: Optional[CsmaConfig] = None,
        timing: Optional[TimingConfig] = None,
        sim_time_us: float = P.DEFAULT_SIM_TIME_US,
        seed: Optional[int] = 1,
        priority: P.PriorityClass = P.PriorityClass.CA1,
        arrival_rate_pps: Optional[float] = None,
    ) -> "ScenarioConfig":
        """``N`` identical stations (the paper's standard scenario)."""
        if num_stations < 1:
            raise ValueError("num_stations must be >= 1")
        csma = csma if csma is not None else CsmaConfig.for_priority(priority)
        station = StationConfig(
            csma=csma, priority=priority, arrival_rate_pps=arrival_rate_pps
        )
        return cls(
            stations=tuple(
                dataclasses.replace(station, name=f"sta{i}")
                for i in range(num_stations)
            ),
            timing=timing if timing is not None else TimingConfig(),
            sim_time_us=sim_time_us,
            seed=seed,
        )

    @classmethod
    def paper_example(cls) -> "ScenarioConfig":
        """Table 3's example call: 2 stations, defaults, 5e8 µs."""
        return cls.homogeneous(num_stations=2)
