"""Resettable monotone id counters.

``itertools.count`` exposes no way to read or set its position, which
makes globals built on it (MPDU sequence numbers, Ethernet frame ids)
invisible to checkpoints.  :class:`SequenceCounter` is a drop-in
iterator replacement whose position can be captured and restored, so a
resumed simulation hands out exactly the ids the original run would
have.
"""

from __future__ import annotations

__all__ = ["SequenceCounter"]


class SequenceCounter:
    """A ``next()``-able monotone counter with readable position."""

    def __init__(self, start: int = 1) -> None:
        self._next = int(start)

    def __iter__(self) -> "SequenceCounter":
        return self

    def __next__(self) -> int:
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        """The value the next ``next()`` call will return."""
        return self._next

    def reset(self, value: int) -> None:
        """Set the value the next ``next()`` call will return."""
        self._next = int(value)

    def __repr__(self) -> str:
        return f"SequenceCounter(next={self._next})"
