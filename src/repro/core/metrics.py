"""Performance metrics computed from simulation results and traces.

Covers the quantities the paper and its companion studies report:

- collision probability and normalized throughput (definitions match
  the reference simulator; exposed on ``SimulationResult`` and
  recomputable here from raw counters);
- Jain's fairness index, long- and short-term (the short-term variant
  over sliding windows of transmission opportunities exposes the
  1901 unfairness shown in Figure 1);
- run lengths of consecutive wins by the same station (channel-capture
  bursts);
- inter-success times and access-delay statistics.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "RunnerCounters",
    "collision_probability",
    "normalized_throughput",
    "jain_index",
    "windowed_jain",
    "short_term_fairness",
    "win_run_lengths",
    "capture_probability",
    "inter_success_times",
    "DelayStats",
    "delay_stats",
]


@dataclasses.dataclass
class RunnerCounters:
    """Progress/timing counters of an experiment runner.

    Updated by :class:`repro.runner.ExperimentRunner` across its
    lifetime; the cache-effectiveness counters are what the
    reproducibility tests assert on (a warm second run must show
    ``executed == 0``).  The fault counters (``retried``, ``failed``,
    ``timeouts``, ``pool_rebuilds``, ``degraded_serial``) stay truthful
    even when a run aborts mid-sweep — finalization happens in the
    runner's ``finally`` block.
    """

    #: Points requested across all ``run()`` calls.
    points_total: int = 0
    #: Points actually executed (i.e. `simulate()`/model/testbed calls
    #: that ran, instead of being served from the cache).
    executed: int = 0
    #: Points answered from the on-disk cache.
    cache_hits: int = 0
    #: Points not found in the cache (== executed when caching is on).
    cache_misses: int = 0
    #: Cache entries found corrupted/truncated and recomputed.
    cache_corrupt: int = 0
    #: Task attempts retried after a failure, crash, or timeout.
    retried: int = 0
    #: Tasks that failed permanently (retries exhausted).
    failed: int = 0
    #: Task attempts killed by the per-task wall-clock timeout.
    timeouts: int = 0
    #: Worker-pool rebuilds after a dead worker (BrokenProcessPool).
    pool_rebuilds: int = 0
    #: Times a run degraded to serial in-process execution after
    #: exhausting its pool-rebuild budget.
    degraded_serial: int = 0
    #: Times a remote sweep fell back to local execution because every
    #: service host was unreachable (the HTTP client's graceful path).
    degraded_local: int = 0
    #: Wall-clock seconds spent inside ``run()`` calls.
    wall_time_s: float = 0.0
    #: Worker processes used by the most recent ``run()`` call.
    workers: int = 1

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)

    def reset(self) -> None:
        """Zero every counter (e.g. between cold/warm cache phases)."""
        fresh = RunnerCounters()
        for field in dataclasses.fields(self):
            setattr(self, field.name, getattr(fresh, field.name))


def collision_probability(collided: float, acknowledged: float) -> float:
    """ΣC / ΣA as in §3.2 (``acknowledged`` includes collided frames).

    The denominator convention follows the testbed: HomePlug AV
    destinations acknowledge collided frames with an all-errored
    indication, so the acknowledgment count ΣA already contains the
    collided frames and the ratio is C / (C + S).
    """
    if acknowledged <= 0:
        return 0.0
    return collided / acknowledged


def normalized_throughput(
    successes: int, frame_us: float, duration_us: float
) -> float:
    """Fraction of airtime carrying useful frame payload."""
    if duration_us <= 0:
        return 0.0
    return successes * frame_us / duration_us


def jain_index(shares: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n · Σx²); 1 means perfectly fair."""
    x = np.asarray(list(shares), dtype=float)
    if x.size == 0:
        raise ValueError("jain_index needs at least one share")
    if np.any(x < 0):
        raise ValueError("shares must be non-negative")
    peak = x.max()
    if peak == 0:
        return 1.0
    # Normalize by the largest share first: the index is scale
    # invariant and this keeps x**2 away from under/overflow.
    x = x / peak
    total = x.sum()
    return float(total**2 / (x.size * (x**2).sum()))


def windowed_jain(
    winners: Sequence[int], num_stations: int, window: int
) -> np.ndarray:
    """Jain index over sliding windows of the winner sequence.

    Each window of ``window`` consecutive successful transmissions is
    scored by how evenly the wins are spread across stations.  This is
    the standard short-term fairness measure used in [4].
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    seq = np.asarray(list(winners), dtype=int)
    if seq.size < window:
        return np.empty(0)
    values = np.empty(seq.size - window + 1)
    counts = np.bincount(seq[:window], minlength=num_stations).astype(float)
    values[0] = jain_index(counts)
    for start in range(1, seq.size - window + 1):
        counts[seq[start - 1]] -= 1
        counts[seq[start + window - 1]] += 1
        values[start] = jain_index(counts)
    return values


def short_term_fairness(
    winners: Sequence[int], num_stations: int, window: Optional[int] = None
) -> float:
    """Mean sliding-window Jain index (window defaults to ``10 * N``)."""
    if window is None:
        window = 10 * num_stations
    values = windowed_jain(winners, num_stations, window)
    if values.size == 0:
        return float("nan")
    return float(values.mean())


def win_run_lengths(winners: Sequence[int]) -> List[int]:
    """Lengths of runs of consecutive wins by the same station.

    Long runs are the signature of 1901's short-term unfairness: the
    winner restarts at stage 0 (CW=8) while losers climb to larger CWs
    (Figure 1's caption).
    """
    runs: List[int] = []
    current = None
    length = 0
    for winner in winners:
        if winner == current:
            length += 1
        else:
            if current is not None:
                runs.append(length)
            current = winner
            length = 1
    if current is not None:
        runs.append(length)
    return runs


def capture_probability(winners: Sequence[int]) -> float:
    """P(next success is by the same station as the previous one)."""
    seq = list(winners)
    if len(seq) < 2:
        return float("nan")
    repeats = sum(1 for a, b in zip(seq, seq[1:]) if a == b)
    return repeats / (len(seq) - 1)


def inter_success_times(
    success_times_us: Sequence[float],
) -> np.ndarray:
    """Gaps between consecutive successes (µs) — service regularity.

    For a single station's timestamps this is its inter-service time
    (whose spread quantifies the capture effect: long droughts while
    another station holds the channel); for the network-wide sequence
    it is the channel's inter-departure time.

    >>> inter_success_times([0.0, 10.0, 25.0]).tolist()
    [10.0, 15.0]
    """
    times = np.asarray(list(success_times_us), dtype=float)
    if times.size < 2:
        return np.empty(0)
    if np.any(np.diff(times) < 0):
        raise ValueError("success times must be non-decreasing")
    return np.diff(times)


@dataclasses.dataclass(frozen=True)
class DelayStats:
    """Summary statistics of MAC access delays (µs)."""

    mean: float
    std: float
    median: float
    p95: float
    p99: float
    maximum: float
    count: int

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


def delay_stats(delays_us: Sequence[float]) -> DelayStats:
    """Compute :class:`DelayStats` from raw per-frame delays.

    Degenerate input yields NaN statistics with ``count=0``, consistent
    with :func:`short_term_fairness` / :func:`capture_probability`
    returning NaN rather than raising:

    >>> empty = delay_stats([])
    >>> empty.count
    0
    >>> import math
    >>> math.isnan(empty.mean) and math.isnan(empty.p99)
    True
    """
    d = np.asarray(list(delays_us), dtype=float)
    if d.size == 0:
        nan = float("nan")
        return DelayStats(
            mean=nan,
            std=nan,
            median=nan,
            p95=nan,
            p99=nan,
            maximum=nan,
            count=0,
        )
    return DelayStats(
        mean=float(d.mean()),
        std=float(d.std(ddof=0)),
        median=float(np.median(d)),
        p95=float(np.percentile(d, 95)),
        p99=float(np.percentile(d, 99)),
        maximum=float(d.max()),
        count=int(d.size),
    )
