"""IEEE 1901 CSMA/CA protocol constants (Table 1 of the paper).

This module is the single source of truth for the standard's MAC
parameters used throughout the library:

- the contention windows ``CW_i`` and initial deferral-counter values
  ``d_i`` per backoff stage, for both priority groups (Table 1);
- the timing constants of the HomePlug AV MAC (slot duration, priority
  slots, inter-frame spaces) and the paper's default durations for
  successful transmissions and collisions (Table 3's example call).

All durations are in microseconds.
"""

from __future__ import annotations

import enum
from typing import Sequence, Tuple

__all__ = [
    "PriorityClass",
    "SLOT_DURATION_US",
    "PRS_SLOT_US",
    "PRIORITY_RESOLUTION_US",
    "CIFS_US",
    "RIFS_US",
    "DELIMITER_US",
    "SACK_US",
    "EIFS_US",
    "DEFAULT_TS_US",
    "DEFAULT_TC_US",
    "DEFAULT_FRAME_US",
    "DEFAULT_SIM_TIME_US",
    "CW_CA0_CA1",
    "DC_CA0_CA1",
    "CW_CA2_CA3",
    "DC_CA2_CA3",
    "NUM_BACKOFF_STAGES",
    "PB_SIZE_BYTES",
    "MAX_MPDUS_PER_BURST",
    "DEFAULT_MPDUS_PER_BURST",
    "cw_schedule",
    "dc_schedule",
    "validate_schedules",
    "CW_80211_DEFAULT",
    "MAX_STAGE_80211_DEFAULT",
]


class PriorityClass(enum.IntEnum):
    """1901 channel-access priority classes.

    CA0/CA1 are used for best-effort traffic (CA1 is the default for
    data), CA2/CA3 for delay-sensitive traffic and management messages.
    Higher value = higher priority during the priority-resolution phase.
    """

    CA0 = 0
    CA1 = 1
    CA2 = 2
    CA3 = 3

    @property
    def is_high_group(self) -> bool:
        """Whether the class uses the CA2/CA3 parameter column."""
        return self >= PriorityClass.CA2


# --- Timing constants (microseconds) --------------------------------------

#: Duration of one contention (backoff) time slot.  §4.2 of the paper.
SLOT_DURATION_US = 35.84

#: Duration of one priority-resolution slot (PRS0 or PRS1).
PRS_SLOT_US = 35.84

#: Total duration of the priority resolution phase (PRS0 + PRS1).
PRIORITY_RESOLUTION_US = 2 * PRS_SLOT_US

#: Contention inter-frame space (CIFS_AV).
CIFS_US = 100.0

#: Response inter-frame space (RIFS_AV, default tone-map value).
RIFS_US = 140.0

#: Duration of an AV delimiter (preamble + frame control), used for the
#: start-of-frame delimiter and the selective acknowledgment.
DELIMITER_US = 110.48

#: Duration of a selective-acknowledgment delimiter.
SACK_US = DELIMITER_US

#: Extended inter-frame space (EIFS_AV) from the HomePlug AV spec.
EIFS_US = 2920.64

#: Paper default: total channel occupancy of a successful transmission
#: (Table 3 example: ``sim_1901(2, 5e8, 2920.64, 2542.64, 2050, ...)``).
DEFAULT_TS_US = 2920.64

#: Paper default: total channel occupancy of a collision.
DEFAULT_TC_US = 2542.64

#: Paper default: frame duration counted as useful airtime (no overhead).
DEFAULT_FRAME_US = 2050.0

#: Paper default: simulation length (5e8 µs = 500 s).
DEFAULT_SIM_TIME_US = 5e8


# --- Table 1: contention windows and deferral counters --------------------

#: Contention windows per backoff stage for priorities CA0/CA1.
CW_CA0_CA1: Tuple[int, ...] = (8, 16, 32, 64)

#: Initial deferral-counter values per backoff stage for CA0/CA1.
DC_CA0_CA1: Tuple[int, ...] = (0, 1, 3, 15)

#: Contention windows per backoff stage for priorities CA2/CA3.
CW_CA2_CA3: Tuple[int, ...] = (8, 16, 16, 32)

#: Initial deferral-counter values per backoff stage for CA2/CA3.
DC_CA2_CA3: Tuple[int, ...] = (0, 1, 3, 15)

#: Number of backoff stages in the standard configuration.
NUM_BACKOFF_STAGES = 4


# --- Framing constants (§3.1) ---------------------------------------------

#: Size of a physical block (PB): the 512-byte unit frames are split into.
PB_SIZE_BYTES = 512

#: Upper limit of MPDUs per burst allowed by the standard.
MAX_MPDUS_PER_BURST = 4

#: Burst size actually used by the paper's INT6300 devices (§3.1).
DEFAULT_MPDUS_PER_BURST = 2


# --- 802.11 DCF baseline ----------------------------------------------------

#: Default minimum contention window for the 802.11 DCF baseline
#: (802.11a/g OFDM PHY value, as used by the comparison in [4]/[5]).
CW_80211_DEFAULT = 16

#: Default maximum backoff stage for 802.11 (CWmax = CWmin * 2**m).
MAX_STAGE_80211_DEFAULT = 6


def cw_schedule(priority: PriorityClass) -> Tuple[int, ...]:
    """Return the per-stage contention windows for ``priority``.

    >>> cw_schedule(PriorityClass.CA1)
    (8, 16, 32, 64)
    >>> cw_schedule(PriorityClass.CA3)
    (8, 16, 16, 32)
    """
    return CW_CA2_CA3 if priority.is_high_group else CW_CA0_CA1


def dc_schedule(priority: PriorityClass) -> Tuple[int, ...]:
    """Return the per-stage initial deferral counters for ``priority``.

    >>> dc_schedule(PriorityClass.CA0)
    (0, 1, 3, 15)
    """
    return DC_CA2_CA3 if priority.is_high_group else DC_CA0_CA1


def validate_schedules(cw: Sequence[int], dc: Sequence[int]) -> None:
    """Validate a (cw, dc) schedule pair, raising ``ValueError`` if bad.

    The reference simulator silently returns when the vectors have
    different lengths; we raise instead so misconfigurations surface.
    """
    if len(cw) != len(dc):
        raise ValueError(
            f"cw and dc must have equal length, got {len(cw)} and {len(dc)}"
        )
    if len(cw) == 0:
        raise ValueError("cw and dc must have at least one stage")
    for i, w in enumerate(cw):
        if int(w) != w or w < 1:
            raise ValueError(f"cw[{i}] must be a positive integer, got {w!r}")
    for i, d in enumerate(dc):
        if int(d) != d or d < 0:
            raise ValueError(f"dc[{i}] must be a non-negative integer, got {d!r}")
