"""Result containers for simulation runs.

The reference simulator returns ``(collision_pr, norm_throughput)``.
:class:`SimulationResult` exposes those two quantities with identical
definitions, plus the per-station counters, time budget and traces the
generalized simulator collects.  :class:`AggregateResult` averages
repeated runs (the paper averages 10 tests for Figure 2).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

import numpy as np

from .config import ScenarioConfig
from .trace import Trace

__all__ = ["StationStats", "SimulationResult", "AggregateResult", "aggregate"]


@dataclasses.dataclass(frozen=True)
class StationStats:
    """Per-station counters at the end of a run."""

    index: int
    successes: int
    collisions: int
    drops: int
    jumps: int
    #: Frames that arrived (unsaturated mode; equals successes + drops +
    #: queue remainder in saturated mode it is 0).
    arrivals: int = 0
    #: Frames lost to a full queue (unsaturated mode).
    queue_losses: int = 0

    @property
    def attempts(self) -> int:
        """Total transmission attempts (successes + collisions)."""
        return self.successes + self.collisions


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run.

    ``collisions`` counts one per *collided station* per collision
    event (the reference simulator's ``collisions = collisions +
    counter``), while ``collision_events`` counts channel events.
    """

    scenario: ScenarioConfig
    duration_us: float
    successes: int
    collisions: int
    collision_events: int
    idle_slots: int
    stations: List[StationStats]
    trace: Optional[Trace] = None
    #: Access delays (µs) of successfully delivered frames, if recorded.
    delays_us: Optional[np.ndarray] = None

    # -- the two reference outputs ----------------------------------------
    @property
    def collision_probability(self) -> float:
        """``collisions / (collisions + successes)`` as in the listing.

        This is the probability that a transmitted frame collides,
        matching the testbed estimate ΣC_i / ΣA_i of §3.2.
        """
        total = self.collisions + self.successes
        return self.collisions / total if total else 0.0

    @property
    def normalized_throughput(self) -> float:
        """``successes * frame_length / t`` as in the listing."""
        if self.duration_us <= 0:
            return 0.0
        return (
            self.successes * self.scenario.timing.frame / self.duration_us
        )

    # -- additional views --------------------------------------------------
    @property
    def attempts(self) -> int:
        """Total attempted transmissions across stations."""
        return self.successes + self.collisions

    @property
    def per_station_throughput(self) -> np.ndarray:
        """Normalized throughput each station obtained."""
        frame = self.scenario.timing.frame
        return np.array(
            [s.successes * frame / self.duration_us for s in self.stations]
        )

    @property
    def airtime_breakdown(self) -> dict:
        """Fractions of time spent idle / in successes / in collisions."""
        timing = self.scenario.timing
        idle = self.idle_slots * timing.slot
        succ = self.successes * timing.ts
        coll = self.collision_events * timing.tc
        total = idle + succ + coll
        if total <= 0:
            return {"idle": 0.0, "success": 0.0, "collision": 0.0}
        return {
            "idle": idle / total,
            "success": succ / total,
            "collision": coll / total,
        }

    def jain_fairness(self) -> float:
        """Jain's fairness index over per-station success counts."""
        counts = np.array([s.successes for s in self.stations], dtype=float)
        total = counts.sum()
        if total == 0:
            return 1.0
        return float(total**2 / (len(counts) * (counts**2).sum()))


@dataclasses.dataclass(frozen=True)
class AggregateResult:
    """Mean and spread of a metric over repeated seeded runs."""

    runs: List[SimulationResult]

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError("AggregateResult needs at least one run")

    def _values(self, metric: str) -> np.ndarray:
        return np.array([getattr(run, metric) for run in self.runs])

    @property
    def collision_probability(self) -> float:
        return float(self._values("collision_probability").mean())

    @property
    def collision_probability_std(self) -> float:
        return float(self._values("collision_probability").std(ddof=0))

    @property
    def normalized_throughput(self) -> float:
        return float(self._values("normalized_throughput").mean())

    @property
    def normalized_throughput_std(self) -> float:
        return float(self._values("normalized_throughput").std(ddof=0))

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    def confidence_interval(
        self, metric: str = "collision_probability", z: float = 1.96
    ) -> tuple:
        """Normal-approximation CI half-width around the mean."""
        values = self._values(metric)
        mean = float(values.mean())
        if len(values) < 2:
            return (mean, 0.0)
        half = z * float(values.std(ddof=1)) / math.sqrt(len(values))
        return (mean, half)


def aggregate(runs: Sequence[SimulationResult]) -> AggregateResult:
    """Bundle repeated runs into an :class:`AggregateResult`."""
    return AggregateResult(list(runs))
