"""Slot-synchronous simulator for the 1901/802.11 CSMA/CA MAC.

This is a faithful generalization of the reference MATLAB simulator
listed in §4.2 of the paper (``sim_1901``).  The main loop is the same
renewal structure: every iteration is one *slot event*, which is either
an idle slot (advancing time by the slot duration), a successful
transmission (advancing by ``Ts``) or a collision (advancing by
``Tc``).  Stations' counters evolve per :class:`repro.core.station.Station`.

Generalizations over the listing (each individually defaulting to the
listing's behaviour):

- heterogeneous per-station configurations;
- optional transmission/slot traces (for Figure 1 and fairness studies);
- optional per-frame access-delay recording;
- finite retry limits;
- unsaturated stations with Poisson arrivals and finite queues.

The function :func:`sim_1901` mirrors the MATLAB entry point's exact
signature and return value for side-by-side comparison.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..engine.randomness import RandomStreams
from .config import CsmaConfig, ScenarioConfig, TimingConfig
from .results import SimulationResult, StationStats
from .station import SlotOutcome, Station
from .trace import SlotRecord, Trace, TransmissionRecord

__all__ = ["SlotSimulator", "simulate", "sim_1901"]


class _ArrivalProcess:
    """Poisson frame arrivals with a finite queue (unsaturated mode)."""

    def __init__(
        self, rate_pps: float, capacity: int, rng: np.random.Generator
    ) -> None:
        self.mean_interarrival_us = 1e6 / rate_pps
        self.capacity = capacity
        self.rng = rng
        self.queue = 0
        self.next_arrival_us = self._draw()
        self.arrivals = 0
        self.losses = 0

    def _draw(self) -> float:
        return float(self.rng.exponential(self.mean_interarrival_us))

    def advance(self, now_us: float) -> None:
        """Account for all arrivals up to ``now_us``."""
        while self.next_arrival_us <= now_us:
            self.arrivals += 1
            if self.queue < self.capacity:
                self.queue += 1
            else:
                self.losses += 1
            self.next_arrival_us += self._draw()


class SlotSimulator:
    """Run a :class:`ScenarioConfig` through the slot-synchronous MAC.

    Parameters
    ----------
    scenario:
        The scenario to simulate.
    record_trace:
        Keep a :class:`TransmissionRecord` per channel event.
    record_slots:
        Additionally keep a full counter snapshot per slot event
        (memory-heavy; use for short runs such as Figure 1).
    record_delays:
        Record the MAC access delay of every delivered frame.
    streams:
        Random substream tree; defaults to one derived from
        ``scenario.seed``.
    """

    def __init__(
        self,
        scenario: ScenarioConfig,
        record_trace: bool = False,
        record_slots: bool = False,
        record_delays: bool = False,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.scenario = scenario
        self.record_trace = record_trace or record_slots
        self.record_slots = record_slots
        self.record_delays = record_delays
        self.streams = (
            streams if streams is not None else RandomStreams(scenario.seed)
        )
        #: Loop state (stations, arrival processes, counters, clock).
        #: Created lazily by :meth:`advance`; every field is picklable,
        #: which is what makes this simulator checkpointable — see
        #: :mod:`repro.checkpoint.slotsim`.
        self._state: Optional[dict] = None

    def _initialize(self) -> None:
        scenario = self.scenario
        stations: List[Station] = []
        arrivals: List[Optional[_ArrivalProcess]] = []
        for i, cfg in enumerate(scenario.stations):
            rng = self.streams.stream("station", i)
            station = Station(cfg.csma, rng, index=i)
            stations.append(station)
            if cfg.saturated:
                arrivals.append(None)
            else:
                proc = _ArrivalProcess(
                    cfg.arrival_rate_pps,
                    cfg.queue_capacity,
                    self.streams.stream("arrivals", i),
                )
                station.sleep()
                arrivals.append(proc)

        self._state = {
            "stations": stations,
            "arrivals": arrivals,
            "trace": (
                Trace(record_slots=self.record_slots)
                if self.record_trace
                else None
            ),
            "delays": [],
            "frame_start": [0.0] * len(stations),
            "t": 0.0,
            "successes": 0,
            "collisions": 0,
            "collision_events": 0,
            "idle_slots": 0,
        }

    @property
    def finished(self) -> bool:
        """Whether the main loop has consumed the configured sim time."""
        state = self._state
        return state is not None and state["t"] > self.scenario.sim_time_us

    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        self.advance(None)
        return self.result()

    def advance(self, pause_at_us: Optional[float]) -> bool:
        """Run slot events until ``pause_at_us`` (or to completion).

        Returns ``True`` once the simulation has finished.  Pausing
        happens only *between* slot events, so a run interleaved with
        any number of pauses (and checkpoint snapshots) executes the
        exact same iterations as an uninterrupted one.
        """
        if self._state is None:
            self._initialize()
        state = self._state
        scenario = self.scenario
        timing = scenario.timing
        slot, ts, tc = timing.slot, timing.ts, timing.tc

        stations = state["stations"]
        arrivals = state["arrivals"]
        trace = state["trace"]
        delays = state["delays"]
        frame_start = state["frame_start"]

        t = state["t"]
        successes = state["successes"]
        collisions = state["collisions"]
        collision_events = state["collision_events"]
        idle_slots = state["idle_slots"]
        sim_time = scenario.sim_time_us

        paused = False
        while t <= sim_time:
            if pause_at_us is not None and t >= pause_at_us:
                paused = True
                break
            # Wake unsaturated stations whose arrivals are due.
            for i, proc in enumerate(arrivals):
                if proc is None:
                    continue
                proc.advance(t)
                if stations[i].dormant and proc.queue > 0:
                    stations[i].reset_for_new_frame()
                    frame_start[i] = t

            # Contention phase.
            attempt_indices = [
                i for i, station in enumerate(stations) if station.step()
            ]
            count = len(attempt_indices)

            # Medium outcome.
            if count == 0:
                outcome = SlotOutcome.IDLE
                idle_slots += 1
                dt = slot
                winner = None
            elif count == 1:
                outcome = SlotOutcome.SUCCESS
                successes += 1
                dt = ts
                winner = attempt_indices[0]
            else:
                outcome = SlotOutcome.COLLISION
                collisions += count
                collision_events += 1
                dt = tc
                winner = None

            if trace is not None and count > 0:
                trace.add_transmission(
                    TransmissionRecord(
                        time_us=t,
                        outcome=(
                            "success"
                            if outcome == SlotOutcome.SUCCESS
                            else "collision"
                        ),
                        stations=tuple(attempt_indices),
                        winner=winner,
                        stages=tuple(
                            stations[i].stage for i in attempt_indices
                        ),
                    )
                )
            if trace is not None and self.record_slots:
                trace.add_slot(
                    SlotRecord(
                        time_us=t,
                        outcome=outcome.name.lower(),
                        per_station=tuple(
                            (s.stage, s.cw, s.dc, s.bc) for s in stations
                        ),
                    )
                )

            t += dt

            # Feedback phase.
            for i, station in enumerate(stations):
                frame_done = station.resolve(outcome, won=(i == winner))
                if not frame_done:
                    continue
                if self.record_delays:
                    delays.append(t - frame_start[i])
                proc = arrivals[i]
                if proc is None:
                    # Saturated: next frame immediately.
                    station.reset_for_new_frame()
                    frame_start[i] = t
                else:
                    proc.queue -= 1
                    proc.advance(t)
                    if proc.queue > 0:
                        station.reset_for_new_frame()
                        frame_start[i] = t
                    else:
                        station.sleep()

        state["t"] = t
        state["successes"] = successes
        state["collisions"] = collisions
        state["collision_events"] = collision_events
        state["idle_slots"] = idle_slots
        return not paused

    def result(self) -> SimulationResult:
        """Assemble the result of a finished run."""
        if not self.finished:
            raise RuntimeError("simulation has not run to completion")
        state = self._state
        stations = state["stations"]
        arrivals = state["arrivals"]
        stats = [
            StationStats(
                index=s.index,
                successes=s.successes,
                collisions=s.collisions,
                drops=s.drops,
                jumps=s.jumps,
                arrivals=arrivals[i].arrivals if arrivals[i] else 0,
                queue_losses=arrivals[i].losses if arrivals[i] else 0,
            )
            for i, s in enumerate(stations)
        ]
        return SimulationResult(
            scenario=self.scenario,
            duration_us=state["t"],
            successes=state["successes"],
            collisions=state["collisions"],
            collision_events=state["collision_events"],
            idle_slots=state["idle_slots"],
            stations=stats,
            trace=state["trace"],
            delays_us=(
                np.array(state["delays"]) if self.record_delays else None
            ),
        )


def simulate(
    scenario: ScenarioConfig,
    repetitions: int = 1,
    record_trace: bool = False,
    record_delays: bool = False,
) -> List[SimulationResult]:
    """Run ``scenario`` for several independently seeded repetitions."""
    root = RandomStreams(scenario.seed)
    results = []
    for rep in range(repetitions):
        sim = SlotSimulator(
            scenario,
            record_trace=record_trace,
            record_delays=record_delays,
            streams=root.spawn("rep", rep),
        )
        results.append(sim.run())
    return results


def sim_1901(
    n: int,
    sim_time: float,
    tc: float,
    ts: float,
    frame_length: float,
    cw: Sequence[int],
    dc: Sequence[int],
    seed: Optional[int] = 1,
) -> Tuple[float, float]:
    """Drop-in equivalent of the paper's MATLAB ``sim_1901`` function.

    Signature, argument order (note: ``Tc`` before ``Ts``) and return
    value ``(collision_pr, norm_throughput)`` match the listing.

    >>> p, s = sim_1901(2, 5e6, 2542.64, 2920.64, 2050.0,
    ...                 [8, 16, 32, 64], [0, 1, 3, 15], seed=1)
    >>> 0.0 < p < 0.2 and 0.5 < s < 0.75
    True
    """
    scenario = ScenarioConfig.homogeneous(
        num_stations=n,
        csma=CsmaConfig(cw=tuple(cw), dc=tuple(dc)),
        timing=TimingConfig(ts=ts, tc=tc, frame=frame_length),
        sim_time_us=sim_time,
        seed=seed,
    )
    result = SlotSimulator(scenario).run()
    return result.collision_probability, result.normalized_throughput
