"""The IEEE 1901 CSMA/CA station finite-state machine.

This is a semantically exact port of the per-station logic of the
reference MATLAB simulator published in §4.2 of the paper, factored out
so that both the slot-synchronous simulator (:mod:`repro.core.simulator`)
and the µs-resolution event-driven MAC (:mod:`repro.mac`) drive the
*same* protocol rules.

The FSM subtleties preserved from the reference listing:

- Three counters: backoff counter ``BC``, deferral counter ``DC`` and
  backoff procedure counter ``BPC``.
- ``BPC`` counts redraws since the last successful transmission; the
  backoff stage used at a redraw is ``min(BPC, num_stages - 1)``.
- On a *busy* slot event, ``BC`` and ``DC`` are both decremented —
  unless ``DC`` is already 0, in which case the station jumps to the
  next backoff stage (redraws ``BC``, reloads ``DC``) without
  attempting a transmission.  The ``DC == 0`` check happens *before*
  decrementing, so the jump fires on the (d_i + 1)-th busy event of a
  stage.
- ``BC`` is decremented on idle slots, so a station attempts exactly
  when its drawn ``BC`` has been consumed — provided no jump happened
  first.  A drawn ``BC`` of 0 means an immediate attempt.
- After *any* transmission on the medium (success or collision), every
  station re-enters the INIT state; the successful transmitter resets
  ``BPC`` to 0 first.

Extensions beyond the reference listing (all off by default):

- a finite retry limit (the paper assumes infinite retries);
- a *dormant* state for unsaturated stations with empty queues.
"""

from __future__ import annotations

import enum

import numpy as np

from .config import CsmaConfig

__all__ = ["StationState", "SlotOutcome", "Station"]


class StationState(enum.IntEnum):
    """FSM states, numbered as in the reference listing."""

    #: Just observed a transmission (or fresh frame): apply DC/jump rules.
    INIT = 0
    #: Attempting a transmission in the current slot event.
    TX = 1
    #: Counting down BC over idle slots.
    IDLE = 2
    #: No frame queued (unsaturated extension only).
    DORMANT = 3


class SlotOutcome(enum.IntEnum):
    """What the medium did during a slot event."""

    IDLE = 0
    SUCCESS = 1
    COLLISION = 2


class Station:
    """One CSMA/CA station (1901 rules; 802.11 via a non-expiring DC).

    Parameters
    ----------
    config:
        Backoff parameters (cw/dc schedules, protocol, retry limit).
    rng:
        Random generator for backoff draws (a dedicated substream).
    index:
        Station index, used in traces.

    The drive cycle, mirroring the reference simulator's main loop::

        attempt = station.step()          # contention phase of the slot
        ...the caller counts attempts across stations...
        station.resolve(outcome, won)     # medium outcome feedback
    """

    def __init__(
        self, config: CsmaConfig, rng: np.random.Generator, index: int = 0
    ) -> None:
        self.config = config
        self.rng = rng
        self.index = index

        self.state = StationState.INIT
        self.bpc = 0
        self.bc = 0
        self.dc = 0
        self.cw = config.cw[0]
        #: Transmission attempts made for the current frame.
        self.attempts_this_frame = 0
        #: Statistics counters.
        self.successes = 0
        self.collisions = 0
        self.drops = 0
        self.jumps = 0
        self._attempting = False
        #: Optional :class:`repro.obs.probe.MacProbe`; ``None`` keeps
        #: the hot path to a single attribute check per site.
        self.probe = None
        #: Identity stamped on emitted events (set by the owning node).
        self.probe_id = index

    def __repr__(self) -> str:
        return (
            f"<Station {self.index} state={self.state.name} bpc={self.bpc} "
            f"cw={self.cw} bc={self.bc} dc={self.dc}>"
        )

    # -- helpers ---------------------------------------------------------
    @property
    def stage(self) -> int:
        """Current backoff stage (clamped BPC of the last redraw)."""
        return min(max(self.bpc - 1, 0), self.config.num_stages - 1)

    @property
    def attempting(self) -> bool:
        """Whether the station transmits in the current slot event."""
        return self._attempting

    def _redraw(self) -> None:
        """Draw a fresh BC and reload CW/DC for stage ``min(BPC, m-1)``.

        Mirrors the reference listing's INIT branch: the redraw uses the
        *current* BPC as stage selector and then increments BPC.
        """
        stage = min(self.bpc, self.config.num_stages - 1)
        bpc_before = self.bpc
        self.cw = self.config.cw[stage]
        self.dc = self.config.dc[stage]
        self.bc = int(self.rng.integers(0, self.cw))
        self.bpc += 1
        if self.probe is not None:
            self.probe.emit(
                {
                    "event": "backoff_stage",
                    "station": self.probe_id,
                    "stage": stage,
                    "bpc": bpc_before,
                    "cw": self.cw,
                    "bc": self.bc,
                    "dc": self.dc,
                }
            )

    def check_invariants(self) -> list:
        """FSM sanity sweep: the violated-invariant descriptions.

        Empty list means the state is consistent.  The checks must hold
        at *every* point of the drive cycle, which rules out the
        tempting per-stage forms: ``reset_for_new_frame`` zeroes
        BPC/BC/DC but leaves ``cw`` at its last-stage value, and a
        successful ``resolve`` zeroes BPC while DC keeps its old-stage
        value — so DC is bounded by the schedule's maximum, not by the
        current stage's entry, and CW by membership in the schedule.
        """
        config = self.config
        violations = []
        if not 0 <= self.bc < max(self.cw, 1):
            violations.append(
                f"station {self.probe_id}: BC={self.bc} outside [0, "
                f"CW={self.cw})"
            )
        if self.cw not in config.cw:
            violations.append(
                f"station {self.probe_id}: CW={self.cw} not in the "
                f"schedule {list(config.cw)}"
            )
        if not 0 <= self.dc <= max(config.dc):
            violations.append(
                f"station {self.probe_id}: DC={self.dc} outside [0, "
                f"{max(config.dc)}]"
            )
        if self.bpc < 0:
            violations.append(
                f"station {self.probe_id}: BPC={self.bpc} negative"
            )
        if not 0 <= self.stage < config.num_stages:
            violations.append(
                f"station {self.probe_id}: stage={self.stage} outside "
                f"[0, {config.num_stages})"
            )
        if self._attempting and self.bc != 0:
            violations.append(
                f"station {self.probe_id}: attempting with BC={self.bc} != 0"
            )
        return violations

    # -- lifecycle --------------------------------------------------------
    def reset_for_new_frame(self) -> None:
        """Start contention for a fresh frame at backoff stage 0."""
        self.bpc = 0
        self.bc = 0
        self.dc = 0
        self.attempts_this_frame = 0
        self.state = StationState.INIT
        self._attempting = False

    def sleep(self) -> None:
        """Enter the dormant state (no frame queued)."""
        self.state = StationState.DORMANT
        self._attempting = False

    @property
    def dormant(self) -> bool:
        """Whether the station currently has nothing to send."""
        return self.state == StationState.DORMANT

    # -- the per-slot drive cycle ----------------------------------------
    def step(self) -> bool:
        """Contention phase of one slot event.

        Returns ``True`` if the station attempts a transmission in this
        slot event.  Must be followed by :meth:`resolve` with the
        medium outcome.
        """
        if self.state == StationState.DORMANT:
            self._attempting = False
            return False

        if self.state == StationState.INIT:
            if self.bpc == 0 or self.bc == 0 or self.dc == 0:
                if self.dc == 0 and self.bpc > 0 and self.bc != 0:
                    # Deferral-counter expiry: stage jump without attempt.
                    self.jumps += 1
                    if self.probe is not None:
                        self.probe.emit(
                            {
                                "event": "dc_jump",
                                "station": self.probe_id,
                                "bpc": self.bpc,
                                "bc": self.bc,
                            }
                        )
                self._redraw()
            else:
                self.bc -= 1
                self.dc -= 1
                if self.probe is not None:
                    self.probe.emit(
                        {
                            "event": "defer",
                            "station": self.probe_id,
                            "bc": self.bc,
                            "dc": self.dc,
                        }
                    )
        else:  # IDLE: medium was idle in the previous slot.
            self.bc -= 1

        self._attempting = self.bc == 0
        if self._attempting:
            self.attempts_this_frame += 1
        return self._attempting

    def resolve(self, outcome: SlotOutcome, won: bool = False) -> bool:
        """Medium-outcome phase of the slot event.

        Parameters
        ----------
        outcome:
            What happened on the medium during this slot event.
        won:
            ``True`` if this station was the (single) successful
            transmitter.

        Returns
        -------
        bool
            ``True`` if the station finished with its current frame
            (successful transmission, or drop at the retry limit) and
            the caller should supply the next frame (or put the station
            to sleep).
        """
        if self.state == StationState.DORMANT:
            return False

        frame_done = False
        if outcome == SlotOutcome.IDLE:
            # Nobody transmitted; stations keep counting down.
            self.state = (
                StationState.TX if self._attempting else StationState.IDLE
            )
            # (An attempting station with an idle outcome is impossible
            # in the synchronous simulator; kept for the event MAC where
            # an attempt can be pre-empted by priority resolution.)
        elif outcome == SlotOutcome.SUCCESS:
            if won:
                self.successes += 1
                self.bpc = 0
                self.attempts_this_frame = 0
                frame_done = True
            self.state = StationState.INIT
        else:  # COLLISION
            if self._attempting:
                self.collisions += 1
                limit = self.config.retry_limit
                if limit is not None and self.attempts_this_frame >= limit:
                    self.drops += 1
                    self.bpc = 0
                    self.attempts_this_frame = 0
                    frame_done = True
            self.state = StationState.INIT
        self._attempting = False
        return frame_done
