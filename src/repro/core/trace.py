"""Trace records produced by the simulators.

Two granularities:

- :class:`TransmissionRecord` — one row per channel event (success or
  collision), enough for fairness and delay studies (the report's §3.3
  "trace of the sources for all the transmitted data frames");
- :class:`SlotRecord` — one row per slot event with the full per-station
  counter state, used to reproduce Figure 1's worked example.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

__all__ = ["TransmissionRecord", "SlotRecord", "Trace"]


@dataclasses.dataclass(frozen=True)
class TransmissionRecord:
    """One transmission event on the medium.

    ``stations`` lists the indices of all stations that attempted in
    this slot event (a single element for a success).
    """

    time_us: float
    outcome: str  # "success" | "collision"
    stations: Tuple[int, ...]
    winner: Optional[int]
    #: Backoff stage each attempting station was in (parallel to
    #: ``stations``).
    stages: Tuple[int, ...]

    @property
    def is_collision(self) -> bool:
        return self.outcome == "collision"


@dataclasses.dataclass(frozen=True)
class SlotRecord:
    """Full per-station counter snapshot for one slot event.

    ``per_station`` holds ``(stage, cw, dc, bc)`` tuples *after* the
    contention phase of the slot (i.e. the values Figure 1 tabulates).
    """

    time_us: float
    outcome: str  # "idle" | "success" | "collision"
    per_station: Tuple[Tuple[int, int, int, int], ...]


class Trace:
    """Container accumulating both granularities of trace records."""

    def __init__(self, record_slots: bool = False) -> None:
        self.transmissions: List[TransmissionRecord] = []
        self.slots: List[SlotRecord] = []
        self.record_slots = record_slots

    def __len__(self) -> int:
        return len(self.transmissions)

    def add_transmission(self, record: TransmissionRecord) -> None:
        self.transmissions.append(record)

    def add_slot(self, record: SlotRecord) -> None:
        if self.record_slots:
            self.slots.append(record)

    # -- views -----------------------------------------------------------
    def success_times(self, station: Optional[int] = None) -> List[float]:
        """Timestamps of successes (optionally for one station)."""
        return [
            r.time_us
            for r in self.transmissions
            if r.winner is not None
            and (station is None or r.winner == station)
        ]

    def winners(self) -> List[int]:
        """Sequence of winning station indices, in time order."""
        return [
            r.winner for r in self.transmissions if r.winner is not None
        ]

    def collision_times(self) -> List[float]:
        return [r.time_us for r in self.transmissions if r.is_collision]

    def stage_at_attempt_counts(self, num_stages: int) -> List[int]:
        """Histogram of backoff stages over all transmission attempts."""
        counts = [0] * num_stages
        for record in self.transmissions:
            for stage in record.stages:
                counts[min(stage, num_stages - 1)] += 1
        return counts
