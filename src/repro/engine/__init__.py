"""A small discrete-event simulation kernel (offline stand-in for SimPy).

The kernel provides:

- :class:`Environment` — event queue, clock, ``run``/``step``;
- :class:`Event`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf` —
  event primitives and composition;
- :class:`Process` — generator-based coroutine processes with
  interrupt support;
- :class:`Resource`, :class:`Store` — shared resources;
- :class:`RandomStreams` — named, reproducible random substreams.

The µs-resolution MAC emulation (:mod:`repro.mac`) and the HomePlug AV
testbed emulation (:mod:`repro.hpav`) are built on this kernel.
"""

from .environment import Environment
from .errors import EmptySchedule, EngineError, Interrupt, StopSimulation
from .events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .process import Process
from .randomness import RandomStreams, uniform_backoff
from .resources import Release, Request, Resource, Store, StoreGet, StorePut

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "EmptySchedule",
    "EngineError",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Release",
    "Request",
    "Resource",
    "StopSimulation",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
    "uniform_backoff",
]
