"""The discrete-event simulation environment (scheduler and clock)."""

from __future__ import annotations

from heapq import heappop, heappush
from math import inf
from typing import Any, Generator, List, Optional, Tuple

from .errors import EmptySchedule, StopSimulation
from .events import AllOf, AnyOf, Event, NORMAL, Timeout
from .process import Process

__all__ = ["Environment"]


class Environment:
    """Execution environment for an event-driven simulation.

    Time advances by stepping from one scheduled event to the next.
    Events scheduled for the same time are processed in priority order
    (urgent first), then FIFO order of scheduling.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock.  The MAC emulation uses
        microseconds; the engine itself is unit-agnostic.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = initial_time
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_proc: Optional[Process] = None
        #: Optional engine monitor (e.g. ``repro.obs.profiler``); the
        #: ``is not None`` guard in :meth:`step` is the disabled fast path.
        self._monitor: Optional[Any] = None

    def __repr__(self) -> str:
        return f"<Environment(now={self._now}, queued={len(self._queue)})>"

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- monitoring ------------------------------------------------------
    @property
    def monitor(self) -> Optional[Any]:
        """The attached engine monitor, if any."""
        return self._monitor

    def set_monitor(self, monitor: Optional[Any]) -> None:
        """Attach (or with ``None`` detach) an engine monitor.

        A monitor observes every processed event via
        ``monitor.event_begin(event)`` / ``monitor.event_end(event)``
        around the callback dispatch in :meth:`step`.  ``event_begin``
        runs while ``event.callbacks`` is still intact, so monitors can
        classify the event by its registered callbacks (see
        :class:`repro.obs.profiler.EngineProfiler`).
        """
        self._monitor = monitor

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator)

    def any_of(self, events) -> AnyOf:
        """Condition triggering when any of ``events`` triggers."""
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        """Condition triggering when all of ``events`` have triggered."""
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------
    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Schedule ``event`` for processing after ``delay``."""
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def schedule_at(
        self, event: Event, at: float, priority: int = NORMAL
    ) -> None:
        """Schedule ``event`` at the *exact* absolute time ``at``.

        ``schedule(delay=at - now)`` re-derives the firing time as
        ``now + (at - now)``, which is not always the same float as
        ``at``.  Checkpoint restore re-creates pending timers from
        recorded absolute wake times and must reproduce the original
        firing instants bit-exactly, so it needs this exact form.
        """
        if at < self._now:
            raise ValueError(
                f"cannot schedule at {at}, before the current time "
                f"({self._now})"
            )
        self._eid += 1
        heappush(self._queue, (at, priority, self._eid, event))

    def timeout_at(self, at: float, value: Any = None) -> Event:
        """An event firing at the exact absolute time ``at``.

        The restore-side twin of :meth:`timeout`: a restarted process's
        first sleep targets the wake instant its pre-checkpoint
        incarnation had already scheduled, as an exact float.
        """
        event = Event(self)
        event._ok = True
        event._value = value
        self.schedule_at(event, at)
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else inf

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events left") from None

        monitor = self._monitor
        if monitor is not None:
            monitor.event_begin(event)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if monitor is not None:
            monitor.event_end(event)

        if not event._ok and not event.defused:
            # An event failed and nothing handled the failure.
            exc = event._value
            raise exc

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        - ``until`` is ``None``: run until no events remain.
        - ``until`` is a number: run until the clock reaches it.
        - ``until`` is an :class:`Event`: run until it is processed and
          return its value.
        """
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed.
                    return until.value
                until.callbacks.append(_stop_callback)
            else:
                at = float(until)
                if at <= self._now:
                    raise ValueError(
                        f"until ({at}) must be greater than the current "
                        f"simulation time ({self._now})"
                    )
                event = Event(self)
                event._ok = True
                event._value = None
                self.schedule(event, priority=0, delay=at - self._now)
                event.callbacks.append(_stop_callback)

        try:
            while True:
                self.step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise RuntimeError(
                    "no scheduled events left but `until` event was not "
                    "triggered"
                ) from None
        return None

    def run_until_at(self, at: float) -> Any:
        """Run until the clock reaches the *exact* float ``at``.

        :meth:`run` schedules its stop event via delay arithmetic
        (``now + (at - now)``); a resumed simulation must instead stop
        at the bit-exact instant the original run stopped at, which the
        checkpoint records.  Semantics otherwise match ``run(until=at)``.
        """
        if at <= self._now:
            raise ValueError(
                f"until ({at}) must be greater than the current "
                f"simulation time ({self._now})"
            )
        event = Event(self)
        event._ok = True
        event._value = None
        self.schedule_at(event, at, priority=0)
        event.callbacks.append(_stop_callback)
        try:
            while True:
                self.step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            return None

    # -- checkpoint hooks -------------------------------------------------
    def clock_state(self) -> dict:
        """The scheduler state a checkpoint must capture.

        The pending event queue itself is *not* part of this state:
        events hold generator continuations and cannot be serialized.
        Checkpoints are only taken at safe points where every pending
        event is a timer that its owning process knows how to re-create
        (see :mod:`repro.engine.marks`).
        """
        return {"now": self._now, "eid": self._eid}

    def restore_clock_state(self, state: dict) -> None:
        """Reset the scheduler onto a checkpoint's clock.

        Discards every pending event (a freshly rebuilt simulation has
        initializer events queued that must never run) and restores the
        clock and the event-id counter, so that tie-breaking of
        same-time events stays consistent with the original run.
        """
        self._queue.clear()
        self._now = float(state["now"])
        self._eid = int(state["eid"])


def _stop_callback(event: Event) -> None:
    """Callback stopping :meth:`Environment.run` when ``event`` fires."""
    if event._ok:
        raise StopSimulation(event._value)
    raise event._value
