"""Exception types raised by the discrete-event simulation kernel."""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all simulation-kernel errors."""


class StopSimulation(EngineError):
    """Raised internally to halt :meth:`Environment.run` at ``until``.

    Users never need to raise this directly; it is also the mechanism
    behind ``Environment.run(until=event)``.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class EmptySchedule(EngineError):
    """Raised by :meth:`Environment.step` when no events remain."""


class Interrupt(EngineError):
    """Raised inside a process that another process interrupted.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the interrupt happened.  It is
        available as :attr:`cause` in the interrupted process.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]
