"""Event primitives for the discrete-event simulation kernel.

The design follows the classic callback-driven architecture popularized
by SimPy (which is unavailable in this offline environment): an
:class:`Event` moves through three states — *pending*, *triggered*
(scheduled with a value or an exception) and *processed* (its callbacks
have run).  Processes (see :mod:`repro.engine.process`) suspend by
yielding events and are resumed from the event's callback list.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Condition",
    "AnyOf",
    "AllOf",
    "ConditionValue",
]

#: Sentinel for the value of an event that has not been triggered yet.
PENDING = object()

#: Scheduling priority for events that must run before same-time events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class Event:
    """An event that may happen at some point in simulated time.

    Callbacks appended to :attr:`callbacks` are invoked with the event
    itself as sole argument when the event is processed.
    """

    def __init__(self, env: "Environment") -> None:  # noqa: F821
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set to ``True`` by a process when it handles a failed event,
        #: to acknowledge the exception (otherwise it propagates out of
        #: :meth:`Environment.step`).
        self.defused: bool = False

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} object at {id(self):#x}>"

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (valid once triggered)."""
        if not self.triggered:
            raise AttributeError("value of event is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        if self._value is PENDING:
            raise AttributeError("value of event is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Used as a callback to chain events together.
        """
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition ---------------------------------------------------
    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])


class Timeout(Event):
    """An event that fires after ``delay`` units of simulated time."""

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        delay: float,
        value: Any = None,
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout({self._delay}) object at {id(self):#x}>"

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay


class ConditionValue:
    """Ordered mapping from events to values for triggered conditions."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()}>"

    def __iter__(self):
        return iter(self.events)

    def keys(self) -> List[Event]:
        return list(self.events)

    def values(self) -> List[Any]:
        return [e._value for e in self.events]

    def items(self):
        return [(e, e._value) for e in self.events]

    def todict(self) -> dict:
        return dict(self.items())


class Condition(Event):
    """Composite event that triggers when ``evaluate`` is satisfied.

    ``evaluate`` receives the list of composed events and the count of
    already-triggered ones, and returns ``True`` when the condition
    holds.  :class:`AnyOf` and :class:`AllOf` are the common cases.
    """

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("mixing events from different environments")

        # Immediately evaluate in case of zero events or all-processed.
        if self._evaluate(self._events, self._count):
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None:
                value.events.append(event)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            # A failed sub-event fails the condition.
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            value = ConditionValue()
            # Collection of values happens at processing time so that
            # simultaneous events are included.
            self.succeed(value)
            self.callbacks.insert(0, self._collect)

    def _collect(self, _event: Event) -> None:
        assert isinstance(self._value, ConditionValue)
        self._populate_value(self._value)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Evaluator: all composed events have triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        """Evaluator: at least one composed event has triggered."""
        return count > 0 or not events


class AnyOf(Condition):
    """Condition that triggers when any of ``events`` triggers."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(env, Condition.any_events, events)


class AllOf(Condition):
    """Condition that triggers when all of ``events`` have triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(env, Condition.all_events, events)
