"""Process marks: the protocol that makes generator processes resumable.

Generator-based processes cannot be pickled, so a checkpoint cannot
capture a process mid-execution.  Instead, every *restartable* process
keeps a :class:`ProcMark` that it updates immediately before each
``yield`` of a sleep timer:

- ``scheduled_us`` — the instant the pending sleep was scheduled (the
  process's last wake time);
- ``wake_us`` — the absolute instant the pending sleep will fire;
- ``phase`` / ``data`` — which park site of the generator the process
  sleeps at, when the resume action depends on it;
- ``seq`` — a global creation sequence number (the environment's event
  id right after the process was started), used for tie-breaking;
- ``done`` — set when the generator exits, so restore skips it.

On restore, a fresh generator is started per live mark whose first act
is ``yield env.timeout_at(mark.wake_us)`` followed by the exact code the
original generator would have executed at that wake.  Restart order is
``sorted by (scheduled_us, seq)``: in the original run, a timer
scheduled earlier carries a smaller event id, and ties at equal
scheduling instants resolve by prior event order, which roots at process
creation order — i.e. at ``seq``.  Restarting in that order therefore
reproduces the original heap tie-breaking for timers that fire at the
same instant, which is what makes resumed runs bit-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Tuple

__all__ = ["ProcMark", "restart_order"]


@dataclasses.dataclass
class ProcMark:
    """Resume bookmark of one restartable process."""

    #: Stable identity of the process across a rebuild, e.g.
    #: ``("source", 2)`` or ``("chanest", "02:00:00:00:00:01")``.
    key: Tuple[Any, ...]
    #: Creation sequence (environment event id stamped at process start).
    seq: int = 0
    #: Instant the pending sleep was scheduled (last wake time).
    scheduled_us: float = 0.0
    #: Absolute instant the pending sleep fires.
    wake_us: float = 0.0
    #: Park-site label, for generators with several sleep sites.
    phase: str = ""
    #: Extra resume context (must stay picklable and JSON-friendly).
    data: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Set when the generator exits; done marks are not restarted.
    done: bool = False

    def stamp_created(self, env) -> None:
        """Record the creation sequence right after ``env.process(...)``.

        The initializer event of a fresh process is the most recently
        scheduled event, so the environment's event-id counter *is* the
        process's creation sequence number.
        """
        self.seq = env._eid

    def sleeping(
        self, env, wake_us: float, phase: str = "", **data: Any
    ) -> None:
        """Record a pending sleep; call immediately before the yield."""
        self.scheduled_us = env.now
        self.wake_us = wake_us
        self.phase = phase
        if data:
            self.data.update(data)

    def finish(self) -> None:
        """Mark the generator as exited (nothing to restart)."""
        self.done = True

    def as_state(self) -> Dict[str, Any]:
        return {
            "key": tuple(self.key),
            "seq": self.seq,
            "scheduled_us": self.scheduled_us,
            "wake_us": self.wake_us,
            "phase": self.phase,
            "data": dict(self.data),
            "done": self.done,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "ProcMark":
        return cls(
            key=tuple(state["key"]),
            seq=int(state["seq"]),
            scheduled_us=float(state["scheduled_us"]),
            wake_us=float(state["wake_us"]),
            phase=str(state["phase"]),
            data=dict(state["data"]),
            done=bool(state["done"]),
        )


def restart_order(marks) -> list:
    """Live marks sorted into the order their processes must restart in."""
    return sorted(
        (m for m in marks if not m.done),
        key=lambda m: (m.scheduled_us, m.seq),
    )
