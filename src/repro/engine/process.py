"""Generator-based processes for the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Generator, Optional

from .errors import Interrupt
from .events import Event, PENDING, URGENT

__all__ = ["Process", "Initialize", "Interruption"]


class Initialize(Event):
    """Urgent event that starts a freshly created :class:`Process`."""

    def __init__(self, env: "Environment", process: "Process") -> None:  # noqa: F821
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Interruption(Event):
    """Urgent event that delivers an :class:`Interrupt` to a process."""

    def __init__(self, process: "Process", cause: object) -> None:
        super().__init__(process.env)
        self.callbacks = [self._interrupt]
        self._ok = False
        self._value = Interrupt(cause)
        self.defused = True
        self.process = process
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self.process
        if not process.is_alive:
            # The process terminated before the interrupt could arrive.
            return
        # Unsubscribe the process from the event it is waiting for.
        target = process._target
        if target is not None and target.callbacks is not None:
            target.callbacks.remove(process._resume)
        process._resume(self)


class Process(Event):
    """A process executing a generator function.

    The process suspends whenever the generator yields an
    :class:`Event` and resumes once that event is processed.  The
    process itself is an event that triggers when the generator
    terminates (its value is the generator's return value).
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:  # noqa: F821
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", repr(self._generator))
        return f"<Process({name}) object at {id(self):#x}>"

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` until the generator terminates."""
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Interrupt this process, raising :class:`Interrupt` inside it."""
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Resume the generator with the value of ``event``."""
        env = self.env
        env._active_proc = self

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The event failed; throw its exception into the
                    # generator.  Mark it defused: the process now owns
                    # the error.
                    event.defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                # Process finished.
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as exc:
                # Process failed.
                self._ok = False
                self._value = exc
                # Remember the traceback for debugging.
                self.defused = False
                env.schedule(self)
                break

            # Process the event the generator yielded.
            if not isinstance(next_event, Event):
                # Deliver the error into the generator on the next
                # iteration so it surfaces as a normal process failure.
                error = Event(env)
                error._ok = False
                error._value = TypeError(
                    f"process yielded a non-event: {next_event!r}"
                )
                error.defused = True
                error.callbacks = None
                event = error
                continue
            if next_event.callbacks is not None:
                # Event not yet processed: suspend until it is.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: continue immediately with its
            # value (or exception).
            event = next_event

        env._active_proc = None
