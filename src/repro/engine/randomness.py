"""Seeded random-number streams for reproducible simulations.

Every stochastic component of the simulator (each station's backoff
draws, each traffic source, the management-message scheduler, ...)
pulls from its own independent substream derived from a single root
seed, so results are reproducible and adding a component never
perturbs the draws of another.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["RandomStreams", "uniform_backoff"]


class RandomStreams:
    """A tree of named, independent random substreams.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` draws OS entropy (non-reproducible).

    Examples
    --------
    >>> streams = RandomStreams(7)
    >>> rng = streams.stream("station", 0)
    >>> int(rng.integers(0, 8)) in range(8)
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[tuple, np.random.Generator] = {}
        self.seed = seed

    def stream(self, *key: object) -> np.random.Generator:
        """Return the generator for ``key``, creating it on first use.

        The same key always maps to the same substream for a given root
        seed, regardless of creation order.
        """
        k = tuple(key)
        if k not in self._streams:
            # Derive a child deterministically from the key's hash-free
            # representation: spawn keys must be integers, so fold the
            # repr of the key into words appended to the root's own
            # spawn key (preserving any `spawn` lineage).
            words = [w % (2**32) for w in _key_words(k)]
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key) + tuple(words),
            )
            self._streams[k] = np.random.default_rng(child)
        return self._streams[k]

    @classmethod
    def from_seed_sequence(
        cls,
        sequence: np.random.SeedSequence,
        seed: Optional[int] = None,
    ) -> "RandomStreams":
        """A tree rooted at an externally derived ``SeedSequence``.

        Used by :mod:`repro.runner` to hand each experiment point a
        root spawned from ``(root_seed, point_index, repetition)``
        while keeping the named-substream layout (``stream("station",
        i)`` etc.) identical to the serial code paths.  ``seed`` is
        only bookkeeping (the :attr:`seed` attribute); the draws are
        fully determined by ``sequence``.
        """
        streams = cls.__new__(cls)
        streams._root = sequence
        streams._streams = {}
        streams.seed = seed
        return streams

    def clone(self) -> "RandomStreams":
        """A same-derivation tree with *fresh* generators.

        ``stream(...)`` generators are stateful and cached, so handing
        one tree to two simulators makes them consume each other's
        draws — a silently-shared-RNG hazard that would let a
        differential comparison "pass" by comparing a simulator
        against its own perturbation.  A clone derives the exact same
        substreams from the same root (each starting at the beginning
        of its stream, regardless of what the original has already
        consumed), with no state shared with the original:

        >>> a = RandomStreams(3)
        >>> _ = a.stream("station", 0).integers(0, 8, size=5)
        >>> b = a.clone()  # unaffected by a's consumed draws
        >>> c = RandomStreams(3)
        >>> list(b.stream("station", 0).integers(0, 8, size=2)) == list(
        ...     c.stream("station", 0).integers(0, 8, size=2)
        ... )
        True
        """
        clone = RandomStreams.__new__(RandomStreams)
        clone._root = self._root
        clone._streams = {}
        clone.seed = self.seed
        return clone

    def spawn(self, *key: object) -> "RandomStreams":
        """Create an independent child tree (e.g. per repetition)."""
        child = RandomStreams.__new__(RandomStreams)
        words = [w % (2**32) for w in _key_words(tuple(key))]
        child._root = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=tuple(self._root.spawn_key)
            + tuple(words)
            + (0xC0FFEE,),
        )
        child._streams = {}
        child.seed = self.seed
        return child


def _key_words(key: tuple) -> list:
    """Map an arbitrary key tuple to a deterministic list of ints."""
    words = []
    for part in key:
        if isinstance(part, (int, np.integer)):
            words.append(int(part) & 0xFFFFFFFF)
        else:
            # Stable across processes (unlike hash()): fold UTF-8 bytes.
            acc = 2166136261
            for byte in str(part).encode("utf-8"):
                acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
            words.append(acc)
    return words or [0]


def uniform_backoff(rng: np.random.Generator, contention_window: int) -> int:
    """Draw a backoff counter uniformly from {0, ..., CW - 1}.

    This matches the reference simulator's ``unidrnd(CW) - 1``.
    """
    if contention_window < 1:
        raise ValueError(f"contention window must be >= 1, got {contention_window}")
    return int(rng.integers(0, contention_window))
