"""Shared resources for processes: capacity-limited resources and stores."""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .events import Event

__all__ = ["Resource", "Request", "Release", "Store", "StorePut", "StoreGet"]


class Request(Event):
    """Request event for acquiring a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ...
    """

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger_requests()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request from the wait queue."""
        if self in self.resource._queue:
            self.resource._queue.remove(self)


class Release(Event):
    """Event that releases a previously granted :class:`Request`."""

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(request)
        self.succeed()


class Resource:
    """A resource with ``capacity`` usage slots and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:  # noqa: F821
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()

    @property
    def capacity(self) -> int:
        """Total number of usage slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue(self) -> Deque[Request]:
        """Pending (not yet granted) requests."""
        return self._queue

    def request(self) -> Request:
        """Request a usage slot."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release a granted slot (or cancel a pending request)."""
        return Release(self, request)

    def _do_release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
        else:
            request.cancel()
        self._trigger_requests()

    def _trigger_requests(self) -> None:
        while self._queue and len(self._users) < self._capacity:
            req = self._queue.popleft()
            self._users.append(req)
            req.succeed()


class StorePut(Event):
    """Event for putting ``item`` into a :class:`Store`."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Event for getting an item out of a :class:`Store`."""

    def __init__(
        self, store: "Store", filter: Optional[Callable[[Any], bool]] = None
    ) -> None:
        super().__init__(store.env)
        self.filter = filter
        store._get_queue.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw an unfulfilled get request."""
        if self in self.env_store._get_queue:  # pragma: no cover - defensive
            self.env_store._get_queue.remove(self)


class Store:
    """A FIFO store of Python objects with optional capacity.

    ``get(filter=...)`` retrieves the first item matching the filter
    (making this a combined Store/FilterStore).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:  # noqa: F821
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    @property
    def capacity(self) -> float:
        """Maximum number of stored items."""
        return self._capacity

    def put(self, item: Any) -> StorePut:
        """Put ``item`` into the store (waits while full)."""
        return StorePut(self, item)

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Get the first item (matching ``filter`` if given)."""
        event = StoreGet(self, filter)
        event.env_store = self
        return event

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit pending puts while capacity allows.
            while self._put_queue and len(self.items) < self._capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Serve pending gets for which an item is available.
            served: List[StoreGet] = []
            for get in list(self._get_queue):
                match: Any = _MISSING
                if get.filter is None:
                    if self.items:
                        match = self.items[0]
                else:
                    for item in self.items:
                        if get.filter(item):
                            match = item
                            break
                if match is not _MISSING:
                    self.items.remove(match)
                    get.succeed(match)
                    served.append(get)
                    progressed = True
            for get in served:
                self._get_queue.remove(get)


#: Sentinel distinguishing "no matching item" from a stored ``None``.
_MISSING = object()
