"""The paper's measurement methodology as executable experiments."""

from .channel_errors import ChannelErrorPoint, error_rate_sweep
from .coexistence import (
    CoexistenceResult,
    adoption_sweep,
    coexistence_experiment,
)
from .coupling import CouplingResult, measure_coupling
from .collision_probability import (
    Figure2Point,
    Table2Row,
    figure2_data,
    table2_data,
)
from .rate_diversity import (
    RateDiversityResult,
    anomaly_sweep,
    rate_diversity_experiment,
)
from .unsaturated import LoadPoint, offered_load_sweep, saturation_rate_pps
from .fairness import (
    FairnessResult,
    fairness_by_simulation,
    fairness_by_testbed,
    jain_vs_window,
)
from .mme_overhead import (
    MmeOverheadResult,
    measure_mme_overhead,
    overhead_vs_n,
)
from .procedures import (
    DEFAULT_TEST_DURATION_US,
    DEFAULT_WARMUP_US,
    CollisionTest,
    CollisionTestSeries,
    repeat_tests,
    run_collision_test,
)
from .sweeps import SweepPoint, standard_protocol_sweep, sweep_configuration
from .testbed import Testbed, build_testbed

__all__ = [
    "ChannelErrorPoint",
    "CoexistenceResult",
    "CollisionTest",
    "CouplingResult",
    "measure_coupling",
    "adoption_sweep",
    "coexistence_experiment",
    "LoadPoint",
    "RateDiversityResult",
    "anomaly_sweep",
    "error_rate_sweep",
    "rate_diversity_experiment",
    "offered_load_sweep",
    "saturation_rate_pps",
    "CollisionTestSeries",
    "DEFAULT_TEST_DURATION_US",
    "DEFAULT_WARMUP_US",
    "FairnessResult",
    "Figure2Point",
    "MmeOverheadResult",
    "SweepPoint",
    "Table2Row",
    "Testbed",
    "build_testbed",
    "fairness_by_simulation",
    "fairness_by_testbed",
    "jain_vs_window",
    "figure2_data",
    "measure_mme_overhead",
    "overhead_vs_n",
    "repeat_tests",
    "run_collision_test",
    "standard_protocol_sweep",
    "sweep_configuration",
    "table2_data",
]
