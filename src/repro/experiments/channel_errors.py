"""Channel-error extension (§4.1's third unknown, made explicit).

The paper assumes an error-free channel and lists channel errors as a
mechanism that *cannot* be modelled from public information.  This
experiment implements the closest well-defined substitute — i.i.d.
per-PB Bernoulli errors with whole-MPDU MAC-level retransmission — and
measures what errors do to the §3.2 observables:

- goodput at D decreases with the PB error rate (retransmissions burn
  airtime);
- the collision-probability *estimator* ΣC/ΣA stays approximately
  unbiased: errored exchanges are acknowledged (with error flags), so
  they inflate neither the collided nor leave the acked count.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from ..engine.randomness import RandomStreams
from ..phy.channel import BernoulliPbErrors
from .procedures import run_collision_test
from .testbed import build_testbed

__all__ = ["ChannelErrorPoint", "error_rate_sweep"]


@dataclasses.dataclass(frozen=True)
class ChannelErrorPoint:
    """Measurements at one per-PB error probability."""

    pb_error_probability: float
    num_stations: int
    collision_probability: float
    goodput_mbps: float
    retransmissions: int
    delivered_frames: int


def error_rate_sweep(
    num_stations: int = 2,
    error_probabilities: Sequence[float] = (0.0, 0.01, 0.05, 0.1),
    duration_us: float = 12e6,
    seed: int = 1,
) -> List[ChannelErrorPoint]:
    """Run the §3.2 test across PB error rates."""
    points = []
    for probability in error_probabilities:
        tb = build_testbed(num_stations, seed=seed)
        if probability > 0:
            tb.avln.strip.error_model = BernoulliPbErrors(
                probability,
                RandomStreams(seed).stream("channel-errors"),
            )
        test = run_collision_test(
            num_stations, duration_us=duration_us, testbed=tb
        )
        retransmissions = sum(
            station.node.phy_retransmissions for station in tb.stations
        )
        points.append(
            ChannelErrorPoint(
                pb_error_probability=probability,
                num_stations=num_stations,
                collision_probability=test.collision_probability,
                goodput_mbps=test.goodput_mbps,
                retransmissions=retransmissions,
                delivered_frames=tb.destination.received_frames,
            )
        )
    return points
