"""Coexistence: boosted stations sharing the channel with legacy ones.

A deployment question the boosting results raise: if some adapters
adopt a boosted (CW, DC) schedule while others keep the 1901 default,
who wins?  The heterogeneous slot simulator answers directly.

Typical outcome: the boosted schedule is *more polite* (larger
windows), so legacy stations grab a disproportionate share while
overall efficiency still improves — upgrade incentives matter.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..core.config import (
    CsmaConfig,
    ScenarioConfig,
    StationConfig,
    TimingConfig,
)
from ..core.simulator import SlotSimulator

__all__ = ["CoexistenceResult", "coexistence_experiment", "adoption_sweep"]


@dataclasses.dataclass(frozen=True)
class CoexistenceResult:
    """Per-group outcomes of one mixed-population run."""

    num_boosted: int
    num_legacy: int
    boosted_throughput: float
    legacy_throughput: float
    total_throughput: float
    collision_probability: float

    @property
    def per_boosted_station(self) -> float:
        if self.num_boosted == 0:
            return 0.0
        return self.boosted_throughput / self.num_boosted

    @property
    def per_legacy_station(self) -> float:
        if self.num_legacy == 0:
            return 0.0
        return self.legacy_throughput / self.num_legacy


def coexistence_experiment(
    num_boosted: int,
    num_legacy: int,
    boosted: Optional[CsmaConfig] = None,
    timing: Optional[TimingConfig] = None,
    sim_time_us: float = 2e7,
    seed: int = 1,
) -> CoexistenceResult:
    """Run a mixed population of boosted and default stations."""
    if num_boosted < 0 or num_legacy < 0 or num_boosted + num_legacy < 1:
        raise ValueError("need at least one station")
    boosted = (
        boosted
        if boosted is not None
        else CsmaConfig(cw=(32, 128, 512, 2048), dc=(7, 15, 31, 63))
    )
    timing = timing if timing is not None else TimingConfig()
    stations = tuple(
        StationConfig(csma=boosted, name=f"boosted{i}")
        for i in range(num_boosted)
    ) + tuple(
        StationConfig(csma=CsmaConfig.default_1901(), name=f"legacy{i}")
        for i in range(num_legacy)
    )
    scenario = ScenarioConfig(
        stations=stations, timing=timing, sim_time_us=sim_time_us, seed=seed
    )
    result = SlotSimulator(scenario).run()
    shares = result.per_station_throughput
    return CoexistenceResult(
        num_boosted=num_boosted,
        num_legacy=num_legacy,
        boosted_throughput=float(np.sum(shares[:num_boosted])),
        legacy_throughput=float(np.sum(shares[num_boosted:])),
        total_throughput=result.normalized_throughput,
        collision_probability=result.collision_probability,
    )


def adoption_sweep(
    total_stations: int = 10,
    boosted_counts: Sequence[int] = (0, 2, 5, 8, 10),
    boosted: Optional[CsmaConfig] = None,
    sim_time_us: float = 2e7,
    seed: int = 1,
) -> List[CoexistenceResult]:
    """Sweep the fraction of upgraded stations at fixed network size."""
    return [
        coexistence_experiment(
            num_boosted=k,
            num_legacy=total_stations - k,
            boosted=boosted,
            sim_time_us=sim_time_us,
            seed=seed,
        )
        for k in boosted_counts
    ]
