"""Figure 2 and Table 2: collision probability vs. number of stations.

Three estimates per network size N, as in the paper:

- **measurement** — the emulated HomePlug AV testbed driven through
  the §3.2 ampstat procedure (ΣC_i / ΣA_i, averaged over tests);
- **simulation** — the slot-synchronous MAC simulator of §4.2;
- **analysis** — the decoupling model of [5].
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..analysis.model import Model1901
from ..core.config import CsmaConfig, ScenarioConfig, TimingConfig
from ..core.results import aggregate
from ..core.simulator import simulate
from .procedures import CollisionTestSeries, repeat_tests

__all__ = ["Figure2Point", "figure2_data", "Table2Row", "table2_data"]


@dataclasses.dataclass(frozen=True)
class Figure2Point:
    """One x-position of Figure 2."""

    num_stations: int
    measured: float
    measured_std: float
    simulated: float
    analytical: float


def figure2_data(
    station_counts: Sequence[int] = tuple(range(1, 8)),
    test_duration_us: float = 24e6,
    test_repetitions: int = 3,
    sim_time_us: float = 5e7,
    sim_repetitions: int = 3,
    seed: int = 1,
    config: Optional[CsmaConfig] = None,
    timing: Optional[TimingConfig] = None,
) -> List[Figure2Point]:
    """Compute the three Figure 2 curves.

    Defaults are scaled down from the paper's 240 s × 10 tests to keep
    the benchmark quick; pass ``test_duration_us=240e6,
    test_repetitions=10`` for the full procedure.
    """
    config = config if config is not None else CsmaConfig.default_1901()
    timing = timing if timing is not None else TimingConfig()
    model = Model1901(config, timing)
    points = []
    for n in station_counts:
        series = repeat_tests(
            n,
            repetitions=test_repetitions,
            duration_us=test_duration_us,
            seed=seed,
        )
        scenario = ScenarioConfig.homogeneous(
            num_stations=n,
            csma=config,
            timing=timing,
            sim_time_us=sim_time_us,
            seed=seed,
        )
        agg = aggregate(simulate(scenario, repetitions=sim_repetitions))
        points.append(
            Figure2Point(
                num_stations=n,
                measured=series.collision_probability,
                measured_std=series.collision_probability_std,
                simulated=agg.collision_probability,
                analytical=model.collision_probability(n),
            )
        )
    return points


@dataclasses.dataclass(frozen=True)
class Table2Row:
    """One row of Table 2: ΣC_i and ΣA_i for a network size."""

    num_stations: int
    sum_collided: int
    sum_acked: int

    @property
    def collision_probability(self) -> float:
        return self.sum_collided / self.sum_acked if self.sum_acked else 0.0


def table2_data(
    station_counts: Sequence[int] = tuple(range(1, 8)),
    duration_us: float = 240e6,
    seed: int = 1,
) -> List[Table2Row]:
    """Regenerate Table 2: one test per N at the paper's duration."""
    rows = []
    for n in station_counts:
        series: CollisionTestSeries = repeat_tests(
            n, repetitions=1, duration_us=duration_us, seed=seed
        )
        test = series.tests[0]
        rows.append(
            Table2Row(
                num_stations=n,
                sum_collided=test.sum_collided,
                sum_acked=test.sum_acked,
            )
        )
    return rows
