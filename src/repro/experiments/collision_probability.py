"""Figure 2 and Table 2: collision probability vs. number of stations.

Three estimates per network size N, as in the paper:

- **measurement** — the emulated HomePlug AV testbed driven through
  the §3.2 ampstat procedure (ΣC_i / ΣA_i, averaged over tests);
- **simulation** — the slot-synchronous MAC simulator of §4.2;
- **analysis** — the decoupling model of [5].

Both generators batch every testbed test and simulation repetition
through a :class:`repro.runner.ExperimentRunner`, so a Figure 2 at the
paper's scale (70 four-minute testbed runs) parallelizes across worker
processes and survives interruption via the on-disk cache.  Testbed
tests keep their historical explicit seeds (``seed + repetition *
1000``), which the golden Table 2 regression pins bit-for-bit.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..analysis.model import Model1901
from ..core.config import CsmaConfig, ScenarioConfig, TimingConfig
from ..core.results import aggregate
from ..runner import ExperimentRunner, Task, TaskKind, require_complete
from ..runner.runner import rehydrate_simulation
from ..runner.seeding import SeedSpec
from ..runner.serialize import scenario_to_jsonable
from .procedures import (
    DEFAULT_WARMUP_US,
    CollisionTest,
    CollisionTestSeries,
)

__all__ = ["Figure2Point", "figure2_data", "Table2Row", "table2_data"]


@dataclasses.dataclass(frozen=True)
class Figure2Point:
    """One x-position of Figure 2."""

    num_stations: int
    measured: float
    measured_std: float
    simulated: float
    analytical: float


def _collision_test_task(
    num_stations: int, duration_us: float, seed: int
) -> Task:
    return Task(
        kind=TaskKind.COLLISION_TEST,
        payload={
            "num_stations": num_stations,
            "duration_us": duration_us,
            "warmup_us": DEFAULT_WARMUP_US,
            "seed": seed,
            "testbed_kwargs": {},
        },
    )


def _test_from_entry(entry: dict) -> CollisionTest:
    return CollisionTest(
        num_stations=entry["num_stations"],
        duration_us=entry["duration_us"],
        per_station=[tuple(row) for row in entry["per_station"]],
        goodput_mbps=entry["goodput_mbps"],
    )


def figure2_data(
    station_counts: Sequence[int] = tuple(range(1, 8)),
    test_duration_us: float = 24e6,
    test_repetitions: int = 3,
    sim_time_us: float = 5e7,
    sim_repetitions: int = 3,
    seed: int = 1,
    config: Optional[CsmaConfig] = None,
    timing: Optional[TimingConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> List[Figure2Point]:
    """Compute the three Figure 2 curves.

    Defaults are scaled down from the paper's 240 s × 10 tests to keep
    the benchmark quick; pass ``test_duration_us=240e6,
    test_repetitions=10`` for the full procedure.  All testbed tests
    and simulation repetitions across every N are submitted to
    ``runner`` as a single batch.
    """
    config = config if config is not None else CsmaConfig.default_1901()
    timing = timing if timing is not None else TimingConfig()
    runner = runner if runner is not None else ExperimentRunner()
    model = Model1901(config, timing)
    counts = [int(n) for n in station_counts]

    test_tasks = [
        _collision_test_task(n, test_duration_us, seed + rep * 1000)
        for n in counts
        for rep in range(test_repetitions)
    ]
    scenarios = [
        ScenarioConfig.homogeneous(
            num_stations=n,
            csma=config,
            timing=timing,
            sim_time_us=sim_time_us,
            seed=seed,
        )
        for n in counts
    ]
    sim_tasks = [
        Task(
            kind=TaskKind.SIMULATE,
            payload={"scenario": scenario_to_jsonable(scenario)},
            seed=SeedSpec(root_seed=seed, point_index=i, repetition=rep),
        )
        for i, scenario in enumerate(scenarios)
        for rep in range(sim_repetitions)
    ]

    raw = runner.run(test_tasks + sim_tasks)
    require_complete(raw, runner.failures)
    test_entries = raw[: len(test_tasks)]
    sim_entries = raw[len(test_tasks):]

    points = []
    for i, n in enumerate(counts):
        series = CollisionTestSeries(
            tests=[
                _test_from_entry(entry)
                for entry in test_entries[
                    i * test_repetitions : (i + 1) * test_repetitions
                ]
            ]
        )
        runs = [
            rehydrate_simulation(scenarios[i], entry).result
            for entry in sim_entries[
                i * sim_repetitions : (i + 1) * sim_repetitions
            ]
        ]
        agg = aggregate(runs)
        points.append(
            Figure2Point(
                num_stations=n,
                measured=series.collision_probability,
                measured_std=series.collision_probability_std,
                simulated=agg.collision_probability,
                analytical=model.collision_probability(n),
            )
        )
    return points


@dataclasses.dataclass(frozen=True)
class Table2Row:
    """One row of Table 2: ΣC_i and ΣA_i for a network size."""

    num_stations: int
    sum_collided: int
    sum_acked: int

    @property
    def collision_probability(self) -> float:
        return self.sum_collided / self.sum_acked if self.sum_acked else 0.0


def table2_data(
    station_counts: Sequence[int] = tuple(range(1, 8)),
    duration_us: float = 240e6,
    seed: int = 1,
    runner: Optional[ExperimentRunner] = None,
) -> List[Table2Row]:
    """Regenerate Table 2: one test per N at the paper's duration.

    Each N's test keeps the seed the serial code always used, so the
    rows are independent of worker count and cache state (the golden
    regression test pins them to the seed implementation exactly).
    """
    runner = runner if runner is not None else ExperimentRunner()
    counts = [int(n) for n in station_counts]
    tasks = [
        _collision_test_task(n, duration_us, seed) for n in counts
    ]
    entries = runner.run(tasks)
    require_complete(entries, runner.failures)
    rows = []
    for n, entry in zip(counts, entries):
        test = _test_from_entry(entry)
        rows.append(
            Table2Row(
                num_stations=n,
                sum_collided=test.sum_collided,
                sum_acked=test.sum_acked,
            )
        )
    return rows
