"""Coupling diagnostics: how wrong is the decoupling assumption?

The analysis of [5] assumes stations' backoff processes are
independent, each seeing a constant busy probability.  In 1901 this is
visibly violated (experiment X7's residual errors): all stations
re-enter INIT together after every transmission, and the winner's
stage-0 restart correlates with the losers' escalation.

This experiment measures the violation directly from slot traces:

- the joint stationary distribution of two stations' backoff stages;
- its total-variation distance from the product of the marginals
  (0 = perfectly decoupled);
- the stage correlation coefficient (negative for 1901: one station
  low while the other is high — the capture pattern of Figure 1).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..core.config import CsmaConfig, ScenarioConfig, TimingConfig
from ..core.simulator import SlotSimulator

__all__ = ["CouplingResult", "measure_coupling"]


@dataclasses.dataclass(frozen=True)
class CouplingResult:
    """Decoupling-violation measurements for a station pair."""

    label: str
    num_stations: int
    #: Joint stage distribution (num_stages × num_stages array).
    joint: np.ndarray
    #: Total-variation distance between joint and product-of-marginals.
    tv_distance: float
    #: Pearson correlation between the two stations' stages.
    stage_correlation: float
    #: P(station A at stage 0 AND station B at stage 0).
    both_at_stage0: float
    #: Product of the marginals' stage-0 probabilities.
    independent_both_at_stage0: float


def measure_coupling(
    config: Optional[CsmaConfig] = None,
    label: str = "1901 CA1",
    sim_time_us: float = 2e7,
    seed: int = 1,
    timing: Optional[TimingConfig] = None,
) -> CouplingResult:
    """Joint-stage statistics of two saturated stations."""
    config = config if config is not None else CsmaConfig.default_1901()
    scenario = ScenarioConfig.homogeneous(
        num_stations=2,
        csma=config,
        timing=timing if timing is not None else TimingConfig(),
        sim_time_us=sim_time_us,
        seed=seed,
    )
    result = SlotSimulator(scenario, record_slots=True).run()
    num_stages = config.num_stages

    stages_a = np.fromiter(
        (slot.per_station[0][0] for slot in result.trace.slots), dtype=int
    )
    stages_b = np.fromiter(
        (slot.per_station[1][0] for slot in result.trace.slots), dtype=int
    )
    joint = np.zeros((num_stages, num_stages))
    np.add.at(joint, (stages_a, stages_b), 1.0)
    joint /= joint.sum()

    marginal_a = joint.sum(axis=1)
    marginal_b = joint.sum(axis=0)
    product = np.outer(marginal_a, marginal_b)
    tv = 0.5 * float(np.abs(joint - product).sum())

    if stages_a.std() > 0 and stages_b.std() > 0:
        correlation = float(np.corrcoef(stages_a, stages_b)[0, 1])
    else:
        correlation = 0.0

    return CouplingResult(
        label=label,
        num_stations=2,
        joint=joint,
        tv_distance=tv,
        stage_correlation=correlation,
        both_at_stage0=float(joint[0, 0]),
        independent_both_at_stage0=float(marginal_a[0] * marginal_b[0]),
    )
