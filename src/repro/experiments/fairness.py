"""Fairness experiments: 1901 vs. 802.11, long- and short-term ([4]).

Two measurement paths, mirroring the paper's toolchain:

- **simulator traces** — the slot simulator's winner sequence scored
  with Jain's index over sliding windows (short-term) and over the
  whole run (long-term), plus the channel-capture probability that
  Figure 1 illustrates;
- **testbed traces** — faifa's burst-level source trace captured at D
  (§3.3's method, used by [4]).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..core.config import CsmaConfig, ScenarioConfig, TimingConfig
from ..core.metrics import (
    capture_probability,
    jain_index,
    short_term_fairness,
    win_run_lengths,
)
from ..core.simulator import SlotSimulator

__all__ = [
    "FairnessResult",
    "fairness_by_simulation",
    "fairness_by_testbed",
    "jain_vs_window",
]


@dataclasses.dataclass(frozen=True)
class FairnessResult:
    """Fairness metrics of one protocol at one network size."""

    label: str
    num_stations: int
    long_term_jain: float
    short_term_jain: float
    capture_probability: float
    mean_run_length: float
    max_run_length: int


def _result_from_winners(
    label: str, num_stations: int, winners: Sequence[int], counts: Sequence[int]
) -> FairnessResult:
    runs = win_run_lengths(winners)
    return FairnessResult(
        label=label,
        num_stations=num_stations,
        long_term_jain=jain_index(counts),
        short_term_jain=short_term_fairness(winners, num_stations),
        capture_probability=capture_probability(winners),
        mean_run_length=(sum(runs) / len(runs)) if runs else float("nan"),
        max_run_length=max(runs) if runs else 0,
    )


def fairness_by_simulation(
    station_counts: Sequence[int] = (2, 3, 5, 10),
    sim_time_us: float = 5e7,
    seed: int = 1,
    timing: Optional[TimingConfig] = None,
    runner=None,
) -> List[FairnessResult]:
    """1901 default vs. 802.11 DCF fairness from simulator traces.

    All ``(N, protocol)`` scenarios run through a
    :class:`repro.runner.ExperimentRunner` as one batch with the winner
    sequences recorded, so the fairness study parallelizes and caches
    like every other experiment family.  Seeds derive from ``(seed,
    scenario position, 0)`` per the runner's determinism contract.
    """
    from ..runner import ExperimentRunner

    timing = timing if timing is not None else TimingConfig()
    runner = runner if runner is not None else ExperimentRunner()
    protocols = [
        ("1901 CA1", CsmaConfig.default_1901()),
        ("802.11 DCF", CsmaConfig.ieee80211()),
    ]
    labeled = [
        (label, n, config)
        for n in station_counts
        for label, config in protocols
    ]
    scenarios = [
        ScenarioConfig.homogeneous(
            num_stations=n,
            csma=config,
            timing=timing,
            sim_time_us=sim_time_us,
            seed=seed,
        )
        for _label, n, config in labeled
    ]
    grouped = runner.run_scenarios(
        scenarios, root_seed=seed, repetitions=1, record_winners=True
    )
    results = []
    for (label, n, _config), group in zip(labeled, grouped):
        point = group[0]
        counts = [s.successes for s in point.result.stations]
        results.append(
            _result_from_winners(label, n, list(point.winners), counts)
        )
    return results


def jain_vs_window(
    num_stations: int = 2,
    windows: Sequence[int] = (2, 5, 10, 20, 50, 100, 200),
    sim_time_us: float = 5e7,
    seed: int = 1,
) -> dict:
    """[4]'s signature plot: sliding-window Jain index vs window size.

    Returns ``{protocol label: [(window, mean Jain), ...]}``.  Both
    protocols converge to 1 for large windows (long-term fairness);
    1901's curve rises much more slowly — its unfairness horizon (the
    window needed to look fair) is an order of magnitude longer.
    """
    from ..core.metrics import windowed_jain

    curves = {}
    for label, config in (
        ("1901 CA1", CsmaConfig.default_1901()),
        ("802.11 DCF", CsmaConfig.ieee80211()),
    ):
        scenario = ScenarioConfig.homogeneous(
            num_stations=num_stations,
            csma=config,
            sim_time_us=sim_time_us,
            seed=seed,
        )
        result = SlotSimulator(scenario, record_trace=True).run()
        winners = result.trace.winners()
        points = []
        for window in windows:
            values = windowed_jain(winners, num_stations, window)
            if values.size:
                points.append((window, float(values.mean())))
        curves[label] = points
    return curves


def fairness_by_testbed(
    num_stations: int,
    duration_us: float = 24e6,
    warmup_us: float = 2e6,
    seed: int = 1,
) -> FairnessResult:
    """Burst-level fairness from the emulated testbed's sniffer trace.

    This is exactly the [4] methodology: capture SoF delimiters at D,
    rebuild bursts, and score the time-ordered sequence of burst
    sources.
    """
    from .testbed import build_testbed

    tb = build_testbed(num_stations, seed=seed, enable_sniffer=True)
    tb.run_until(warmup_us)
    assert tb.faifa is not None
    tb.faifa.clear()
    tb.run_until(tb.env.now + duration_us)
    winners = [tei for _t, tei in tb.faifa.source_trace()]
    station_teis = sorted(set(winners))
    index_of = {tei: i for i, tei in enumerate(station_teis)}
    winner_idx = [index_of[tei] for tei in winners]
    counts = [0] * len(station_teis)
    for w in winner_idx:
        counts[w] += 1
    return _result_from_winners(
        f"testbed N={num_stations}", len(station_teis), winner_idx, counts
    )
