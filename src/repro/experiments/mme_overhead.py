"""§3.3: management-message overhead and burst-size measurements.

Runs the testbed with the destination's sniffer enabled and lets
``faifa`` do its three jobs: classify captures by Link ID, rebuild
bursts from ``MPDUCnt`` and divide management bursts by data bursts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from .testbed import build_testbed

__all__ = ["MmeOverheadResult", "measure_mme_overhead"]


@dataclasses.dataclass(frozen=True)
class MmeOverheadResult:
    """Sniffer-derived per-test measurements (§3.3)."""

    num_stations: int
    duration_us: float
    data_bursts: int
    management_bursts: int
    overhead: float
    burst_size_histogram: Dict[int, int]
    #: Per-source burst counts (the fairness trace's raw material).
    bursts_per_source: Dict[int, int]


def measure_mme_overhead(
    num_stations: int,
    duration_us: float = 24e6,
    warmup_us: float = 2e6,
    seed: Optional[int] = 1,
    **testbed_kwargs,
) -> MmeOverheadResult:
    """One sniffer test: capture at D, compute the §3.3 metrics."""
    tb = build_testbed(
        num_stations, seed=seed, enable_sniffer=True, **testbed_kwargs
    )
    tb.run_until(warmup_us)
    assert tb.faifa is not None
    tb.faifa.clear()  # §3.2-style reset at the start of the test
    start = tb.env.now
    tb.run_until(start + duration_us)

    data = tb.faifa.data_bursts()
    management = tb.faifa.management_bursts()
    per_source: Dict[int, int] = {}
    for record in data:
        if not record.collided:
            per_source[record.source_tei] = (
                per_source.get(record.source_tei, 0) + 1
            )
    return MmeOverheadResult(
        num_stations=num_stations,
        duration_us=tb.env.now - start,
        data_bursts=len(data),
        management_bursts=len(management),
        overhead=tb.faifa.mme_overhead(),
        burst_size_histogram=tb.faifa.burst_size_histogram(),
        bursts_per_source=per_source,
    )


def overhead_vs_n(
    station_counts: Sequence[int] = (1, 2, 4, 7),
    duration_us: float = 24e6,
    seed: int = 1,
) -> List[MmeOverheadResult]:
    """MME overhead across network sizes."""
    return [
        measure_mme_overhead(n, duration_us=duration_us, seed=seed)
        for n in station_counts
    ]
