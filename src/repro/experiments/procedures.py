"""The §3.2 measurement procedure, as executable code.

One *test*: bring the testbed up (association, beacon lock), reset the
transmit statistics of all stations, run for the test duration, then
retrieve ΣC_i and ΣA_i with ampstat and evaluate the collision
probability as ΣC_i / ΣA_i.  :func:`repeat_tests` averages several
independently seeded tests (the paper averages 10).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from .testbed import Testbed, build_testbed

__all__ = [
    "CollisionTest",
    "CollisionTestSeries",
    "run_collision_test",
    "repeat_tests",
    "DEFAULT_TEST_DURATION_US",
    "DEFAULT_WARMUP_US",
]

#: The paper's test duration: 240 s.
DEFAULT_TEST_DURATION_US = 240e6

#: Warm-up before resetting stats: lets association/beacons settle and
#: the queues reach their saturated steady state.
DEFAULT_WARMUP_US = 2e6


@dataclasses.dataclass(frozen=True)
class CollisionTest:
    """Result of one §3.2 test."""

    num_stations: int
    duration_us: float
    #: Per-station (mac, acked, collided) rows towards D at CA1.
    per_station: List[tuple]
    #: App-layer goodput observed at D, bits per µs (== Mbps).
    goodput_mbps: float

    @property
    def sum_acked(self) -> int:
        """ΣA_i — includes collided frames (selective-ACK rule, §3.2)."""
        return sum(acked for _mac, acked, _coll in self.per_station)

    @property
    def sum_collided(self) -> int:
        """ΣC_i."""
        return sum(collided for _mac, _acked, collided in self.per_station)

    @property
    def collision_probability(self) -> float:
        """ΣC_i / ΣA_i (§3.2's estimator)."""
        if self.sum_acked == 0:
            return 0.0
        return self.sum_collided / self.sum_acked


@dataclasses.dataclass(frozen=True)
class CollisionTestSeries:
    """Several repetitions of the same test (different seeds)."""

    tests: List[CollisionTest]

    @property
    def num_stations(self) -> int:
        return self.tests[0].num_stations

    @property
    def collision_probability(self) -> float:
        return float(
            np.mean([test.collision_probability for test in self.tests])
        )

    @property
    def collision_probability_std(self) -> float:
        return float(
            np.std([test.collision_probability for test in self.tests])
        )

    @property
    def goodput_mbps(self) -> float:
        return float(np.mean([test.goodput_mbps for test in self.tests]))


def run_collision_test(
    num_stations: int,
    duration_us: float = DEFAULT_TEST_DURATION_US,
    warmup_us: float = DEFAULT_WARMUP_US,
    seed: Optional[int] = 1,
    testbed: Optional[Testbed] = None,
    **testbed_kwargs,
) -> CollisionTest:
    """Run one test following the §3.2 procedure."""
    tb = (
        testbed
        if testbed is not None
        else build_testbed(num_stations, seed=seed, **testbed_kwargs)
    )
    # Bring-up: association handshakes, beacon lock, queue fill.
    tb.run_until(warmup_us)
    if not tb.avln.all_associated:
        # Associations retry every 100 ms; extend the warm-up.
        tb.run_until(warmup_us + 1e6)
    if not tb.avln.all_associated:
        raise RuntimeError("stations failed to associate during warm-up")

    # §3.2: reset the transmit statistics of all stations...
    tb.reset_data_stats()
    rx_frames_before = tb.destination.received_frames
    rx_bytes_before = tb.destination.received_bytes
    start = tb.env.now

    # ...run the test...
    tb.run_until(start + duration_us)

    # ...and retrieve the counters.
    rows = tb.read_data_stats()
    elapsed = tb.env.now - start
    goodput_mbps = (
        (tb.destination.received_bytes - rx_bytes_before) * 8.0 / elapsed
    )
    del rx_frames_before
    return CollisionTest(
        num_stations=num_stations,
        duration_us=elapsed,
        per_station=rows,
        goodput_mbps=goodput_mbps,
    )


def repeat_tests(
    num_stations: int,
    repetitions: int = 10,
    duration_us: float = DEFAULT_TEST_DURATION_US,
    seed: int = 1,
    warmup_us: float = DEFAULT_WARMUP_US,
    runner=None,
    obs=None,
    **testbed_kwargs,
) -> CollisionTestSeries:
    """The paper's 10-test average at one network size.

    Repetition ``r`` keeps its historical explicit seed ``seed + r *
    1000`` (the golden Table 2 regression pins this bit-for-bit), so
    routing through a :class:`repro.runner.ExperimentRunner` — for
    parallel repetitions and on-disk memoization — cannot change the
    numbers.  Non-JSON-serializable ``testbed_kwargs`` (e.g. live
    config objects) fall back to the in-process loop.

    ``obs`` (an :class:`~repro.obs.capture.ObsConfig` or its dict form)
    captures per-repetition traces: each repetition's artifacts land in
    ``obs.dir`` labelled ``rep<r>`` (a non-empty ``obs.label`` becomes
    the prefix ``<label>_rep<r>``).
    """
    import json

    from ..runner import ExperimentRunner, Task, TaskKind, require_complete

    obs_per_rep = [None] * repetitions
    if obs is not None:
        from ..obs.capture import ObsConfig

        base = ObsConfig.from_jsonable(obs)
        prefix = f"{base.label}_" if base.label else ""
        obs_per_rep = [
            dataclasses.replace(base, label=f"{prefix}rep{repetition}")
            for repetition in range(repetitions)
        ]

    payload_kwargs = testbed_kwargs
    if testbed_kwargs:
        try:
            json.dumps(testbed_kwargs)
        except TypeError:
            payload_kwargs = None
    if payload_kwargs is None:
        tests = []
        for repetition in range(repetitions):
            rep_seed = seed + repetition * 1000
            if obs_per_rep[repetition] is not None:
                from ..obs.capture import observed_collision_test

                test, _capture = observed_collision_test(
                    num_stations,
                    obs_per_rep[repetition],
                    duration_us=duration_us,
                    warmup_us=warmup_us,
                    seed=rep_seed,
                    **testbed_kwargs,
                )
            else:
                test = run_collision_test(
                    num_stations,
                    duration_us=duration_us,
                    warmup_us=warmup_us,
                    seed=rep_seed,
                    **testbed_kwargs,
                )
            tests.append(test)
        return CollisionTestSeries(tests=tests)

    runner = runner if runner is not None else ExperimentRunner()
    tasks = []
    for repetition in range(repetitions):
        payload = {
            "num_stations": num_stations,
            "duration_us": duration_us,
            "warmup_us": warmup_us,
            "seed": seed + repetition * 1000,
            "testbed_kwargs": payload_kwargs,
        }
        if obs_per_rep[repetition] is not None:
            payload["obs"] = obs_per_rep[repetition].as_jsonable()
        tasks.append(Task(kind=TaskKind.COLLISION_TEST, payload=payload))
    entries = runner.run(tasks)
    require_complete(entries, runner.failures)
    tests = [
        CollisionTest(
            num_stations=entry["num_stations"],
            duration_us=entry["duration_us"],
            per_station=[tuple(row) for row in entry["per_station"]],
            goodput_mbps=entry["goodput_mbps"],
        )
        for entry in entries
    ]
    return CollisionTestSeries(tests=tests)
