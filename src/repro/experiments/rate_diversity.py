"""Rate diversity: the CSMA airtime anomaly on the emulated testbed.

§4.1 explains that bit loading — hence frame airtime — depends on each
link's channel.  With CSMA/CA giving stations equal *transmission
opportunities*, a station on an attenuated outlet (low SNR → low
tone-map rate → long MPDUs) consumes disproportionate airtime and
drags every station's goodput down toward the slow link's rate: the
classic performance anomaly, reproduced here with SNR-driven tone
maps (:mod:`repro.phy.bitloading`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..engine.environment import Environment
from ..engine.randomness import RandomStreams
from ..hpav.network import Avln
from ..phy.rates import LinkRateTable
from ..phy.timing import PhyTiming
from ..traffic.generators import SaturatedSource
from ..traffic.packets import mac_address

__all__ = ["RateDiversityResult", "rate_diversity_experiment"]


@dataclasses.dataclass(frozen=True)
class RateDiversityResult:
    """Outcome of one rate-diversity run."""

    slow_snr_db: Optional[float]
    #: Per-station delivered frames at D (keyed by station MAC).
    frames_per_station: Dict[str, int]
    #: Aggregate goodput at D (Mbps).
    goodput_mbps: float
    #: Payload rate (Mbps) of the slow station's link, if any.
    slow_link_rate_mbps: Optional[float]
    duration_us: float
    #: Fraction of busy airtime each station's transmissions used
    #: (keyed by station MAC; the anomaly's smoking gun).
    airtime_share: Dict[str, float] = dataclasses.field(
        default_factory=dict
    )


def rate_diversity_experiment(
    num_stations: int = 3,
    slow_snr_db: Optional[float] = None,
    duration_us: float = 12e6,
    warmup_us: float = 2e6,
    seed: int = 1,
) -> RateDiversityResult:
    """N saturated stations → D; station 0 optionally on a bad outlet.

    ``slow_snr_db=None`` runs the homogeneous baseline (all links at
    the calibrated SNR); otherwise station 0's links are degraded to
    ``slow_snr_db`` and its MPDUs stretch accordingly (rate-based
    airtime, no fixed MPDU duration).
    """
    env = Environment()
    streams = RandomStreams(seed)
    rates = LinkRateTable()
    timing = PhyTiming(fixed_mpdu_airtime_us=None, link_rates=rates)
    avln = Avln(env, streams, timing=timing)

    destination = avln.add_device(mac_address(0), is_cco=True)
    stations = [
        avln.add_device(mac_address(i + 1)) for i in range(num_stations)
    ]
    sources = [
        SaturatedSource(env, station, destination.mac_addr)
        for station in stations
    ]
    del sources

    env.run(until=warmup_us)
    if not avln.all_associated:
        env.run(until=warmup_us + 1e6)
    slow_rate = None
    if slow_snr_db is not None:
        rates.set_station_snr(stations[0].tei, slow_snr_db)
        slow_rate = rates.rate_mbps(stations[0].tei, destination.tei)

    # Measure over the test window only.
    rx_bytes_before = destination.received_bytes
    frames_before = {
        station.mac_addr: destination.firmware.link(
            destination.firmware.RX, station.mac_addr, 1
        ).acked
        for station in stations
    }
    start = env.now
    env.run(until=start + duration_us)
    elapsed = env.now - start

    frames = {
        station.mac_addr: destination.firmware.link(
            destination.firmware.RX, station.mac_addr, 1
        ).acked
        - frames_before[station.mac_addr]
        for station in stations
    }
    goodput = (destination.received_bytes - rx_bytes_before) * 8.0 / elapsed
    airtime_share = {
        station.mac_addr: avln.coordinator.log.airtime_share(station.tei)
        for station in stations
    }
    return RateDiversityResult(
        slow_snr_db=slow_snr_db,
        frames_per_station=frames,
        goodput_mbps=goodput,
        slow_link_rate_mbps=slow_rate,
        duration_us=elapsed,
        airtime_share=airtime_share,
    )


def anomaly_sweep(
    snrs: Sequence[Optional[float]] = (None, 12.0, 3.0),
    num_stations: int = 3,
    duration_us: float = 12e6,
    seed: int = 1,
) -> List[RateDiversityResult]:
    """Baseline plus progressively worse outlets for station 0."""
    return [
        rate_diversity_experiment(
            num_stations=num_stations,
            slow_snr_db=snr,
            duration_us=duration_us,
            seed=seed,
        )
        for snr in snrs
    ]
