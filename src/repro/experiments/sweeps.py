"""Parameter sweeps: throughput vs. N, priority classes, protocols.

These produce the extended-evaluation series of the CoNEXT paper's
scope (experiments X1/X6 of DESIGN.md): saturation throughput and
collision probability as functions of the number of stations for

- the 1901 default (CA1) configuration,
- the CA2/CA3 parameter column (Table 1's second group),
- the 802.11 DCF baseline,
- any custom configuration (e.g. a boosted one).

Each series carries both simulation measurements and the analytical
curve.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.bianchi import Bianchi80211Model
from ..analysis.model import Model1901
from ..core.config import CsmaConfig, ScenarioConfig, TimingConfig
from ..core.parameters import PriorityClass
from ..core.results import aggregate
from ..core.simulator import simulate

__all__ = ["SweepPoint", "sweep_configuration", "standard_protocol_sweep"]


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """Simulation + model values at one network size."""

    label: str
    num_stations: int
    sim_throughput: float
    sim_collision_probability: float
    model_throughput: float
    model_collision_probability: float


def sweep_configuration(
    label: str,
    config: CsmaConfig,
    station_counts: Sequence[int],
    timing: Optional[TimingConfig] = None,
    sim_time_us: float = 2e7,
    repetitions: int = 3,
    seed: int = 1,
) -> List[SweepPoint]:
    """One configuration across network sizes."""
    timing = timing if timing is not None else TimingConfig()
    if config.protocol == "80211":
        model = Bianchi80211Model.from_config(config, timing)
    else:
        model = Model1901(config, timing, method="recursive")
    points = []
    for n in station_counts:
        prediction = model.solve(n)
        scenario = ScenarioConfig.homogeneous(
            num_stations=n,
            csma=config,
            timing=timing,
            sim_time_us=sim_time_us,
            seed=seed,
        )
        agg = aggregate(simulate(scenario, repetitions=repetitions))
        points.append(
            SweepPoint(
                label=label,
                num_stations=n,
                sim_throughput=agg.normalized_throughput,
                sim_collision_probability=agg.collision_probability,
                model_throughput=prediction.normalized_throughput,
                model_collision_probability=prediction.collision_probability,
            )
        )
    return points


def standard_protocol_sweep(
    station_counts: Sequence[int] = (1, 2, 3, 5, 7, 10, 15, 20, 30),
    timing: Optional[TimingConfig] = None,
    sim_time_us: float = 2e7,
    repetitions: int = 3,
    seed: int = 1,
    extra: Optional[Dict[str, CsmaConfig]] = None,
) -> Dict[str, List[SweepPoint]]:
    """The X1/X6 comparison: 1901 CA1, 1901 CA3, 802.11 DCF (+extras)."""
    configs: List[Tuple[str, CsmaConfig]] = [
        ("1901 CA1", CsmaConfig.for_priority(PriorityClass.CA1)),
        ("1901 CA3", CsmaConfig.for_priority(PriorityClass.CA3)),
        ("802.11 DCF", CsmaConfig.ieee80211()),
    ]
    if extra:
        configs.extend(extra.items())
    return {
        label: sweep_configuration(
            label,
            config,
            station_counts,
            timing=timing,
            sim_time_us=sim_time_us,
            repetitions=repetitions,
            seed=seed,
        )
        for label, config in configs
    }
