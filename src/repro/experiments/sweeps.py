"""Parameter sweeps: throughput vs. N, priority classes, protocols.

These produce the extended-evaluation series of the CoNEXT paper's
scope (experiments X1/X6 of DESIGN.md): saturation throughput and
collision probability as functions of the number of stations for

- the 1901 default (CA1) configuration,
- the CA2/CA3 parameter column (Table 1's second group),
- the 802.11 DCF baseline,
- any custom configuration (e.g. a boosted one).

Each series carries both simulation measurements and the analytical
curve.

Execution goes through :class:`repro.runner.ExperimentRunner`: pass
``runner=ExperimentRunner(max_workers=4, cache_dir=...)`` to simulate
points concurrently and/or memoize them on disk.  Seeding is the
runner's determinism contract — the point at ``station_counts[i]``,
repetition ``r``, draws from ``SeedSequence(seed, spawn_key=(i, r))``
— so a sweep's numbers are bit-identical for any worker count and
reproducible across process restarts, and ``repetitions=3`` means
three documented, independently seeded runs per point.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import CsmaConfig, ScenarioConfig, TimingConfig
from ..core.parameters import PriorityClass
from ..core.results import aggregate
from ..runner import ExperimentRunner, Task, TaskKind, require_complete
from ..runner.runner import rehydrate_simulation
from ..runner.seeding import SeedSpec
from ..runner.serialize import (
    csma_to_jsonable,
    scenario_to_jsonable,
    timing_to_jsonable,
)

__all__ = ["SweepPoint", "sweep_configuration", "standard_protocol_sweep"]


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """Simulation + model values at one network size."""

    label: str
    num_stations: int
    sim_throughput: float
    sim_collision_probability: float
    model_throughput: float
    model_collision_probability: float


def sweep_configuration(
    label: str,
    config: CsmaConfig,
    station_counts: Sequence[int],
    timing: Optional[TimingConfig] = None,
    sim_time_us: float = 2e7,
    repetitions: int = 3,
    seed: int = 1,
    runner: Optional[ExperimentRunner] = None,
) -> List[SweepPoint]:
    """One configuration across network sizes.

    All ``len(station_counts) * repetitions`` simulation points plus
    the analytical curve are submitted to ``runner`` as one batch, so
    with ``max_workers > 1`` they execute concurrently.
    """
    timing = timing if timing is not None else TimingConfig()
    runner = runner if runner is not None else ExperimentRunner()
    counts = [int(n) for n in station_counts]

    family = "80211" if config.protocol == "80211" else "1901"
    model_task = Task(
        kind=TaskKind.MODEL_CURVE,
        payload={
            "family": family,
            "csma": csma_to_jsonable(config),
            "timing": timing_to_jsonable(timing),
            "station_counts": counts,
            "method": "recursive",
        },
    )

    scenarios = [
        ScenarioConfig.homogeneous(
            num_stations=n,
            csma=config,
            timing=timing,
            sim_time_us=sim_time_us,
            seed=seed,
        )
        for n in counts
    ]
    sim_tasks = [
        Task(
            kind=TaskKind.SIMULATE,
            payload={"scenario": scenario_to_jsonable(scenario)},
            seed=SeedSpec(root_seed=seed, point_index=i, repetition=rep),
        )
        for i, scenario in enumerate(scenarios)
        for rep in range(repetitions)
    ]

    raw = runner.run([model_task] + sim_tasks)
    require_complete(raw, runner.failures)
    model_points = raw[0]["points"]
    sim_entries = raw[1:]

    points = []
    for i, n in enumerate(counts):
        prediction = model_points[i]
        runs = [
            rehydrate_simulation(scenarios[i], entry).result
            for entry in sim_entries[i * repetitions : (i + 1) * repetitions]
        ]
        agg = aggregate(runs)
        points.append(
            SweepPoint(
                label=label,
                num_stations=n,
                sim_throughput=agg.normalized_throughput,
                sim_collision_probability=agg.collision_probability,
                model_throughput=prediction["normalized_throughput"],
                model_collision_probability=prediction[
                    "collision_probability"
                ],
            )
        )
    return points


def standard_protocol_sweep(
    station_counts: Sequence[int] = (1, 2, 3, 5, 7, 10, 15, 20, 30),
    timing: Optional[TimingConfig] = None,
    sim_time_us: float = 2e7,
    repetitions: int = 3,
    seed: int = 1,
    extra: Optional[Dict[str, CsmaConfig]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, List[SweepPoint]]:
    """The X1/X6 comparison: 1901 CA1, 1901 CA3, 802.11 DCF (+extras).

    Every configuration reuses the same per-point seeds (common random
    numbers), which pairs the protocol comparison at each N.
    """
    runner = runner if runner is not None else ExperimentRunner()
    configs: List[Tuple[str, CsmaConfig]] = [
        ("1901 CA1", CsmaConfig.for_priority(PriorityClass.CA1)),
        ("1901 CA3", CsmaConfig.for_priority(PriorityClass.CA3)),
        ("802.11 DCF", CsmaConfig.ieee80211()),
    ]
    if extra:
        configs.extend(extra.items())
    return {
        label: sweep_configuration(
            label,
            config,
            station_counts,
            timing=timing,
            sim_time_us=sim_time_us,
            repetitions=repetitions,
            seed=seed,
            runner=runner,
        )
        for label, config in configs
    }
