"""Emulated testbed construction (the §3 experimental setup).

One call builds the paper's measurement scenario: N saturated stations
plugged into one power strip, all sending UDP traffic to a destination
station D (which also acts as the CCo of the AVLN), with the
management plane (beacons, association, channel estimation) running —
exactly the environment in which §3.2's collision-probability numbers
and §3.3's MME-overhead numbers are taken.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..core.config import CsmaConfig
from ..core.parameters import PriorityClass
from ..engine.environment import Environment
from ..engine.randomness import RandomStreams
from ..hpav.device import HomePlugAVDevice
from ..hpav.network import Avln
from ..mac.queueing import AggregationPolicy
from ..phy.timing import PhyTiming
from ..tools.ampstat import Ampstat
from ..tools.faifa import Faifa
from ..traffic.generators import SaturatedSource
from ..traffic.packets import mac_address

__all__ = ["Testbed", "build_testbed"]


@dataclasses.dataclass
class Testbed:
    """A ready-to-run emulated HomePlug AV testbed."""

    env: Environment
    streams: RandomStreams
    avln: Avln
    destination: HomePlugAVDevice
    stations: List[HomePlugAVDevice]
    sources: List[SaturatedSource]
    ampstats: Dict[str, Ampstat]
    faifa: Optional[Faifa]

    @property
    def num_stations(self) -> int:
        return len(self.stations)

    def run_until(self, time_us: float) -> None:
        """Advance virtual time to ``time_us`` (absolute)."""
        self.env.run(until=time_us)

    def reset_data_stats(self) -> None:
        """§3.2: reset every station's TX counters towards D (CA1)."""
        for station in self.stations:
            self.ampstats[station.mac_addr].reset(
                peer_mac=self.destination.mac_addr,
                priority=int(PriorityClass.CA1),
            )

    def read_data_stats(self) -> List[tuple]:
        """Per-station ``(mac, acked, collided)`` towards D at CA1."""
        rows = []
        for station in self.stations:
            acked, collided = self.ampstats[station.mac_addr].get(
                peer_mac=self.destination.mac_addr,
                priority=int(PriorityClass.CA1),
            )
            rows.append((station.mac_addr, acked, collided))
        return rows


def build_testbed(
    num_stations: int,
    seed: Optional[int] = 1,
    timing: Optional[PhyTiming] = None,
    configs: Optional[Dict[PriorityClass, CsmaConfig]] = None,
    aggregation: Optional[AggregationPolicy] = None,
    enable_sniffer: bool = False,
    beacons_enabled: bool = True,
    channel_est_enabled: bool = True,
    udp_payload_bytes: int = 1472,
    error_model=None,
) -> Testbed:
    """Assemble N saturated stations + destination/CCo D on one strip.

    Parameters mirror the §3 setup; ``enable_sniffer`` attaches a
    :class:`Faifa` instance to D (the paper captures at the
    destination).  ``error_model`` installs a PB-error model on the
    strip (``None`` keeps the paper's ideal channel); the chaos layer
    installs its impairments through this hook.
    """
    if num_stations < 1:
        raise ValueError("num_stations must be >= 1")
    env = Environment()
    streams = RandomStreams(seed)
    avln = Avln(
        env,
        streams,
        timing=timing,
        beacons_enabled=beacons_enabled,
        channel_est_enabled=channel_est_enabled,
        error_model=error_model,
    )

    destination = avln.add_device(
        mac_address(0), is_cco=True, configs=configs, aggregation=aggregation
    )
    stations = [
        avln.add_device(
            mac_address(i + 1), configs=configs, aggregation=aggregation
        )
        for i in range(num_stations)
    ]
    sources = [
        SaturatedSource(
            env,
            station,
            dst_mac=destination.mac_addr,
            udp_payload_bytes=udp_payload_bytes,
        )
        for station in stations
    ]
    ampstats = {
        device.mac_addr: Ampstat(device)
        for device in [destination, *stations]
    }
    faifa = None
    if enable_sniffer:
        faifa = Faifa(destination)
        faifa.enable()
    return Testbed(
        env=env,
        streams=streams,
        avln=avln,
        destination=destination,
        stations=stations,
        sources=sources,
        ampstats=ampstats,
        faifa=faifa,
    )
