"""Unsaturated operation: offered load vs. delivered throughput/delay.

The paper analyzes saturated stations; this extension sweeps Poisson
offered load through the slot simulator's arrival support to locate
the saturation knee and the delay blow-up around it.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..core.config import CsmaConfig, ScenarioConfig, TimingConfig
from ..core.simulator import SlotSimulator

__all__ = ["LoadPoint", "offered_load_sweep", "saturation_rate_pps"]


@dataclasses.dataclass(frozen=True)
class LoadPoint:
    """Measurements at one per-station offered load."""

    arrival_rate_pps: float
    num_stations: int
    #: Total offered load, frames per second.
    offered_fps: float
    #: Total delivered frames per second.
    delivered_fps: float
    collision_probability: float
    mean_delay_us: float
    p95_delay_us: float
    queue_loss_fraction: float


def saturation_rate_pps(
    num_stations: int, timing: Optional[TimingConfig] = None
) -> float:
    """Approximate per-station saturation frame rate.

    At saturation the network delivers ~S·1e6/Ts frames per second in
    total (each success occupies Ts); dividing by N gives the
    per-station knee location used to scale sweep grids.
    """
    from ..analysis.model import Model1901

    timing = timing if timing is not None else TimingConfig()
    model = Model1901(timing=timing, method="recursive")
    prediction = model.solve(num_stations)
    total_fps = (
        prediction.p_success
        / prediction.expected_event_duration_us
        * 1e6
    )
    return total_fps / num_stations


def offered_load_sweep(
    num_stations: int = 3,
    load_fractions: Sequence[float] = (0.2, 0.5, 0.8, 1.0, 1.5),
    sim_time_us: float = 3e7,
    seed: int = 1,
    config: Optional[CsmaConfig] = None,
    timing: Optional[TimingConfig] = None,
) -> List[LoadPoint]:
    """Sweep per-station Poisson arrivals as fractions of saturation."""
    timing = timing if timing is not None else TimingConfig()
    knee = saturation_rate_pps(num_stations, timing)
    points = []
    for fraction in load_fractions:
        rate = max(fraction * knee, 1e-3)
        scenario = ScenarioConfig.homogeneous(
            num_stations=num_stations,
            csma=config,
            timing=timing,
            sim_time_us=sim_time_us,
            seed=seed,
            arrival_rate_pps=rate,
        )
        result = SlotSimulator(scenario, record_delays=True).run()
        seconds = result.duration_us / 1e6
        arrivals = sum(s.arrivals for s in result.stations)
        losses = sum(s.queue_losses for s in result.stations)
        delays = (
            result.delays_us
            if result.delays_us is not None and result.delays_us.size
            else np.array([np.nan])
        )
        points.append(
            LoadPoint(
                arrival_rate_pps=rate,
                num_stations=num_stations,
                offered_fps=arrivals / seconds,
                delivered_fps=result.successes / seconds,
                collision_probability=result.collision_probability,
                mean_delay_us=float(np.nanmean(delays)),
                p95_delay_us=float(np.nanpercentile(delays, 95)),
                queue_loss_fraction=losses / arrivals if arrivals else 0.0,
            )
        )
    return points
