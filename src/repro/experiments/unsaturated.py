"""Unsaturated operation: offered load vs. delivered throughput/delay.

The paper analyzes saturated stations; this extension sweeps Poisson
offered load through the slot simulator's arrival support to locate
the saturation knee and the delay blow-up around it.

Each ``(load fraction, repetition)`` point draws from its own
independently derived substream tree
(:func:`repro.runner.seeding.streams_for` with ``(seed, fraction
index, repetition)``), and the reported metrics aggregate over the
repetitions — the historical implementation reused the identical seed
for every load fraction and ran a single repetition, which correlated
the points of the curve and made the estimates needlessly noisy.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..core.config import CsmaConfig, ScenarioConfig, TimingConfig
from ..core.simulator import SlotSimulator
from ..runner.seeding import SeedSpec, streams_for

__all__ = ["LoadPoint", "offered_load_sweep", "saturation_rate_pps"]


@dataclasses.dataclass(frozen=True)
class LoadPoint:
    """Measurements at one per-station offered load.

    Counter-based metrics pool over all repetitions; delay statistics
    pool the recorded per-frame delays.  ``delay_samples == 0`` (no
    frame was delivered in any repetition) makes the delay statistics
    ``NaN`` and sets :attr:`flagged` — consumers must skip such rows
    rather than average the ``NaN`` in.
    """

    arrival_rate_pps: float
    num_stations: int
    #: Total offered load, frames per second.
    offered_fps: float
    #: Total delivered frames per second.
    delivered_fps: float
    collision_probability: float
    mean_delay_us: float
    p95_delay_us: float
    queue_loss_fraction: float
    #: Repetitions pooled into this point.
    repetitions: int = 1
    #: Recorded per-frame delays across all repetitions.
    delay_samples: int = 0

    @property
    def flagged(self) -> bool:
        """Whether the delay statistics are undefined (no samples)."""
        return self.delay_samples == 0


def saturation_rate_pps(
    num_stations: int, timing: Optional[TimingConfig] = None
) -> float:
    """Approximate per-station saturation frame rate.

    At saturation the network delivers ~S·1e6/Ts frames per second in
    total (each success occupies Ts); dividing by N gives the
    per-station knee location used to scale sweep grids.
    """
    from ..analysis.model import Model1901

    timing = timing if timing is not None else TimingConfig()
    model = Model1901(timing=timing, method="recursive")
    prediction = model.solve(num_stations)
    total_fps = (
        prediction.p_success
        / prediction.expected_event_duration_us
        * 1e6
    )
    return total_fps / num_stations


def offered_load_sweep(
    num_stations: int = 3,
    load_fractions: Sequence[float] = (0.2, 0.5, 0.8, 1.0, 1.5),
    sim_time_us: float = 3e7,
    seed: int = 1,
    config: Optional[CsmaConfig] = None,
    timing: Optional[TimingConfig] = None,
    repetitions: int = 3,
) -> List[LoadPoint]:
    """Sweep per-station Poisson arrivals as fractions of saturation.

    Every ``(fraction, repetition)`` pair gets its own derived seed
    (fraction index as the point index), so neighbouring points of the
    curve are statistically independent, and each point's metrics pool
    ``repetitions`` independent runs.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    timing = timing if timing is not None else TimingConfig()
    knee = saturation_rate_pps(num_stations, timing)
    points = []
    for index, fraction in enumerate(load_fractions):
        rate = max(fraction * knee, 1e-3)
        scenario = ScenarioConfig.homogeneous(
            num_stations=num_stations,
            csma=config,
            timing=timing,
            sim_time_us=sim_time_us,
            seed=seed,
            arrival_rate_pps=rate,
        )
        seconds = 0.0
        arrivals = 0
        losses = 0
        successes = 0
        collisions = 0
        delay_chunks = []
        for rep in range(repetitions):
            spec = SeedSpec(
                root_seed=seed, point_index=index, repetition=rep
            )
            result = SlotSimulator(
                scenario, record_delays=True, streams=streams_for(spec)
            ).run()
            seconds += result.duration_us / 1e6
            arrivals += sum(s.arrivals for s in result.stations)
            losses += sum(s.queue_losses for s in result.stations)
            successes += result.successes
            collisions += result.collisions
            if result.delays_us is not None and result.delays_us.size:
                delay_chunks.append(result.delays_us)
        delays = (
            np.concatenate(delay_chunks) if delay_chunks else None
        )
        attempts = collisions + successes
        points.append(
            LoadPoint(
                arrival_rate_pps=rate,
                num_stations=num_stations,
                offered_fps=arrivals / seconds,
                delivered_fps=successes / seconds,
                collision_probability=(
                    collisions / attempts if attempts else 0.0
                ),
                mean_delay_us=(
                    float(delays.mean())
                    if delays is not None
                    else float("nan")
                ),
                p95_delay_us=(
                    float(np.percentile(delays, 95))
                    if delays is not None
                    else float("nan")
                ),
                queue_loss_fraction=losses / arrivals if arrivals else 0.0,
                repetitions=repetitions,
                delay_samples=int(delays.size) if delays is not None else 0,
            )
        )
    return points
