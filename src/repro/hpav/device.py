"""An emulated HomePlug AV device (station or CCo).

One device bundles:

- a :class:`~repro.mac.node.MacNode` (queues + 1901 backoff FSM) wired
  to the shared :class:`~repro.phy.channel.PowerStrip`;
- the firmware statistics engine behind VS_STATS (ampstat's counters);
- the host-side MME endpoint: :meth:`host_request` answers VS_STATS /
  VS_SNIFFER / VS_NW_INFO requests exactly as the chip would, without
  touching the powerline (host MMEs travel over the device's Ethernet
  port, §3);
- sniffer mode: when enabled, every SoF delimiter on the wire is
  forwarded to the host as a VS_SNIFFER indication (faifa's capture
  surface, §3.3);
- the station-level management behaviours: association handshake with
  the CCo, beacon reception, periodic channel-estimation indications.

The device's data path: :meth:`send_ethernet` queues host traffic;
frames delivered over the wire are reassembled and counted (app-layer
throughput at the destination).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.parameters import PriorityClass
from ..engine.environment import Environment
from ..engine.randomness import RandomStreams
from ..mac.node import BROADCAST_TEI, MacNode
from ..mac.queueing import AggregationPolicy, QueuedMme
from ..phy.channel import PowerStrip, SofObservation
from ..phy.framing import Burst, Mpdu, SackDelimiter
from ..traffic.packets import EthernetFrame
from .firmware import FirmwareStats
from .mme import MMTYPE_CNF, MMTYPE_IND, MmeFrame
from .mme_types import (
    KEY_TYPE_NEK,
    KEY_TYPE_NMK,
    AssocConfirm,
    AssocRequest,
    BeaconPayload,
    ChannelEstIndication,
    GetKeyConfirm,
    GetKeyRequest,
    LinkDirection,
    MmeType,
    NetworkInfoConfirm,
    NetworkInfoRequest,
    SetKeyConfirm,
    SetKeyRequest,
    SnifferConfirm,
    SnifferIndication,
    SnifferRequest,
    StatsConfirm,
    StatsControl,
    StatsRequest,
)
from .security import KeyStore

__all__ = ["HomePlugAVDevice"]


class HomePlugAVDevice:
    """One PLC adapter on the power strip.

    Parameters
    ----------
    env, strip, streams:
        Engine, medium and random substreams.
    mac_addr:
        The adapter's MAC address.
    is_cco:
        Whether this device is the central coordinator (assigns TEIs,
        beacons).  The CCo self-associates with TEI 1.
    configs / aggregation:
        Optional per-priority CSMA override and bursting policy for the
        underlying MAC node.
    """

    def __init__(
        self,
        env: Environment,
        strip: PowerStrip,
        streams: RandomStreams,
        mac_addr: str,
        is_cco: bool = False,
        configs: Optional[dict] = None,
        aggregation: Optional[AggregationPolicy] = None,
        keys: Optional[KeyStore] = None,
        require_authentication: bool = False,
    ) -> None:
        self.env = env
        self.strip = strip
        self.mac_addr = mac_addr.lower()
        self.is_cco = is_cco
        self.firmware = FirmwareStats()
        self.node = MacNode(
            name=self.mac_addr,
            streams=streams,
            configs=configs,
            aggregation=aggregation,
        )
        self.node.dest_tei_of = self._dest_tei_of
        self.node.sack_handler = self._on_sack
        strip.attach(self._on_mpdu)

        #: MAC-address → TEI table (learned from overheard CC_ASSOC.CNF
        #: broadcasts and beacons).
        self.address_table: Dict[str, int] = {}
        if is_cco:
            self.node.tei = 1
            self.address_table[self.mac_addr] = 1
            self._next_tei = 2

        #: Security plane: NMK (membership) and NEK (encryption) keys.
        self.keys = keys if keys is not None else KeyStore()
        #: Whether data transmission is gated on holding the NEK.
        self.require_authentication = require_authentication
        if is_cco:
            # The CCo generates the network's NEK from its own NMK.
            self.keys.nek = KeyStore.generate_nek(
                self.keys.nmk + self.mac_addr.encode()
            )
        #: Host-side sink for indications (sniffer INDs etc.).
        self.host_indication_handler: Callable[[bytes], None] = lambda b: None
        self._sniffing = False

        # Data-plane receive counters (the destination D's measurements).
        self.received_frames = 0
        self.received_bytes = 0
        self.received_frame_log: List[EthernetFrame] = []
        self.log_received_frames = False
        #: Frames dropped because the destination TEI is unknown yet.
        self.unresolved_drops = 0
        # Management counters.
        self.beacons_seen = 0
        self.channel_est_seen = 0
        self.mmes_sent = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Take the adapter off the wire (churn / crash-leave).

        Detaches the receive handler and any active sniffer tap from
        the strip.  Idempotent; MAC-side detachment is the AVLN's job
        (:meth:`repro.hpav.network.Avln.remove_device`).
        """
        self.strip.detach(self._on_mpdu)
        if self._sniffing:
            self.strip.remove_sniffer(self._on_sof)
            self._sniffing = False

    # ------------------------------------------------------------------ #
    # Identity / addressing
    # ------------------------------------------------------------------ #
    @property
    def tei(self) -> int:
        return self.node.tei

    @property
    def associated(self) -> bool:
        return self.node.tei != 0

    @property
    def authenticated(self) -> bool:
        """Whether the device holds the network's NEK."""
        return self.keys.authenticated

    def _dest_tei_of(self, mac: str) -> int:
        tei = self.address_table.get(mac.lower())
        if tei is None:
            raise KeyError(f"{self.mac_addr}: unknown destination {mac}")
        return tei

    def _mac_of_tei(self, tei: int) -> Optional[str]:
        for mac, known in self.address_table.items():
            if known == tei:
                return mac
        return None

    # ------------------------------------------------------------------ #
    # Host data plane
    # ------------------------------------------------------------------ #
    def send_ethernet(
        self,
        frame: EthernetFrame,
        priority: PriorityClass = PriorityClass.CA1,
    ) -> bool:
        """Host Ethernet ingress (the UDP traffic of the tests).

        Frames towards destinations that have not associated yet are
        dropped (and counted), as a real bridge would flush unknown
        unicast.
        """
        if frame.dst_mac.lower() not in self.address_table:
            self.unresolved_drops += 1
            return False
        if self.require_authentication and not self.authenticated:
            self.unresolved_drops += 1
            return False
        return self.node.submit_data(frame, priority)

    # ------------------------------------------------------------------ #
    # Host MME endpoint (ampstat / faifa surface)
    # ------------------------------------------------------------------ #
    def host_request(self, request_bytes: bytes) -> bytes:
        """Answer a host MME request, returning the confirm frame."""
        request = MmeFrame.decode(request_bytes)
        if not request.is_request:
            raise ValueError("host endpoint only accepts REQ MMEs")
        base = request.base_mmtype
        if base == MmeType.VS_STATS:
            reply = self._handle_stats(StatsRequest.decode(request.payload))
        elif base == MmeType.VS_SNIFFER:
            reply = self._handle_sniffer(SnifferRequest.decode(request.payload))
        elif base == MmeType.VS_NW_INFO:
            NetworkInfoRequest.decode(request.payload)
            reply = self._handle_nw_info()
        elif base == MmeType.CM_SET_KEY:
            reply = self._handle_set_key(
                SetKeyRequest.decode(request.payload)
            )
        else:
            raise ValueError(f"unsupported host MMTYPE {request.mmtype:#06x}")
        return MmeFrame(
            dst_mac=request.src_mac,
            src_mac=self.mac_addr,
            mmtype=request.reply_mmtype(),
            payload=reply,
        ).encode()

    def _handle_stats(self, request: StatsRequest) -> bytes:
        direction = (
            FirmwareStats.TX
            if request.direction == LinkDirection.TX
            else FirmwareStats.RX
        )
        if request.control == StatsControl.RESET:
            self.firmware.reset_link(
                direction, request.peer_mac, request.priority
            )
            return StatsConfirm(status=0, acked=0, collided=0).encode()
        acked, collided = self.firmware.snapshot(
            direction, request.peer_mac, request.priority
        )
        return StatsConfirm(status=0, acked=acked, collided=collided).encode()

    def _handle_sniffer(self, request: SnifferRequest) -> bytes:
        if request.enable and not self._sniffing:
            self.strip.add_sniffer(self._on_sof)
            self._sniffing = True
        elif not request.enable and self._sniffing:
            self.strip.remove_sniffer(self._on_sof)
            self._sniffing = False
        return SnifferConfirm(status=0, enabled=self._sniffing).encode()

    def _handle_set_key(self, request: SetKeyRequest) -> bytes:
        if request.key_type == KEY_TYPE_NMK:
            self.keys.set_nmk(request.key)
            if self.is_cco:
                self.keys.nek = KeyStore.generate_nek(
                    self.keys.nmk + self.mac_addr.encode()
                )
            return SetKeyConfirm(result=0).encode()
        if request.key_type == KEY_TYPE_NEK:
            # Hosts cannot set the NEK directly; the CCo owns it.
            return SetKeyConfirm(result=1).encode()
        return SetKeyConfirm(result=1).encode()

    def _handle_nw_info(self) -> bytes:
        entries = tuple(
            (mac, tei, 118, 118)  # calibrated PHY rate, symmetric (Mbps*10)
            for mac, tei in sorted(self.address_table.items())
            if mac != self.mac_addr
        )
        return NetworkInfoConfirm(entries=entries).encode()

    # ------------------------------------------------------------------ #
    # Sniffer capture path
    # ------------------------------------------------------------------ #
    def _on_sof(self, observation: SofObservation) -> None:
        indication = SnifferIndication(
            timestamp_us=int(observation.time_us),
            source_tei=observation.sof.source_tei,
            dest_tei=observation.sof.dest_tei,
            link_id=observation.sof.link_id,
            mpdu_count=observation.sof.mpdu_count,
            frame_length_bytes=observation.sof.frame_length_bytes,
            num_blocks=observation.sof.num_blocks,
            collided=observation.collided,
        )
        frame = MmeFrame(
            dst_mac="ff:ff:ff:ff:ff:ff",
            src_mac=self.mac_addr,
            mmtype=MmeType.VS_SNIFFER | MMTYPE_IND,
            payload=indication.encode(),
        )
        self.host_indication_handler(frame.encode())

    # ------------------------------------------------------------------ #
    # Wire receive path
    # ------------------------------------------------------------------ #
    def _on_mpdu(self, mpdu: Mpdu, time_us: float) -> None:
        if mpdu.dest_tei not in (self.tei, BROADCAST_TEI):
            return
        if mpdu.source_tei == self.tei:
            return  # own broadcast echo
        if mpdu.is_management:
            self._on_management(mpdu)
            return
        # Data MPDU addressed to us: count reassembled frames.
        if mpdu.dest_tei != self.tei:
            return  # data is never broadcast in these tests
        frame_ids = []
        frame_bytes: Dict[int, int] = {}
        for pb in mpdu.blocks:
            if pb.frame_id not in frame_bytes:
                frame_ids.append(pb.frame_id)
                frame_bytes[pb.frame_id] = 0
            frame_bytes[pb.frame_id] += pb.fill
        self.received_frames += len(frame_ids)
        self.received_bytes += sum(frame_bytes.values())
        peer = self._mac_of_tei(mpdu.source_tei)
        if peer is not None:
            self.firmware.record_rx(peer, int(mpdu.priority))

    def _on_management(self, mpdu: Mpdu) -> None:
        if not mpdu.payload:
            return
        mme = MmeFrame.decode(mpdu.payload)
        # Source learning, as a bridge would: any overheard MME teaches
        # the sender's MAC → TEI mapping (unassociated senders use TEI
        # 0 and are skipped).
        if mpdu.source_tei != 0:
            self.address_table[mme.src_mac] = mpdu.source_tei
        base = mme.base_mmtype
        if base == MmeType.CC_ASSOC and mme.is_request and self.is_cco:
            self._assign_tei(AssocRequest.decode(mme.payload))
        elif base == MmeType.CC_ASSOC and mme.is_confirm:
            self._learn_association(AssocConfirm.decode(mme.payload))
        elif base == MmeType.CC_BEACON:
            beacon = BeaconPayload.decode(mme.payload)
            self.beacons_seen += 1
            self.address_table[mme.src_mac] = beacon.cco_tei
        elif base == MmeType.VS_CHANNEL_EST:
            self.channel_est_seen += 1
        elif base == MmeType.CM_GET_KEY and mme.is_request and self.is_cco:
            self._grant_key(mme, GetKeyRequest.decode(mme.payload))
        elif base == MmeType.CM_GET_KEY and mme.is_confirm:
            confirm = GetKeyConfirm.decode(mme.payload)
            if (
                mme.dst_mac == self.mac_addr
                and confirm.result == 0
                and confirm.key_type == KEY_TYPE_NEK
            ):
                self.keys.nek = confirm.key

    def _assign_tei(self, request: AssocRequest) -> None:
        mac = request.station_mac.lower()
        tei = self.address_table.get(mac)
        if tei is None:
            tei = self._next_tei
            self._next_tei += 1
            self.address_table[mac] = tei
        confirm = AssocConfirm(result=0, station_mac=mac, tei=tei)
        self.send_mme_over_wire(
            MmeType.CC_ASSOC | MMTYPE_CNF,
            confirm.encode(),
            dst_mac="ff:ff:ff:ff:ff:ff",
            dest_tei=BROADCAST_TEI,
            priority=PriorityClass.CA3,
        )

    def _grant_key(self, mme: MmeFrame, request: GetKeyRequest) -> None:
        """CCo side of CM_GET_KEY: NEK for a valid NMK proof."""
        valid = request.nmk_proof == self.keys.nmk_digest()
        confirm = GetKeyConfirm(
            result=0 if valid else 1,
            key_type=KEY_TYPE_NEK,
            key=self.keys.nek if valid and self.keys.nek else b"\x00" * 16,
        )
        requester_tei = self.address_table.get(mme.src_mac, 0xFF)
        self.send_mme_over_wire(
            MmeType.CM_GET_KEY | MMTYPE_CNF,
            confirm.encode(),
            dst_mac=mme.src_mac,
            dest_tei=requester_tei,
            priority=PriorityClass.CA3,
        )

    def request_network_key(self, cco_tei: int = 1) -> None:
        """Station side of CM_GET_KEY: prove NMK, ask for the NEK."""
        request = GetKeyRequest(
            key_type=KEY_TYPE_NEK, nmk_proof=self.keys.nmk_digest()
        )
        self.send_mme_over_wire(
            MmeType.CM_GET_KEY,
            request.encode(),
            dst_mac="ff:ff:ff:ff:ff:ff",
            dest_tei=cco_tei,
            priority=PriorityClass.CA3,
        )

    def _learn_association(self, confirm: AssocConfirm) -> None:
        mac = confirm.station_mac.lower()
        self.address_table[mac] = confirm.tei
        if mac == self.mac_addr and confirm.result == 0:
            self.node.tei = confirm.tei

    # ------------------------------------------------------------------ #
    # Over-the-wire MME transmission
    # ------------------------------------------------------------------ #
    def send_mme_over_wire(
        self,
        mmtype: int,
        payload: bytes,
        dst_mac: str,
        dest_tei: int,
        priority: PriorityClass = PriorityClass.CA2,
    ) -> None:
        """Queue a management message for CSMA transmission."""
        frame = MmeFrame(
            dst_mac=dst_mac,
            src_mac=self.mac_addr,
            mmtype=mmtype,
            payload=payload,
        )
        self.node.submit_mme(
            QueuedMme(
                payload=frame.encode(),
                dest_tei=dest_tei,
                priority=priority,
            )
        )
        self.mmes_sent += 1

    def request_association(self, cco_tei: int = 1) -> None:
        """Send CC_ASSOC.REQ to the CCo (station startup)."""
        request = AssocRequest(request_type=0, station_mac=self.mac_addr)
        self.send_mme_over_wire(
            MmeType.CC_ASSOC,
            request.encode(),
            dst_mac="ff:ff:ff:ff:ff:ff",
            dest_tei=cco_tei,
            priority=PriorityClass.CA3,
        )

    def send_channel_estimation(self, peer_mac: str) -> None:
        """Emit a channel-estimation indication towards a peer (CA2)."""
        peer = peer_mac.lower()
        tei = self.address_table.get(peer)
        if tei is None:
            return
        indication = ChannelEstIndication(
            peer_mac=peer, tone_map_index=0, modulation_bits=8
        )
        self.send_mme_over_wire(
            MmeType.VS_CHANNEL_EST | MMTYPE_IND,
            indication.encode(),
            dst_mac=peer,
            dest_tei=tei,
            priority=PriorityClass.CA2,
        )

    # ------------------------------------------------------------------ #
    # SACK feedback → firmware counters
    # ------------------------------------------------------------------ #
    def _on_sack(self, sack: SackDelimiter, burst: Burst, outcome: str) -> None:
        mpdu = next(
            (m for m in burst.mpdus if m.mpdu_id == sack.mpdu_id), None
        )
        if mpdu is None:
            return
        peer = self._mac_of_tei(mpdu.dest_tei) or "ff:ff:ff:ff:ff:ff"
        priority = int(mpdu.priority)
        if outcome == "collision":
            self.firmware.record_tx_collided(peer, priority)
        else:
            self.firmware.record_tx_acked(peer, priority)
            if not sack.ok:
                self.firmware.record_phy_error()
