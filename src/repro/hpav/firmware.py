"""Emulated INT6300-style firmware: the statistics engine.

The chip keeps, per (peer, priority, direction) link, the counters that
``ampstat`` exposes over VS_STATS (§3.2):

- ``acked`` — MPDUs for which a SACK arrived.  Per the 1901 selective
  acknowledgment rules this *includes* collided MPDUs: the destination
  decodes the robust delimiter and acknowledges with all PBs errored,
  so the total acknowledgment count grows with N (the §3.2
  verification).
- ``collided`` — MPDUs whose SACK carried the all-errored collision
  indication.

Resetting is per-link and per-direction, matching the tool's options.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

__all__ = ["LinkStats", "FirmwareStats"]


@dataclasses.dataclass
class LinkStats:
    """Counters of one (peer, priority, direction) link."""

    acked: int = 0
    collided: int = 0

    def reset(self) -> None:
        self.acked = 0
        self.collided = 0

    @property
    def successes(self) -> int:
        """Acknowledged MPDUs that did not collide."""
        return self.acked - self.collided


class FirmwareStats:
    """The per-device statistics store behind VS_STATS."""

    TX = 0
    RX = 1

    def __init__(self) -> None:
        self._links: Dict[Tuple[int, str, int], LinkStats] = {}
        #: PHY-error counter (per-PB errors outside collisions).
        self.phy_errors = 0

    def _key(self, direction: int, peer_mac: str, priority: int) -> Tuple:
        if direction not in (self.TX, self.RX):
            raise ValueError(f"bad direction {direction}")
        if not 0 <= priority <= 3:
            raise ValueError(f"bad priority {priority}")
        return (direction, peer_mac.lower(), priority)

    def link(self, direction: int, peer_mac: str, priority: int) -> LinkStats:
        """The (created-on-demand) stats of one link."""
        key = self._key(direction, peer_mac, priority)
        if key not in self._links:
            self._links[key] = LinkStats()
        return self._links[key]

    # -- recording (called from the MAC's SACK path) -------------------------
    def record_tx_acked(self, peer_mac: str, priority: int) -> None:
        self.link(self.TX, peer_mac, priority).acked += 1

    def record_tx_collided(self, peer_mac: str, priority: int) -> None:
        """A collision: counts as *both* acked and collided (§3.2)."""
        stats = self.link(self.TX, peer_mac, priority)
        stats.acked += 1
        stats.collided += 1

    def record_rx(self, peer_mac: str, priority: int) -> None:
        self.link(self.RX, peer_mac, priority).acked += 1

    def record_phy_error(self) -> None:
        self.phy_errors += 1

    # -- the VS_STATS surface ---------------------------------------------------
    def snapshot(
        self, direction: int, peer_mac: str, priority: int
    ) -> Tuple[int, int]:
        """(acked, collided) for a link, as returned by ampstat."""
        stats = self.link(direction, peer_mac, priority)
        return stats.acked, stats.collided

    def reset_link(self, direction: int, peer_mac: str, priority: int) -> None:
        """Reset one link's counters (ampstat's reset option)."""
        self.link(direction, peer_mac, priority).reset()

    def reset_all(self) -> None:
        for stats in self._links.values():
            stats.reset()
        self.phy_errors = 0

    def totals(self, direction: int) -> Tuple[int, int]:
        """(acked, collided) summed over all links of a direction."""
        acked = collided = 0
        for (d, _mac, _prio), stats in self._links.items():
            if d == direction:
                acked += stats.acked
                collided += stats.collided
        return acked, collided
