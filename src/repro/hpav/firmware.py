"""Emulated INT6300-style firmware: the statistics engine.

The chip keeps, per (peer, priority, direction) link, the counters that
``ampstat`` exposes over VS_STATS (§3.2):

- ``acked`` — MPDUs for which a SACK arrived.  Per the 1901 selective
  acknowledgment rules this *includes* collided MPDUs: the destination
  decodes the robust delimiter and acknowledges with all PBs errored,
  so the total acknowledgment count grows with N (the §3.2
  verification).
- ``collided`` — MPDUs whose SACK carried the all-errored collision
  indication.

Resetting is per-link and per-direction, matching the tool's options.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

__all__ = ["LinkStats", "FirmwareStats"]


@dataclasses.dataclass
class LinkStats:
    """Counters of one (peer, priority, direction) link."""

    acked: int = 0
    collided: int = 0

    def reset(self) -> None:
        self.acked = 0
        self.collided = 0

    @property
    def successes(self) -> int:
        """Acknowledged MPDUs that did not collide."""
        return self.acked - self.collided


class FirmwareStats:
    """The per-device statistics store behind VS_STATS."""

    TX = 0
    RX = 1

    def __init__(self) -> None:
        self._links: Dict[Tuple[int, str, int], LinkStats] = {}
        #: PHY-error counter (per-PB errors outside collisions).
        self.phy_errors = 0

    def _key(self, direction: int, peer_mac: str, priority: int) -> Tuple:
        if direction not in (self.TX, self.RX):
            raise ValueError(f"bad direction {direction}")
        if not 0 <= priority <= 3:
            raise ValueError(f"bad priority {priority}")
        return (direction, peer_mac.lower(), priority)

    def link(self, direction: int, peer_mac: str, priority: int) -> LinkStats:
        """The (created-on-demand) stats of one link."""
        key = self._key(direction, peer_mac, priority)
        if key not in self._links:
            self._links[key] = LinkStats()
        return self._links[key]

    # -- recording (called from the MAC's SACK path) -------------------------
    def record_tx_acked(self, peer_mac: str, priority: int) -> None:
        self.link(self.TX, peer_mac, priority).acked += 1

    def record_tx_collided(self, peer_mac: str, priority: int) -> None:
        """A collision: counts as *both* acked and collided (§3.2)."""
        stats = self.link(self.TX, peer_mac, priority)
        stats.acked += 1
        stats.collided += 1

    def record_rx(self, peer_mac: str, priority: int) -> None:
        self.link(self.RX, peer_mac, priority).acked += 1

    def record_phy_error(self) -> None:
        self.phy_errors += 1

    # -- the VS_STATS surface ---------------------------------------------------
    def snapshot(
        self, direction: int, peer_mac: str, priority: int
    ) -> Tuple[int, int]:
        """(acked, collided) for a link, as returned by ampstat."""
        stats = self.link(direction, peer_mac, priority)
        return stats.acked, stats.collided

    def reset_link(self, direction: int, peer_mac: str, priority: int) -> None:
        """Reset one link's counters (ampstat's reset option)."""
        self.link(direction, peer_mac, priority).reset()

    def reset_all(self) -> None:
        for stats in self._links.values():
            stats.reset()
        self.phy_errors = 0

    # -- fault injection (repro.chaos) ----------------------------------------
    def apply_glitch(self, kind: str, rng) -> Dict[str, int]:
        """Corrupt the counters the way buggy firmware revisions do.

        Used by the chaos layer's firmware-glitch faults; returns a
        small summary of what was touched so injectors can report it.

        ``zero``
            Spontaneous counter reset (all links and the PHY-error
            counter) — the classic lost-statistics reboot.
        ``inflate_acked``
            Adds a random positive offset to every link's ``acked``
            (double-counting bug): rate estimators that trust raw
            counters drift low.
        ``corrupt_collided``
            Adds a random positive offset to every link's
            ``collided``, which can push ``collided`` past ``acked``
            (making :attr:`LinkStats.successes` negative) — consumers
            must not assume the firmware keeps them consistent.
        """
        if kind == "zero":
            touched = len(self._links)
            self.reset_all()
            return {"links_touched": touched, "delta": 0}
        if kind == "inflate_acked":
            delta = 0
            for stats in self._links.values():
                amount = int(rng.integers(1, 64))
                stats.acked += amount
                delta += amount
            return {"links_touched": len(self._links), "delta": delta}
        if kind == "corrupt_collided":
            delta = 0
            for stats in self._links.values():
                amount = int(rng.integers(1, 64))
                stats.collided += amount
                delta += amount
            return {"links_touched": len(self._links), "delta": delta}
        raise ValueError(f"unknown firmware glitch kind {kind!r}")

    def totals(self, direction: int) -> Tuple[int, int]:
        """(acked, collided) summed over all links of a direction."""
        acked = collided = 0
        for (d, _mac, _prio), stats in self._links.items():
            if d == direction:
                acked += stats.acked
                collided += stats.collided
        return acked, collided
