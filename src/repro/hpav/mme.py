"""HomePlug AV management message (MME) wire format.

MMEs are Ethernet frames with ethertype 0x88E1 (§3): a fixed header —
MMV (management message version), MMTYPE (little-endian, with the two
low bits encoding REQ/CNF/IND/RSP), FMI (fragmentation management
info) — followed by the entry data.  Vendor-specific MMEs (the ones the
paper's tools rely on, e.g. 0xA030 for statistics and 0xA034 for the
sniffer) carry the vendor OUI ``00:B0:52`` as the first three entry
bytes.

This module implements encoding/decoding of the raw frames; the typed
request/confirm payloads live in :mod:`repro.hpav.mme_types`.
"""

from __future__ import annotations

import dataclasses
import struct

__all__ = [
    "ETHERTYPE_HOMEPLUG_AV",
    "MMV_AV_1_1",
    "VENDOR_OUI",
    "MMTYPE_REQ",
    "MMTYPE_CNF",
    "MMTYPE_IND",
    "MMTYPE_RSP",
    "MmeDecodeError",
    "MmeFrame",
    "pack_mac",
    "unpack_mac",
    "unpack_struct",
]

ETHERTYPE_HOMEPLUG_AV = 0x88E1

#: HomePlug AV 1.1 management message version.
MMV_AV_1_1 = 0x01

#: Vendor OUI used by the INT6300-family vendor MMEs (00:B0:52).
VENDOR_OUI = bytes((0x00, 0xB0, 0x52))

#: Low-two-bit MMTYPE variants.
MMTYPE_REQ = 0b00
MMTYPE_CNF = 0b01
MMTYPE_IND = 0b10
MMTYPE_RSP = 0b11

_HEADER = struct.Struct("<6s6sHBHH")  # ODA OSA ethertype MMV MMTYPE FMI
# Note: the ethertype is big-endian on the wire; we byte-swap it
# explicitly below so a single little-endian struct can be used for the
# MMTYPE (which *is* little-endian per the standard).


class MmeDecodeError(ValueError):
    """A malformed or truncated MME frame/payload.

    Subclasses ``ValueError`` so existing handlers keep working, but
    carries *where* decoding failed: the ``field`` being parsed, the
    byte ``offset`` into the buffer at which it starts, and how many
    bytes were ``needed`` vs ``available`` (``None`` when the failure
    is semantic — wrong ethertype, wrong OUI — rather than truncation).
    """

    def __init__(
        self,
        message: str,
        *,
        field: str,
        offset: int = 0,
        needed: int = None,
        available: int = None,
    ) -> None:
        detail = f"{message} (field {field!r} at offset {offset}"
        if needed is not None:
            detail += f": need {needed} byte(s), have {available}"
        detail += ")"
        super().__init__(detail)
        self.field = field
        self.offset = offset
        self.needed = needed
        self.available = available


def unpack_struct(
    layout: struct.Struct, payload: bytes, field: str, offset: int = 0
) -> tuple:
    """``layout.unpack_from`` with truncation mapped to MmeDecodeError.

    The shared guard of every typed payload decoder in
    :mod:`repro.hpav.mme_types`: raw ``struct.error`` never escapes to
    callers, who instead get the failing field name and offset.
    """
    if len(payload) < offset + layout.size:
        raise MmeDecodeError(
            "truncated MME payload",
            field=field,
            offset=offset,
            needed=layout.size,
            available=max(len(payload) - offset, 0),
        )
    try:
        return layout.unpack_from(payload, offset)
    except struct.error as exc:  # pragma: no cover - length checked above
        raise MmeDecodeError(
            f"malformed MME payload: {exc}", field=field, offset=offset
        ) from None


def pack_mac(mac: str) -> bytes:
    """``'02:00:00:00:00:01'`` → 6 raw bytes."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"bad MAC address {mac!r}")
    return bytes(int(part, 16) for part in parts)


def unpack_mac(raw: bytes) -> str:
    """6 raw bytes → ``'02:00:00:00:00:01'``."""
    if len(raw) != 6:
        raise ValueError("MAC address must be 6 bytes")
    return ":".join(f"{byte:02x}" for byte in raw)


@dataclasses.dataclass(frozen=True)
class MmeFrame:
    """A decoded MME: addressing, header fields and entry payload."""

    dst_mac: str
    src_mac: str
    mmtype: int
    payload: bytes
    mmv: int = MMV_AV_1_1
    fmi: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.mmtype <= 0xFFFF:
            raise ValueError(f"bad MMTYPE {self.mmtype:#x}")

    # -- MMTYPE variant helpers ------------------------------------------------
    @property
    def base_mmtype(self) -> int:
        """MMTYPE with the REQ/CNF/IND/RSP bits cleared."""
        return self.mmtype & ~0b11

    @property
    def variant(self) -> int:
        """One of MMTYPE_REQ/CNF/IND/RSP."""
        return self.mmtype & 0b11

    @property
    def is_request(self) -> bool:
        return self.variant == MMTYPE_REQ

    @property
    def is_confirm(self) -> bool:
        return self.variant == MMTYPE_CNF

    @property
    def is_indication(self) -> bool:
        return self.variant == MMTYPE_IND

    @property
    def is_vendor_specific(self) -> bool:
        """Vendor MMEs occupy the 0xA000–0xBFFF MMTYPE range."""
        return 0xA000 <= self.base_mmtype <= 0xBFFF

    def reply_mmtype(self) -> int:
        """The CNF MMTYPE answering this REQ."""
        if not self.is_request:
            raise ValueError("only requests have a confirm type")
        return self.base_mmtype | MMTYPE_CNF

    # -- wire codec ---------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to the full Ethernet frame bytes."""
        header = _HEADER.pack(
            pack_mac(self.dst_mac),
            pack_mac(self.src_mac),
            # Byte-swap: ethertype is big-endian on the wire.
            ((ETHERTYPE_HOMEPLUG_AV & 0xFF) << 8)
            | (ETHERTYPE_HOMEPLUG_AV >> 8),
            self.mmv,
            self.mmtype,
            self.fmi,
        )
        return header + self.payload

    @classmethod
    def decode(cls, frame: bytes) -> "MmeFrame":
        """Parse an Ethernet frame into an :class:`MmeFrame`.

        Raises :class:`MmeDecodeError` (a ``ValueError`` subclass) on
        truncated frames or a wrong ethertype; the exception carries
        the offending field name and byte offset.
        """
        dst, src, swapped_ethertype, mmv, mmtype, fmi = unpack_struct(
            _HEADER, frame, "header"
        )
        ethertype = ((swapped_ethertype & 0xFF) << 8) | (
            swapped_ethertype >> 8
        )
        if ethertype != ETHERTYPE_HOMEPLUG_AV:
            raise MmeDecodeError(
                f"not a HomePlug AV frame (ethertype {ethertype:#06x})",
                field="ethertype",
                offset=12,
            )
        return cls(
            dst_mac=unpack_mac(dst),
            src_mac=unpack_mac(src),
            mmtype=mmtype,
            payload=frame[_HEADER.size :],
            mmv=mmv,
            fmi=fmi,
        )
