"""Typed payloads for the MMEs the emulated firmware understands.

Vendor-specific messages (OUI 00:B0:52), mirroring the surface the
paper's tools use (§3):

- ``VS_STATS`` (0xA030) — frame statistics, the ``ampstat`` MME: reset
  or retrieve the acknowledged/collided counters of a link.  The
  confirm frame places the acknowledged count at bytes 25–32 and the
  collided count at bytes 33–40 of the Ethernet frame (1-indexed),
  exactly where §3.2 reads them.
- ``VS_SNIFFER`` (0xA034) — enable/disable sniffer mode, as used by
  ``faifa``.
- ``VS_SNIFFER_IND`` (0xA036) — one indication per captured SoF
  delimiter, delivered to the host.
- ``VS_NW_INFO`` (0xA038) — PHY rates per peer (both tools expose
  this, §3).
- ``VS_CHANNEL_EST`` (0xA010) — stand-in for the vendor
  channel-estimation exchange; emitted periodically between stations
  to model the background MME traffic whose overhead §3.3 measures.

Station-level (non-vendor) messages:

- ``CC_ASSOC`` (0x0008) — TEI assignment handshake with the CCo;
- ``CC_BEACON`` (0x0004) — the CCo's periodic beacon (modelled as a
  management MPDU contending at CA3; the real beacon region is a
  TDMA slot, a simplification documented in DESIGN.md).
"""

from __future__ import annotations

import dataclasses
import struct

from .mme import MmeDecodeError, VENDOR_OUI, pack_mac, unpack_mac, unpack_struct


def _check_oui(oui: bytes, mme: str) -> None:
    """Shared wrong-OUI rejection for the vendor-specific decoders."""
    if oui != VENDOR_OUI:
        raise MmeDecodeError(f"{mme} with wrong OUI", field="oui", offset=0)

__all__ = [
    "GetKeyConfirm",
    "GetKeyRequest",
    "KEY_TYPE_NEK",
    "KEY_TYPE_NMK",
    "MmeType",
    "SetKeyConfirm",
    "SetKeyRequest",
    "StatsControl",
    "LinkDirection",
    "StatsRequest",
    "StatsConfirm",
    "SnifferRequest",
    "SnifferConfirm",
    "SnifferIndication",
    "AssocRequest",
    "AssocConfirm",
    "BeaconPayload",
    "ChannelEstIndication",
    "NetworkInfoRequest",
    "NetworkInfoConfirm",
]


class MmeType:
    """Base MMTYPEs (REQ variant; CNF = +1, IND = +2)."""

    CC_BEACON = 0x0004
    CC_ASSOC = 0x0008
    CM_SET_KEY = 0x6008
    CM_GET_KEY = 0x600C
    VS_CHANNEL_EST = 0xA010
    VS_STATS = 0xA030
    VS_SNIFFER = 0xA034
    VS_SNIFFER_IND = 0xA034 + 2  # indications reuse the sniffer base
    VS_NW_INFO = 0xA038


class StatsControl:
    """Control byte of a VS_STATS request."""

    GET = 0
    RESET = 1


class LinkDirection:
    """Direction byte of a VS_STATS request."""

    TX = 0
    RX = 1


# --- VS_STATS ---------------------------------------------------------------

_STATS_REQ = struct.Struct("<3sBBB6s")  # OUI ctl dir prio peer
_STATS_CNF = struct.Struct("<3sHQQ")  # OUI status acked collided


@dataclasses.dataclass(frozen=True)
class StatsRequest:
    """ampstat request: reset or get a link's TX/RX frame counters."""

    control: int
    direction: int
    priority: int
    peer_mac: str

    def __post_init__(self) -> None:
        if self.control not in (StatsControl.GET, StatsControl.RESET):
            raise ValueError(f"bad stats control {self.control}")
        if self.direction not in (LinkDirection.TX, LinkDirection.RX):
            raise ValueError(f"bad direction {self.direction}")
        if not 0 <= self.priority <= 3:
            raise ValueError(f"bad priority {self.priority}")

    def encode(self) -> bytes:
        return _STATS_REQ.pack(
            VENDOR_OUI,
            self.control,
            self.direction,
            self.priority,
            pack_mac(self.peer_mac),
        )

    @classmethod
    def decode(cls, payload: bytes) -> "StatsRequest":
        oui, control, direction, priority, peer = unpack_struct(
            _STATS_REQ, payload, "stats_request"
        )
        _check_oui(oui, "VS_STATS request")
        return cls(
            control=control,
            direction=direction,
            priority=priority,
            peer_mac=unpack_mac(peer),
        )


@dataclasses.dataclass(frozen=True)
class StatsConfirm:
    """ampstat confirm: the counters §3.2 reads at bytes 25–40."""

    status: int
    acked: int
    collided: int

    def encode(self) -> bytes:
        return _STATS_CNF.pack(VENDOR_OUI, self.status, self.acked, self.collided)

    @classmethod
    def decode(cls, payload: bytes) -> "StatsConfirm":
        oui, status, acked, collided = unpack_struct(
            _STATS_CNF, payload, "stats_confirm"
        )
        _check_oui(oui, "VS_STATS confirm")
        return cls(status=status, acked=acked, collided=collided)


# --- VS_SNIFFER ----------------------------------------------------------------

_SNIFFER_REQ = struct.Struct("<3sB")
_SNIFFER_CNF = struct.Struct("<3sBB")


@dataclasses.dataclass(frozen=True)
class SnifferRequest:
    """faifa's sniffer-mode control (§3.3): 1 = enable, 0 = disable."""

    enable: bool

    def encode(self) -> bytes:
        return _SNIFFER_REQ.pack(VENDOR_OUI, 1 if self.enable else 0)

    @classmethod
    def decode(cls, payload: bytes) -> "SnifferRequest":
        oui, flag = unpack_struct(_SNIFFER_REQ, payload, "sniffer_request")
        _check_oui(oui, "VS_SNIFFER request")
        return cls(enable=bool(flag))


@dataclasses.dataclass(frozen=True)
class SnifferConfirm:
    status: int
    enabled: bool

    def encode(self) -> bytes:
        return _SNIFFER_CNF.pack(VENDOR_OUI, self.status, 1 if self.enabled else 0)

    @classmethod
    def decode(cls, payload: bytes) -> "SnifferConfirm":
        oui, status, flag = unpack_struct(
            _SNIFFER_CNF, payload, "sniffer_confirm"
        )
        _check_oui(oui, "VS_SNIFFER confirm")
        return cls(status=status, enabled=bool(flag))


# --- VS_SNIFFER_IND ----------------------------------------------------------------

_SNIFFER_IND = struct.Struct("<3sQBBBBIBB")
# OUI systime stei dtei lid mpdu_cnt frame_len num_pbs collided


@dataclasses.dataclass(frozen=True)
class SnifferIndication:
    """One captured SoF delimiter, as delivered to the host (§3.3)."""

    timestamp_us: int
    source_tei: int
    dest_tei: int
    link_id: int
    mpdu_count: int
    frame_length_bytes: int
    num_blocks: int
    collided: bool

    def encode(self) -> bytes:
        return _SNIFFER_IND.pack(
            VENDOR_OUI,
            self.timestamp_us,
            self.source_tei,
            self.dest_tei,
            self.link_id,
            self.mpdu_count,
            self.frame_length_bytes,
            self.num_blocks,
            1 if self.collided else 0,
        )

    @classmethod
    def decode(cls, payload: bytes) -> "SnifferIndication":
        (
            oui,
            timestamp,
            stei,
            dtei,
            lid,
            mpdu_count,
            frame_length,
            num_blocks,
            collided,
        ) = unpack_struct(_SNIFFER_IND, payload, "sniffer_indication")
        _check_oui(oui, "VS_SNIFFER indication")
        return cls(
            timestamp_us=timestamp,
            source_tei=stei,
            dest_tei=dtei,
            link_id=lid,
            mpdu_count=mpdu_count,
            frame_length_bytes=frame_length,
            num_blocks=num_blocks,
            collided=bool(collided),
        )


# --- CC_ASSOC ---------------------------------------------------------------

_ASSOC_REQ = struct.Struct("<B6s")
_ASSOC_CNF = struct.Struct("<B6sBH")


@dataclasses.dataclass(frozen=True)
class AssocRequest:
    """Association request from an unassociated station to the CCo."""

    request_type: int  # 0 = new association, 1 = renewal
    station_mac: str

    def encode(self) -> bytes:
        return _ASSOC_REQ.pack(self.request_type, pack_mac(self.station_mac))

    @classmethod
    def decode(cls, payload: bytes) -> "AssocRequest":
        request_type, mac = unpack_struct(_ASSOC_REQ, payload, "assoc_request")
        return cls(request_type=request_type, station_mac=unpack_mac(mac))


@dataclasses.dataclass(frozen=True)
class AssocConfirm:
    """CCo's reply carrying the assigned TEI."""

    result: int  # 0 = success
    station_mac: str
    tei: int
    lease_minutes: int = 180

    def encode(self) -> bytes:
        return _ASSOC_CNF.pack(
            self.result, pack_mac(self.station_mac), self.tei, self.lease_minutes
        )

    @classmethod
    def decode(cls, payload: bytes) -> "AssocConfirm":
        result, mac, tei, lease = unpack_struct(
            _ASSOC_CNF, payload, "assoc_confirm"
        )
        return cls(
            result=result,
            station_mac=unpack_mac(mac),
            tei=tei,
            lease_minutes=lease,
        )


# --- CC_BEACON ---------------------------------------------------------------

_BEACON = struct.Struct("<7sBIH")


@dataclasses.dataclass(frozen=True)
class BeaconPayload:
    """The CCo's beacon: network id, CCo TEI, beacon counter, period."""

    nid: bytes  # 7-byte network id
    cco_tei: int
    sequence: int
    beacon_period_ms: int

    def __post_init__(self) -> None:
        if len(self.nid) != 7:
            raise ValueError("NID must be 7 bytes")

    def encode(self) -> bytes:
        return _BEACON.pack(
            self.nid, self.cco_tei, self.sequence, self.beacon_period_ms
        )

    @classmethod
    def decode(cls, payload: bytes) -> "BeaconPayload":
        nid, cco_tei, sequence, period = unpack_struct(
            _BEACON, payload, "beacon"
        )
        return cls(
            nid=nid, cco_tei=cco_tei, sequence=sequence, beacon_period_ms=period
        )


# --- VS_CHANNEL_EST ----------------------------------------------------------------

_CHANNEL_EST = struct.Struct("<3s6sBB")


@dataclasses.dataclass(frozen=True)
class ChannelEstIndication:
    """Periodic tone-map refresh between peers (background MME load)."""

    peer_mac: str
    tone_map_index: int
    modulation_bits: int

    def encode(self) -> bytes:
        return _CHANNEL_EST.pack(
            VENDOR_OUI,
            pack_mac(self.peer_mac),
            self.tone_map_index,
            self.modulation_bits,
        )

    @classmethod
    def decode(cls, payload: bytes) -> "ChannelEstIndication":
        oui, mac, index, bits = unpack_struct(
            _CHANNEL_EST, payload, "channel_est"
        )
        _check_oui(oui, "VS_CHANNEL_EST")
        return cls(
            peer_mac=unpack_mac(mac), tone_map_index=index, modulation_bits=bits
        )


# --- VS_NW_INFO -------------------------------------------------------------------

_NW_INFO_REQ = struct.Struct("<3s")
_NW_INFO_ENTRY = struct.Struct("<6sBHH")  # mac tei tx_mbps rx_mbps


@dataclasses.dataclass(frozen=True)
class NetworkInfoRequest:
    def encode(self) -> bytes:
        return _NW_INFO_REQ.pack(VENDOR_OUI)

    @classmethod
    def decode(cls, payload: bytes) -> "NetworkInfoRequest":
        (oui,) = unpack_struct(_NW_INFO_REQ, payload, "nw_info_request")
        _check_oui(oui, "VS_NW_INFO request")
        return cls()


@dataclasses.dataclass(frozen=True)
class NetworkInfoConfirm:
    """Per-peer PHY rates (both tools print these, §3)."""

    entries: tuple  # of (mac, tei, tx_mbps, rx_mbps)

    def encode(self) -> bytes:
        out = [VENDOR_OUI, bytes([len(self.entries)])]
        for mac, tei, tx, rx in self.entries:
            out.append(_NW_INFO_ENTRY.pack(pack_mac(mac), tei, tx, rx))
        return b"".join(out)

    @classmethod
    def decode(cls, payload: bytes) -> "NetworkInfoConfirm":
        if len(payload) < 4:
            raise MmeDecodeError(
                "truncated MME payload",
                field="entry_count",
                offset=3,
                needed=4,
                available=len(payload),
            )
        _check_oui(payload[:3], "VS_NW_INFO confirm")
        count = payload[3]
        entries = []
        offset = 4
        for index in range(count):
            mac, tei, tx, rx = unpack_struct(
                _NW_INFO_ENTRY, payload, f"entry[{index}]", offset
            )
            entries.append((unpack_mac(mac), tei, tx, rx))
            offset += _NW_INFO_ENTRY.size
        return cls(entries=tuple(entries))


# --- CM_SET_KEY / CM_GET_KEY -------------------------------------------------

_SET_KEY = struct.Struct("<B16s")
_GET_KEY_REQ = struct.Struct("<B8s")
_GET_KEY_CNF = struct.Struct("<BB16s")

#: Key-type byte values for the key-management MMEs.
KEY_TYPE_NMK = 0x01
KEY_TYPE_NEK = 0x02


@dataclasses.dataclass(frozen=True)
class SetKeyRequest:
    """CM_SET_KEY: install a key on the local device (host-side).

    The tools set the NMK over the host Ethernet port when the user
    changes the network password; it never travels the powerline in
    the clear.
    """

    key_type: int
    key: bytes

    def __post_init__(self) -> None:
        if self.key_type not in (KEY_TYPE_NMK, KEY_TYPE_NEK):
            raise ValueError(f"bad key type {self.key_type}")
        if len(self.key) != 16:
            raise ValueError("keys are 16 bytes (AES-128)")

    def encode(self) -> bytes:
        return _SET_KEY.pack(self.key_type, self.key)

    @classmethod
    def decode(cls, payload: bytes) -> "SetKeyRequest":
        key_type, key = unpack_struct(_SET_KEY, payload, "set_key_request")
        return cls(key_type=key_type, key=key)


@dataclasses.dataclass(frozen=True)
class SetKeyConfirm:
    result: int  # 0 = success

    def encode(self) -> bytes:
        return bytes([self.result])

    @classmethod
    def decode(cls, payload: bytes) -> "SetKeyConfirm":
        if not payload:
            raise MmeDecodeError(
                "truncated MME payload",
                field="result",
                offset=0,
                needed=1,
                available=0,
            )
        return cls(result=payload[0])


@dataclasses.dataclass(frozen=True)
class GetKeyRequest:
    """CM_GET_KEY: ask the CCo for the NEK, proving NMK possession.

    ``nmk_proof`` is an 8-byte digest over the requester's NMK; the
    CCo compares it with its own (stand-in for the standard's
    encrypted exchange).
    """

    key_type: int
    nmk_proof: bytes

    def __post_init__(self) -> None:
        if len(self.nmk_proof) != 8:
            raise ValueError("NMK proof is 8 bytes")

    def encode(self) -> bytes:
        return _GET_KEY_REQ.pack(self.key_type, self.nmk_proof)

    @classmethod
    def decode(cls, payload: bytes) -> "GetKeyRequest":
        key_type, proof = unpack_struct(
            _GET_KEY_REQ, payload, "get_key_request"
        )
        return cls(key_type=key_type, nmk_proof=proof)


@dataclasses.dataclass(frozen=True)
class GetKeyConfirm:
    """CCo's reply: the NEK on success, zeros on refusal."""

    result: int  # 0 = granted, 1 = wrong NMK
    key_type: int
    key: bytes

    def __post_init__(self) -> None:
        if len(self.key) != 16:
            raise ValueError("keys are 16 bytes (AES-128)")

    def encode(self) -> bytes:
        return _GET_KEY_CNF.pack(self.result, self.key_type, self.key)

    @classmethod
    def decode(cls, payload: bytes) -> "GetKeyConfirm":
        result, key_type, key = unpack_struct(
            _GET_KEY_CNF, payload, "get_key_confirm"
        )
        return cls(result=result, key_type=key_type, key=key)
