"""The AV logical network (AVLN): CCo, beacons, association, devices.

:class:`Avln` assembles the full emulated testbed layer: the power
strip, the contention coordinator, a CCo device and member stations.
It runs the management-plane processes that generate the MME traffic
whose overhead §3.3 measures:

- the CCo's periodic **beacons** (CA3; the real HomePlug AV beacon
  occupies a TDMA region — we model it as a CA3 management MPDU, a
  documented simplification that preserves its airtime and its
  visibility to the sniffer);
- the **association handshake** at station startup (CC_ASSOC.REQ/CNF,
  CA3, with the CNF broadcast so every member learns the TEI mapping);
- periodic **channel-estimation indications** between associated peers
  (CA2; stands in for the vendor's tone-map maintenance exchanges).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.parameters import PriorityClass
from ..engine.environment import Environment
from ..engine.marks import ProcMark
from ..engine.randomness import RandomStreams
from ..mac.coordinator import ContentionCoordinator
from ..mac.queueing import AggregationPolicy
from ..phy.channel import PowerStrip
from ..phy.timing import PhyTiming
from .device import HomePlugAVDevice
from .mme import MMTYPE_IND
from .mme_types import BeaconPayload, MmeType
from .security import KeyStore, nmk_from_password

__all__ = ["Avln"]

#: HomePlug AV beacon period: two cycles of the 50 Hz mains (Europe,
#: where the paper's testbed was located) = 40 ms.
BEACON_PERIOD_US = 40_000.0

#: Default period of per-peer channel-estimation indications.
CHANNEL_EST_PERIOD_US = 10_000_000.0  # 10 s, per peer


class Avln:
    """An AV logical network on one power strip."""

    def __init__(
        self,
        env: Environment,
        streams: RandomStreams,
        timing: Optional[PhyTiming] = None,
        beacon_period_us: float = BEACON_PERIOD_US,
        channel_est_period_us: float = CHANNEL_EST_PERIOD_US,
        beacons_enabled: bool = True,
        channel_est_enabled: bool = True,
        nid: bytes = b"REPRO01",
        security_enabled: bool = False,
        network_password: str = "HomePlugAV",
        error_model=None,
    ) -> None:
        self.env = env
        self.streams = streams
        self.strip = PowerStrip(error_model=error_model)
        self.coordinator = ContentionCoordinator(env, self.strip, timing)
        self.devices: List[HomePlugAVDevice] = []
        self.cco: Optional[HomePlugAVDevice] = None
        self.beacon_period_us = beacon_period_us
        self.channel_est_period_us = channel_est_period_us
        self.beacons_enabled = beacons_enabled
        self.channel_est_enabled = channel_est_enabled
        self.nid = nid
        #: When enabled, stations must fetch the NEK (CM_GET_KEY) after
        #: associating before they may transmit data.
        self.security_enabled = security_enabled
        self.network_password = network_password
        self._beacon_sequence = 0
        #: Resume bookmarks of the management-plane processes, keyed
        #: ``("beacon",)`` / ``("assoc", mac)`` / ``("chanest", mac)``.
        self._proc_marks: Dict[Tuple, ProcMark] = {}

    def _mark(self, *key) -> ProcMark:
        mark = self._proc_marks.get(key)
        if mark is None:
            mark = ProcMark(key)
            self._proc_marks[key] = mark
        return mark

    # -- membership ------------------------------------------------------------
    def add_device(
        self,
        mac_addr: str,
        is_cco: bool = False,
        configs: Optional[dict] = None,
        aggregation: Optional[AggregationPolicy] = None,
        network_password: Optional[str] = None,
    ) -> HomePlugAVDevice:
        """Create a device, attach it to the strip and the coordinator.

        The first CCo starts the beacon process; stations schedule
        their association handshake with a small random offset (as
        adapters powering up do).  ``network_password`` overrides the
        AVLN's password for this device (a mis-keyed adapter will
        associate but never authenticate when security is enabled).
        """
        password = (
            network_password
            if network_password is not None
            else self.network_password
        )
        device = HomePlugAVDevice(
            env=self.env,
            strip=self.strip,
            streams=self.streams,
            mac_addr=mac_addr,
            is_cco=is_cco,
            configs=configs,
            aggregation=aggregation,
            keys=KeyStore(nmk=nmk_from_password(password)),
            require_authentication=self.security_enabled,
        )
        self.coordinator.add_node(device.node)
        self.devices.append(device)
        if is_cco:
            if self.cco is not None:
                raise ValueError("AVLN already has a CCo")
            self.cco = device
            if self.beacons_enabled:
                self.env.process(self._beacon_process())
                self._mark("beacon").stamp_created(self.env)
        else:
            self.env.process(self._association_process(device))
            self._mark("assoc", device.mac_addr).stamp_created(self.env)
        if self.channel_est_enabled:
            self.env.process(self._channel_est_process(device))
            self._mark("chanest", device.mac_addr).stamp_created(self.env)
        return device

    def remove_device(self, device: HomePlugAVDevice) -> None:
        """Take a member off the network (station churn).

        Detaches the MAC node from the coordinator (marking it
        ``detached`` so in-flight contention rounds skip it), takes the
        adapter off the wire, and drops it from the roster.  The
        device's management processes observe ``node.detached`` and
        exit at their next wake.  The CCo keeps the TEI reserved, so a
        re-joining MAC gets its old TEI back.
        """
        if device is self.cco:
            raise ValueError("cannot remove the CCo from the AVLN")
        self.coordinator.remove_node(device.node)
        device.shutdown()
        if device in self.devices:
            self.devices.remove(device)

    def find_device(self, mac_addr: str) -> HomePlugAVDevice:
        mac = mac_addr.lower()
        for device in self.devices:
            if device.mac_addr == mac:
                return device
        raise KeyError(f"no device with MAC {mac_addr}")

    @property
    def all_associated(self) -> bool:
        return all(device.associated for device in self.devices)

    @property
    def all_authenticated(self) -> bool:
        return all(device.authenticated for device in self.devices)

    # -- checkpoint restore ------------------------------------------------
    def adopt_mark(self, mark: ProcMark) -> None:
        """Install a restored bookmark over the freshly built one."""
        self._proc_marks[tuple(mark.key)] = mark

    def restart_marked(self, mark: ProcMark) -> bool:
        """Restart the process behind a live restored bookmark.

        Returns ``False`` (after retiring the mark) when the process's
        device has already left the network: the pending wake of such a
        process observes ``detached`` and exits without side effects, so
        skipping the restart cannot change any simulated outcome.
        """
        key = tuple(mark.key)
        kind = key[0]
        if kind == "beacon":
            self.env.process(
                self._beacon_process(resume_wake_us=mark.wake_us)
            )
            mark.stamp_created(self.env)
            return True
        try:
            device = self.find_device(key[1])
        except KeyError:
            mark.finish()
            return False
        if kind == "assoc":
            self.env.process(
                self._association_process(
                    device, resume_wake_us=mark.wake_us
                )
            )
        elif kind == "chanest":
            self.env.process(
                self._channel_est_process(
                    device,
                    resume_wake_us=mark.wake_us,
                    resume_phase=mark.phase,
                )
            )
        else:
            raise ValueError(f"unknown process mark {key!r}")
        mark.stamp_created(self.env)
        return True

    # -- management-plane processes -------------------------------------------
    def _emit_beacon(self) -> None:
        self._beacon_sequence += 1
        payload = BeaconPayload(
            nid=self.nid,
            cco_tei=self.cco.tei,
            sequence=self._beacon_sequence,
            beacon_period_ms=int(self.beacon_period_us / 1000),
        )
        self.cco.send_mme_over_wire(
            MmeType.CC_BEACON | MMTYPE_IND,
            payload.encode(),
            dst_mac="ff:ff:ff:ff:ff:ff",
            dest_tei=0xFF,
            priority=PriorityClass.CA3,
        )

    def _beacon_process(self, resume_wake_us: Optional[float] = None):
        """CCo beacons every beacon period, via CA3 CSMA access."""
        assert self.cco is not None
        mark = self._mark("beacon")
        if resume_wake_us is not None:
            # A live wake emits a beacon; the restored first wake must too.
            yield self.env.timeout_at(resume_wake_us)
            self._emit_beacon()
        while True:
            mark.sleeping(self.env, self.env.now + self.beacon_period_us)
            yield self.env.timeout(self.beacon_period_us)
            self._emit_beacon()

    def _association_process(
        self,
        device: HomePlugAVDevice,
        resume_wake_us: Optional[float] = None,
    ):
        """Station startup: wait a beat, then associate (retry if lost)."""
        mark = self._mark("assoc", device.mac_addr)
        if resume_wake_us is not None:
            # The startup offset was drawn before the checkpoint (the
            # restored stream state is post-draw); every park site of
            # this process resumes into the same condition checks a live
            # wake runs, so no phase tracking is needed.
            yield self.env.timeout_at(resume_wake_us)
        else:
            rng = self.streams.stream("assoc", device.mac_addr)
            delay = float(rng.uniform(1_000.0, 20_000.0))
            mark.sleeping(self.env, self.env.now + delay, phase="startup")
            yield self.env.timeout(delay)
        while not device.associated and not device.node.detached:
            device.request_association()
            # Re-try if the confirm has not arrived within 100 ms.
            mark.sleeping(self.env, self.env.now + 100_000.0, phase="assoc")
            yield self.env.timeout(100_000.0)
        if self.security_enabled:
            # Authenticate: fetch the NEK.  A device with the wrong
            # NMK keeps being refused and retries at a slow cadence.
            while not device.authenticated and not device.node.detached:
                device.request_network_key()
                mark.sleeping(
                    self.env, self.env.now + 200_000.0, phase="auth"
                )
                yield self.env.timeout(200_000.0)
        mark.finish()

    def _channel_est_step(self, device: HomePlugAVDevice) -> bool:
        """One wake of the channel-estimation loop; False = exit."""
        if device.node.detached:
            return False
        if not device.associated:
            return True
        for peer_mac, tei in list(device.address_table.items()):
            if peer_mac != device.mac_addr and tei != 0xFF:
                device.send_channel_estimation(peer_mac)
        return True

    def _channel_est_process(
        self,
        device: HomePlugAVDevice,
        resume_wake_us: Optional[float] = None,
        resume_phase: Optional[str] = None,
    ):
        """Periodic tone-map indications towards every known peer."""
        rng = self.streams.stream("chanest", device.mac_addr)
        mark = self._mark("chanest", device.mac_addr)
        if resume_phase is None:
            delay = float(rng.uniform(0.0, self.channel_est_period_us))
            # The startup wake does not send (the loop body runs only
            # after in-loop sleeps), hence the phase distinction.
            mark.sleeping(self.env, self.env.now + delay, phase="startup")
            yield self.env.timeout(delay)
        else:
            yield self.env.timeout_at(resume_wake_us)
            if resume_phase == "loop" and not self._channel_est_step(device):
                mark.finish()
                return
        while not device.node.detached:
            delay = float(
                rng.uniform(
                    0.8 * self.channel_est_period_us,
                    1.2 * self.channel_est_period_us,
                )
            )
            mark.sleeping(self.env, self.env.now + delay, phase="loop")
            yield self.env.timeout(delay)
            if not self._channel_est_step(device):
                break
        mark.finish()
