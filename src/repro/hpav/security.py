"""HomePlug AV security plane: NMK/NEK key management.

Joining an AVLN requires the *network membership key* (NMK), derived
from the user's network password; the CCo hands authenticated members
the rotating *network encryption key* (NEK) that protects data frames.
The paper's testbed uses factory-default keys (all devices shipped
with the same password), so security never appears in its
measurements — but the MMEs exist on real networks and the tools can
set keys, so the emulation models the plane:

- :func:`nmk_from_password` — password → 16-byte NMK (PBKDF2-HMAC-SHA256
  with the HomePlug AV salt; the standard's PBKDF1 variant differs in
  construction but not in any property the emulation relies on);
- :class:`KeyStore` — per-device NMK/NEK state;
- CM_SET_KEY / CM_GET_KEY payload codecs live in
  :mod:`repro.hpav.mme_types`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Optional

__all__ = [
    "NMK_BYTES",
    "HPAV_KEY_SALT",
    "DEFAULT_NETWORK_PASSWORD",
    "nmk_from_password",
    "KeyStore",
]

#: AES-128 key size used for both NMK and NEK.
NMK_BYTES = 16

#: The HomePlug AV key-derivation salt.
HPAV_KEY_SALT = bytes.fromhex("0885 6daf 7cf5 8185".replace(" ", ""))

#: Factory-default network password ("HomePlugAV" out of the box).
DEFAULT_NETWORK_PASSWORD = "HomePlugAV"


def nmk_from_password(password: str) -> bytes:
    """Derive the 16-byte NMK from a network password.

    >>> nmk_from_password("HomePlugAV") == nmk_from_password("HomePlugAV")
    True
    >>> len(nmk_from_password("secret"))
    16
    """
    if not password:
        raise ValueError("password must be non-empty")
    return hashlib.pbkdf2_hmac(
        "sha256", password.encode("utf-8"), HPAV_KEY_SALT, 1000, NMK_BYTES
    )


@dataclasses.dataclass
class KeyStore:
    """The keys one device holds."""

    nmk: bytes = dataclasses.field(
        default_factory=lambda: nmk_from_password(DEFAULT_NETWORK_PASSWORD)
    )
    nek: Optional[bytes] = None

    def __post_init__(self) -> None:
        if len(self.nmk) != NMK_BYTES:
            raise ValueError(f"NMK must be {NMK_BYTES} bytes")

    def set_nmk_from_password(self, password: str) -> None:
        self.nmk = nmk_from_password(password)
        self.nek = None  # a new network means the old NEK is useless

    def set_nmk(self, nmk: bytes) -> None:
        if len(nmk) != NMK_BYTES:
            raise ValueError(f"NMK must be {NMK_BYTES} bytes")
        self.nmk = bytes(nmk)
        self.nek = None

    @property
    def authenticated(self) -> bool:
        """Whether the device holds the network's current NEK."""
        return self.nek is not None

    def nmk_digest(self) -> bytes:
        """8-byte proof-of-NMK used in CM_GET_KEY (emulated HMAC)."""
        return hashlib.sha256(b"nmk-proof" + self.nmk).digest()[:8]

    @staticmethod
    def generate_nek(seed_material: bytes) -> bytes:
        """Deterministically derive a NEK (CCo side, reproducible)."""
        return hashlib.sha256(b"nek" + seed_material).digest()[:NMK_BYTES]
