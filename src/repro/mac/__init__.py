"""Event-driven IEEE 1901 MAC (µs resolution): queues, nodes, contention."""

from .coordinator import ContentionCoordinator, RoundLog
from .node import BROADCAST_TEI, UNASSOCIATED_TEI, MacNode
from .queueing import AggregationPolicy, PriorityQueues, QueuedMme

__all__ = [
    "AggregationPolicy",
    "BROADCAST_TEI",
    "ContentionCoordinator",
    "MacNode",
    "PriorityQueues",
    "QueuedMme",
    "RoundLog",
    "UNASSOCIATED_TEI",
]
