"""The synchronized 1901 contention process in microsecond time.

IEEE 1901 contention is slot-synchronized network-wide: every busy
period is followed by the two priority-resolution slots (PRS0/PRS1),
then contention slots of 35.84 µs tick in lockstep until some station's
backoff counter expires.  :class:`ContentionCoordinator` runs that
structure as a process on the discrete-event engine:

1. wait until any node has pending traffic;
2. priority resolution: the highest pending class wins (busy-tone
   signalling, §2), lower classes defer with frozen counters;
3. contention slots: every contending node's backoff FSM steps exactly
   as in the slot-synchronous simulator;
4. on an attempt: put the winning burst (or the colliding bursts'
   first MPDUs) on the wire with real delimiter/payload/RIFS/SACK
   timing, feed the sniffers and the destination, generate SACKs —
   collisions get all-errored SACKs (§3.2) — and give every node the
   same outcome feedback the slot simulator would.

Because step 3 drives the *same* :class:`repro.core.station.Station`
FSM as the slot simulator, the two implementations agree on the
protocol by construction; the event MAC adds the PHY timeline, frame
bursting, management traffic and per-device firmware observability.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..core.parameters import PriorityClass
from ..core.station import SlotOutcome
from ..engine.environment import Environment
from ..engine.events import Event
from ..phy.channel import PowerStrip
from ..phy.framing import SackDelimiter
from ..phy.timing import PhyTiming
from .node import MacNode

__all__ = ["ContentionCoordinator", "RoundLog"]


@dataclasses.dataclass
class RoundLog:
    """Aggregate counters of the contention process (for tests/benches)."""

    rounds: int = 0
    idle_slots: int = 0
    successes: int = 0
    collisions: int = 0
    prs_phases: int = 0
    mpdus_on_wire: int = 0
    #: Busy airtime (µs) attributed to each transmitting TEI — the
    #: measurement behind the rate-diversity anomaly (a slow link's
    #: share of airtime exceeds its share of transmissions).
    airtime_by_source: Dict[int, float] = dataclasses.field(
        default_factory=dict
    )

    def add_airtime(self, tei: int, duration_us: float) -> None:
        self.airtime_by_source[tei] = (
            self.airtime_by_source.get(tei, 0.0) + duration_us
        )

    def airtime_share(self, tei: int) -> float:
        """Fraction of attributed busy airtime used by ``tei``."""
        total = sum(self.airtime_by_source.values())
        if total <= 0:
            return 0.0
        return self.airtime_by_source.get(tei, 0.0) / total

    def as_dict(self) -> Dict[str, object]:
        """Counters as a plain dict (mirrors ``RunnerCounters.as_dict``).

        >>> log = RoundLog(rounds=3, successes=2, collisions=1)
        >>> log.as_dict()["collisions"]
        1
        """
        return {
            "rounds": self.rounds,
            "idle_slots": self.idle_slots,
            "successes": self.successes,
            "collisions": self.collisions,
            "prs_phases": self.prs_phases,
            "mpdus_on_wire": self.mpdus_on_wire,
            "airtime_by_source": dict(self.airtime_by_source),
        }

    def reset(self) -> None:
        """Zero all counters (long-running coordinators, warmup cuts)."""
        self.rounds = 0
        self.idle_slots = 0
        self.successes = 0
        self.collisions = 0
        self.prs_phases = 0
        self.mpdus_on_wire = 0
        self.airtime_by_source.clear()


class ContentionCoordinator:
    """Drives all attached :class:`MacNode` instances over a strip."""

    def __init__(
        self,
        env: Environment,
        strip: PowerStrip,
        timing: Optional[PhyTiming] = None,
        max_idle_slots_between_prs: int = 1_000_000,
    ) -> None:
        self.env = env
        self.strip = strip
        self.timing = timing if timing is not None else PhyTiming.paper_calibrated()
        self.nodes: List[MacNode] = []
        self.log = RoundLog()
        #: Optional :class:`repro.obs.probe.MacProbe` (``None`` = off).
        self.probe = None
        #: Optional callable invoked at every round boundary — the one
        #: instant where no contention state is in flight, which makes
        #: it the safe point for checkpoint snapshots (``None`` = off).
        self.checkpoint_hook = None
        self._work_event: Optional[Event] = None
        self._process = env.process(self._run())
        self._max_idle_slots = max_idle_slots_between_prs

    # -- attachment ---------------------------------------------------------
    def add_node(self, node: MacNode) -> None:
        """Attach a node; its work signal wakes the contention loop."""
        node.work_signal = self._signal_work
        node.detached = False
        self.nodes.append(node)

    def remove_node(self, node: MacNode) -> None:
        """Detach a node mid-run (station churn).

        Marks the node ``detached`` *and* drops it from the roster: the
        contention loop captures its ``contenders`` list before
        yielding, so a node that leaves mid-round (crash-leave while
        holding the medium, or mid-backoff) is still referenced by the
        in-flight round — the ``detached`` flag makes every later
        ``step``/``resolve``/``notify_sack`` touch point skip it.
        """
        node.detached = True
        node.work_signal = lambda: None
        if node in self.nodes:
            self.nodes.remove(node)

    def _signal_work(self) -> None:
        if self._work_event is not None and not self._work_event.triggered:
            self._work_event.succeed()

    def restart(self) -> None:
        """Re-create the contention process (checkpoint restore).

        Snapshots are only taken at round boundaries — the top of the
        ``_run`` loop — so a restored coordinator restarts its process
        from scratch and immediately re-evaluates pending traffic, which
        is exactly what the live process would have done next.
        """
        self._work_event = None
        self._process = self.env.process(self._run())

    # -- main process -----------------------------------------------------------
    def _pending_priorities(self) -> List[PriorityClass]:
        return [
            priority
            for priority in (node.pending_priority() for node in self.nodes)
            if priority is not None
        ]

    def _run(self):
        while True:
            # Sleep until at least one node has something to send.
            while not self._pending_priorities():
                self._work_event = self.env.event()
                yield self._work_event
                self._work_event = None

            # Priority resolution phase (PRS0 + PRS1 busy tones).
            yield self.env.timeout(self.timing.prs_us)
            self.log.prs_phases += 1
            pending = self._pending_priorities()
            if not pending:
                continue  # queues drained while PRS elapsed (host reset)
            winning = max(pending)
            contenders = [
                node for node in self.nodes if node.begin_round(winning)
            ]
            if self.probe is not None:
                self.probe.emit(
                    {
                        "event": "prs",
                        "winning": int(winning),
                        "pending": len(pending),
                        "contenders": len(contenders),
                    }
                )
            if not contenders:
                continue

            # Contention slots until a transmission happens.
            transmitted = False
            idle_run = 0
            while not transmitted and idle_run < self._max_idle_slots:
                # Churn: drop nodes that left since the round started;
                # with nobody left the round simply dissolves (the next
                # loop iteration re-runs priority resolution).
                contenders = [
                    node for node in contenders if not node.detached
                ]
                if not contenders:
                    break
                attempters = [node for node in contenders if node.step()]
                if not attempters:
                    yield self.env.timeout(self.timing.slot_us)
                    self.log.idle_slots += 1
                    if self.probe is not None:
                        # Emitted adjacent to the counter increment so a
                        # truncated run leaves trace and RoundLog equal.
                        self.probe.emit(
                            {"event": "slot", "outcome": "idle"}
                        )
                    idle_run += 1
                    for node in contenders:
                        if not node.detached:
                            node.resolve(SlotOutcome.IDLE)
                    continue
                if len(attempters) == 1:
                    yield from self._transmit_success(attempters[0], contenders)
                else:
                    yield from self._transmit_collision(attempters, contenders)
                transmitted = True
            self.log.rounds += 1
            if self.checkpoint_hook is not None:
                self.checkpoint_hook()

    # -- transmissions ------------------------------------------------------------
    def _transmit_success(self, winner: MacNode, contenders: List[MacNode]):
        """Air the winner's burst: MPDUs back-to-back, one SACK (burst
        mode), then CIFS."""
        burst = winner.take_burst()
        sofs = burst.sof_delimiters()
        error_flags_per_mpdu = []
        for mpdu, sof in zip(burst.mpdus, sofs):
            self.strip.observe_sof(sof, self.env.now, collided=False)
            airtime = self.timing.mpdu_airtime_us(mpdu)
            self.log.add_airtime(burst.source_tei, airtime)
            if self.probe is not None:
                # One event per add_airtime call, same value and order:
                # trace consumers accumulate the exact floats that end
                # up in ``RoundLog.airtime_by_source``, even when the
                # run cuts off mid-burst.
                self.probe.emit(
                    {
                        "event": "airtime",
                        "source_tei": burst.source_tei,
                        "airtime_us": airtime,
                    }
                )
            yield self.env.timeout(airtime)
            error_flags_per_mpdu.append(
                self.strip.deliver_mpdu(mpdu, self.env.now)
            )
            self.log.mpdus_on_wire += 1
        # Single selective acknowledgment covering the whole burst.
        yield self.env.timeout(self.timing.rifs_us + self.timing.sack_us)
        for mpdu, flags in zip(burst.mpdus, error_flags_per_mpdu):
            sack = SackDelimiter(
                mpdu_id=mpdu.mpdu_id,
                source_tei=mpdu.dest_tei,
                dest_tei=mpdu.source_tei,
                pb_errors=tuple(flags) if flags else (False,),
            )
            if not winner.detached:
                winner.notify_sack(sack, burst, "success")
        yield self.env.timeout(self.timing.cifs_us)
        self.log.successes += 1
        if self.probe is not None:
            self.probe.emit(
                {
                    "event": "slot",
                    "outcome": "success",
                    "sources": [burst.source_tei],
                    "mpdus": len(burst.mpdus),
                }
            )
        for node in contenders:
            if not node.detached:
                node.resolve(SlotOutcome.SUCCESS, won=(node is winner))

    def _transmit_collision(
        self, attempters: List[MacNode], contenders: List[MacNode]
    ):
        """Overlapping full bursts (stations are committed until the
        burst-end SACK slot); every MPDU collides."""
        bursts = [node.take_burst() for node in attempters]
        # Delimiters are robustly modulated: sniffers decode every SoF
        # of the colliding bursts (§3.2).  Emit them in wall-clock
        # order: the k-th MPDUs of all bursts overlap.
        schedule = []  # (time offset, sof)
        longest = 0.0
        for burst in bursts:
            offset = 0.0
            for mpdu, sof in zip(burst.mpdus, burst.sof_delimiters()):
                schedule.append((offset, sof))
                offset += self.timing.mpdu_airtime_us(mpdu)
            self.log.add_airtime(burst.source_tei, offset)
            if self.probe is not None:
                self.probe.emit(
                    {
                        "event": "airtime",
                        "source_tei": burst.source_tei,
                        "airtime_us": offset,
                    }
                )
            longest = max(longest, offset)
        schedule.sort(key=lambda item: item[0])
        for offset, sof in schedule:
            self.strip.observe_sof(sof, self.env.now + offset, collided=True)
        yield self.env.timeout(longest)
        for node, burst in zip(attempters, bursts):
            for mpdu in burst.mpdus:
                sack = SackDelimiter.collision(mpdu)
                if not node.detached:
                    node.notify_sack(sack, burst, "collision")
                self.log.mpdus_on_wire += 1
        yield self.env.timeout(self.timing.cifs_us)
        self.log.collisions += 1
        if self.probe is not None:
            self.probe.emit(
                {
                    "event": "slot",
                    "outcome": "collision",
                    "sources": [burst.source_tei for burst in bursts],
                    "mpdus": sum(len(burst.mpdus) for burst in bursts),
                }
            )
        for node in contenders:
            if not node.detached:
                node.resolve(SlotOutcome.COLLISION)
