"""Per-device MAC entity: queues + the 1901 backoff FSM.

A :class:`MacNode` owns the transmit queues of one device and one
backoff :class:`~repro.core.station.Station` per priority class (the
standard's CW/DC schedules differ between the CA0/CA1 and CA2/CA3
groups, Table 1).  The contention coordinator drives nodes through the
synchronized slot structure; the node reports whether it attempts,
hands over its head-of-line burst, and receives SACK feedback which it
forwards to the device firmware's statistics engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..core.config import CsmaConfig
from ..core.parameters import PriorityClass
from ..core.station import SlotOutcome, Station
from ..engine.randomness import RandomStreams
from ..phy.framing import Burst, SackDelimiter
from ..traffic.packets import EthernetFrame
from .queueing import AggregationPolicy, PriorityQueues, QueuedMme

__all__ = ["MacNode"]

#: TEI used by stations before association.
UNASSOCIATED_TEI = 0x00
#: Broadcast TEI.
BROADCAST_TEI = 0xFF


class MacNode:
    """The MAC layer of one PLC device.

    Parameters
    ----------
    name:
        Diagnostic name (usually the device's MAC address).
    streams:
        Random substream tree (backoff draws come from
        ``streams.stream("backoff", name, priority)``).
    configs:
        Optional per-priority CsmaConfig override; defaults to the
        standard Table 1 schedule of each class.
    aggregation:
        Frame-aggregation/bursting policy.
    """

    def __init__(
        self,
        name: str,
        streams: RandomStreams,
        configs: Optional[Dict[PriorityClass, CsmaConfig]] = None,
        aggregation: Optional[AggregationPolicy] = None,
    ) -> None:
        self.name = name
        self.tei: int = UNASSOCIATED_TEI
        self.queues = PriorityQueues(policy=aggregation)
        self._stations: Dict[PriorityClass, Station] = {}
        self._configs = configs or {}
        self._streams = streams
        #: Resolver from destination MAC to TEI, installed by the AVLN.
        self.dest_tei_of: Callable[[str], int] = lambda mac: BROADCAST_TEI
        #: Callback fired when the node has new work (wakes coordinator).
        self.work_signal: Callable[[], None] = lambda: None
        #: Callback receiving every SACK for this node's transmissions.
        self.sack_handler: Callable[[SackDelimiter, Burst, str], None] = (
            lambda sack, burst, outcome: None
        )
        #: Bursts currently under contention, per priority (a node can
        #: hold a frozen CA1 burst while a CA3 MME takes precedence).
        self._current_bursts: Dict[PriorityClass, Burst] = {}
        self._contending_priority: Optional[PriorityClass] = None
        #: MPDUs whose SACK reported PB errors, awaiting MAC-level
        #: retransmission (channel-error extension; empty on the
        #: paper's ideal channel).
        self._retransmit: Dict[PriorityClass, list] = {}
        #: Counters.
        self.tx_bursts = 0
        self.tx_collisions = 0
        self.phy_retransmissions = 0
        #: Optional :class:`repro.obs.probe.MacProbe` (``None`` = off).
        self.probe = None
        #: Set by :meth:`repro.mac.coordinator.ContentionCoordinator
        #: .remove_node` (station churn): a detached node is skipped by
        #: the coordinator even if a contention round captured it
        #: before it left — the crash-leave-mid-round case.
        self.detached = False

    # -- station management ------------------------------------------------
    def stations(self) -> Dict[PriorityClass, Station]:
        """The per-priority backoff FSMs created so far (read-only view).

        The chaos invariant checker sweeps these; stations are created
        lazily by :meth:`station_for`, so the view only contains the
        priorities this node has actually contended at.
        """
        return dict(self._stations)

    def station_for(self, priority: PriorityClass) -> Station:
        """The backoff FSM used when contending at ``priority``."""
        if priority not in self._stations:
            config = self._configs.get(priority)
            if config is None:
                config = CsmaConfig.for_priority(priority)
            rng: np.random.Generator = self._streams.stream(
                "backoff", self.name, int(priority)
            )
            station = Station(config, rng)
            station.probe = self.probe
            station.probe_id = self.name
            self._stations[priority] = station
        return self._stations[priority]

    def set_probe(self, probe) -> None:
        """Attach (or with ``None`` detach) an observability probe.

        Propagates to the per-priority backoff stations, existing and
        lazily created later, stamping this node's name as their
        ``probe_id``.
        """
        self.probe = probe
        for station in self._stations.values():
            station.probe = probe
            station.probe_id = self.name

    # -- ingress -------------------------------------------------------------
    def submit_data(
        self, frame: EthernetFrame, priority: PriorityClass = PriorityClass.CA1
    ) -> bool:
        """Host Ethernet ingress; returns False if the queue dropped it."""
        accepted = self.queues.enqueue_data(frame, priority)
        if accepted:
            if self.probe is not None:
                self.probe.emit(
                    {
                        "event": "queue",
                        "station": self.name,
                        "priority": int(priority),
                        "depth": self.queues.depth(priority),
                    }
                )
            self.work_signal()
        return accepted

    def submit_mme(self, mme: QueuedMme) -> bool:
        """Queue a management message for over-the-wire transmission."""
        accepted = self.queues.enqueue_mme(mme)
        if accepted:
            if self.probe is not None:
                self.probe.emit(
                    {
                        "event": "queue",
                        "station": self.name,
                        "priority": int(mme.priority),
                        "depth": self.queues.depth(mme.priority),
                    }
                )
            self.work_signal()
        return accepted

    # -- contention interface (driven by the coordinator) --------------------
    def pending_priority(self) -> Optional[PriorityClass]:
        """Priority this node would signal in the resolution phase.

        An in-flight burst (e.g. awaiting retransmission after a
        collision) keeps contending even if the queue behind it is
        empty.
        """
        best = self.queues.pending_priority()
        for priority in self._current_bursts:
            if best is None or priority > best:
                best = priority
        for priority, mpdus in self._retransmit.items():
            if mpdus and (best is None or priority > best):
                best = priority
        return best

    def begin_round(self, winning_priority: PriorityClass) -> bool:
        """Called after priority resolution.

        Returns ``True`` if this node contends in the round (its
        pending priority equals the winning one).  On a newly started
        frame the backoff FSM is reset to stage 0, as on frame arrival.
        """
        pending = self.pending_priority()
        if pending != winning_priority:
            self._contending_priority = None
            return False
        if pending not in self._current_bursts:
            burst = self._build_retransmission(pending)
            if burst is None:
                burst = self.queues.build_burst(
                    pending, self.tei, self.dest_tei_of
                )
            if burst is None:
                self._contending_priority = None
                return False
            self._current_bursts[pending] = burst
            self.station_for(pending).reset_for_new_frame()
        self._contending_priority = pending
        return True

    @property
    def contending(self) -> bool:
        return self._contending_priority is not None

    def step(self) -> bool:
        """One backoff slot event; True if the node attempts now."""
        if self._contending_priority is None:
            return False
        return self.station_for(self._contending_priority).step()

    def take_burst(self) -> Burst:
        """The burst to put on the wire (node just won the slot)."""
        if self._contending_priority is None:
            raise RuntimeError(f"{self.name}: not contending")
        return self._current_bursts[self._contending_priority]

    def resolve(self, outcome: SlotOutcome, won: bool = False) -> None:
        """Medium feedback for the slot event (mirrors the slot sim)."""
        if self._contending_priority is None:
            return
        station = self.station_for(self._contending_priority)
        frame_done = station.resolve(outcome, won=won)
        if won:
            self.tx_bursts += 1
        elif outcome == SlotOutcome.COLLISION and station.collisions:
            pass  # per-attempt stats live in the Station counters
        if frame_done:
            del self._current_bursts[self._contending_priority]
            self._contending_priority = None

    def _build_retransmission(self, priority: PriorityClass):
        """Head-of-line burst from MPDUs awaiting retransmission."""
        waiting = self._retransmit.get(priority)
        if not waiting:
            return None
        take = self.queues.policy.mpdus_per_burst
        mpdus, self._retransmit[priority] = waiting[:take], waiting[take:]
        return Burst(mpdus=tuple(mpdus))

    def notify_sack(
        self, sack: SackDelimiter, burst: Burst, outcome: str
    ) -> None:
        """Forward a received SACK to the firmware statistics hook.

        A successful exchange whose SACK reports PB errors queues the
        MPDU for MAC-level retransmission (whole-MPDU ARQ; see
        :meth:`repro.phy.channel.PowerStrip.deliver_mpdu`).
        """
        if self.probe is not None:
            self.probe.emit(
                {
                    "event": "sack",
                    "station": self.name,
                    "outcome": outcome,
                    "mpdu_id": sack.mpdu_id,
                    "ok": sack.ok,
                }
            )
        if outcome == "collision":
            self.tx_collisions += 1
        elif not sack.ok:
            mpdu = next(
                (m for m in burst.mpdus if m.mpdu_id == sack.mpdu_id), None
            )
            if mpdu is not None:
                self._retransmit.setdefault(mpdu.priority, []).append(mpdu)
                self.phy_retransmissions += 1
                self.work_signal()
        self.sack_handler(sack, burst, outcome)
