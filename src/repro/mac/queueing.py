"""Per-priority transmit queues and MPDU/burst assembly.

IEEE 1901 aggregates Ethernet frames into MPDUs (§3.1): frames are
segmented into 512-byte PBs and packed into the MPDU up to a size
budget; up to ``mpdus_per_burst`` head-of-line MPDUs form the burst
that contends for the medium.  The paper's devices carry one MTU-sized
Ethernet frame per MPDU and use bursts of 2 in the isolated testbed;
those are the defaults.

The aggregation *timeout* the paper mentions as vendor-unknown (§4.1)
is modelled by ``aggregation_frames``: a burst simply takes whatever
complete frames are queued, up to the budget — saturated sources always
fill it, matching the testbed's steady state.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..core.parameters import DEFAULT_MPDUS_PER_BURST, PriorityClass
from ..phy.framing import Burst, Mpdu, segment_into_pbs
from ..traffic.packets import EthernetFrame

__all__ = ["AggregationPolicy", "PriorityQueues", "QueuedMme"]


@dataclasses.dataclass(frozen=True)
class AggregationPolicy:
    """How Ethernet frames are packed into MPDUs and bursts.

    Defaults match the §3.1 measurements: one MTU-sized Ethernet frame
    per MPDU, two MPDUs per burst.
    """

    frames_per_mpdu: int = 1
    mpdus_per_burst: int = DEFAULT_MPDUS_PER_BURST

    def __post_init__(self) -> None:
        if self.frames_per_mpdu < 1:
            raise ValueError("frames_per_mpdu must be >= 1")
        if not 1 <= self.mpdus_per_burst <= 4:
            raise ValueError("mpdus_per_burst must be in 1..4")


@dataclasses.dataclass(frozen=True)
class QueuedMme:
    """A management message awaiting transmission over the wire."""

    payload: bytes
    dest_tei: int
    priority: PriorityClass


class PriorityQueues:
    """Transmit queues, one per priority class, with drop-tail limits.

    Data frames queue at their traffic priority (CA1 by default for
    UDP, §3.3); management messages queue at CA2/CA3.  The MAC serves
    the highest non-empty priority (after priority resolution).
    """

    def __init__(
        self,
        policy: Optional[AggregationPolicy] = None,
        capacity_frames: int = 1024,
    ) -> None:
        self.policy = policy if policy is not None else AggregationPolicy()
        self.capacity_frames = capacity_frames
        self._data: Dict[PriorityClass, Deque[EthernetFrame]] = {
            priority: deque() for priority in PriorityClass
        }
        self._management: Dict[PriorityClass, Deque[QueuedMme]] = {
            priority: deque() for priority in PriorityClass
        }
        self.drops = 0

    # -- enqueue -------------------------------------------------------------
    def enqueue_data(
        self, frame: EthernetFrame, priority: PriorityClass
    ) -> bool:
        """Queue an Ethernet frame; returns False on drop-tail."""
        queue = self._data[priority]
        if len(queue) >= self.capacity_frames:
            self.drops += 1
            return False
        queue.append(frame)
        return True

    def enqueue_mme(self, mme: QueuedMme) -> bool:
        """Queue a management message (MMEs are never dropped here)."""
        self._management[mme.priority].append(mme)
        return True

    # -- inspection ------------------------------------------------------------
    def pending_priority(self) -> Optional[PriorityClass]:
        """Highest priority class with anything to send."""
        for priority in sorted(PriorityClass, reverse=True):
            if self._data[priority] or self._management[priority]:
                return priority
        return None

    def depth(self, priority: PriorityClass) -> int:
        return len(self._data[priority]) + len(self._management[priority])

    def total_depth(self) -> int:
        return sum(self.depth(priority) for priority in PriorityClass)

    # -- burst assembly -----------------------------------------------------------
    def build_burst(
        self, priority: PriorityClass, source_tei: int, dest_tei_of: callable
    ) -> Optional[Burst]:
        """Assemble the head-of-line burst for ``priority``.

        Management messages ride alone (one MME per management MPDU, a
        single-MPDU burst — matching the short bursts §3.3 observes for
        MMEs).  Data MPDUs aggregate ``frames_per_mpdu`` Ethernet
        frames each and pair into ``mpdus_per_burst`` bursts.

        ``dest_tei_of`` maps a destination MAC address to its TEI.
        Frames are *consumed* from the queues.
        """
        management = self._management[priority]
        if management:
            mme = management.popleft()
            mpdu = Mpdu(
                source_tei=source_tei,
                dest_tei=mme.dest_tei,
                priority=priority,
                blocks=(),
                is_management=True,
                payload=mme.payload,
            )
            return Burst(mpdus=(mpdu,))

        queue = self._data[priority]
        if not queue:
            return None
        # Bursts target a single link: take the head frame's destination
        # and only aggregate frames going there.
        burst_dst = queue[0].dst_mac
        mpdus: List[Mpdu] = []
        for _ in range(self.policy.mpdus_per_burst):
            if not queue or queue[0].dst_mac != burst_dst:
                break
            frames: List[EthernetFrame] = []
            while (
                queue
                and len(frames) < self.policy.frames_per_mpdu
                and queue[0].dst_mac == burst_dst
            ):
                frames.append(queue.popleft())
            blocks: Tuple = tuple(
                pb
                for frame in frames
                for pb in segment_into_pbs(frame.frame_id, frame.length_bytes)
            )
            mpdus.append(
                Mpdu(
                    source_tei=source_tei,
                    dest_tei=dest_tei_of(burst_dst),
                    priority=priority,
                    blocks=blocks,
                )
            )
        return Burst(mpdus=tuple(mpdus)) if mpdus else None
