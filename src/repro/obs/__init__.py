"""In-simulation observability: probes, metrics, traces, profiling.

The paper's §3 methodology is observational — everything is derived
from what a sniffer-mode station and the devices' firmware counters
expose.  ``repro.obs`` gives the simulator the same observability:

- :mod:`repro.obs.probe` — the MAC/PHY event bus embedded in the
  engine/MAC/PHY hot paths (near-zero overhead while detached);
- :mod:`repro.obs.registry` — labelled counters/gauges/histograms
  readable mid-run;
- :mod:`repro.obs.trace` — JSONL MAC trace and sniffer-compatible SoF
  trace exporters;
- :mod:`repro.obs.analyze` — recompute collision probability,
  fairness, stage occupancy and win runs *from a trace* and
  cross-check them against the direct ground truth;
- :mod:`repro.obs.profiler` — engine profiler (events/sec, wall time
  per process type, simulated-µs per wall-second);
- :mod:`repro.obs.capture` — attach everything to a run and flush the
  artifacts (the machinery behind ``repro-plc trace`` / ``profile``);
- :mod:`repro.obs.recording` — the shared JSONL event-record
  conventions, also used by :mod:`repro.runner.telemetry`.
"""

from .analyze import CrossCheckRow, analyze_mac_trace, analyze_sof_trace, cross_check
from .capture import ObsConfig, ObsSession, observe_testbed, observed_collision_test
from .probe import MacProbe, deinstrument, instrument, instrument_testbed
from .profiler import EngineProfiler, ProfileReport
from .recording import JsonlEventLog, append_jsonl, as_jsonable, read_jsonl
from .registry import Counter, Gauge, Histogram, MetricsRegistry, ProbeMetrics
from .trace import (
    SOF_TRACE_FIELDS,
    MacTraceRecorder,
    SofTraceRecorder,
    load_mac_trace,
    load_sof_trace,
)

__all__ = [
    "MacProbe",
    "instrument",
    "instrument_testbed",
    "deinstrument",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProbeMetrics",
    "MacTraceRecorder",
    "SofTraceRecorder",
    "SOF_TRACE_FIELDS",
    "load_mac_trace",
    "load_sof_trace",
    "EngineProfiler",
    "ProfileReport",
    "JsonlEventLog",
    "append_jsonl",
    "as_jsonable",
    "read_jsonl",
    "CrossCheckRow",
    "analyze_mac_trace",
    "analyze_sof_trace",
    "cross_check",
    "ObsConfig",
    "ObsSession",
    "observe_testbed",
    "observed_collision_test",
]
