"""Recompute the paper's metrics *from a trace* and cross-check them.

The §3 methodology derives every result from sniffer/firmware
observations rather than from simulator internals.  This module closes
the same loop in-repo: given a JSONL MAC trace (or a sniffer-style SoF
trace) produced by :mod:`repro.obs.trace`, it recomputes

- collision probability (round-level C / (C + S), the §3.2 estimator's
  denominator convention: collided frames are acknowledged too),
- per-TEI airtime and the Jain fairness index over airtime shares,
- backoff-stage occupancy (how often each stage was entered),
- win-run lengths / capture probability / short-term fairness from the
  winner sequence,

and :func:`cross_check` compares the trace-derived values against the
direct :class:`~repro.mac.coordinator.RoundLog` ground truth.  Slot
events carry their airtime quanta in the exact order the coordinator
fed them to ``RoundLog.add_airtime``, so the trace-side float sums are
bitwise-identical and the cross-check passes at 1e-9 tolerance.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..core import metrics as core_metrics

__all__ = [
    "slot_counts",
    "collision_probability_from_trace",
    "airtime_by_source_from_trace",
    "jain_index_from_trace",
    "stage_occupancy",
    "winner_sequence",
    "analyze_mac_trace",
    "sof_bursts",
    "analyze_sof_trace",
    "CrossCheckRow",
    "cross_check",
]


# -- MAC-trace analysis ---------------------------------------------------
def slot_counts(events: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """Count slot events by outcome.

    >>> slot_counts([{"event": "slot", "outcome": "idle"}] * 3)
    {'idle': 3, 'success': 0, 'collision': 0}
    """
    counts = {"idle": 0, "success": 0, "collision": 0}
    for event in events:
        if event.get("event") == "slot":
            counts[event["outcome"]] += 1
    return counts


def collision_probability_from_trace(
    events: Iterable[Dict[str, Any]],
) -> float:
    """Round-level collision probability C / (C + S) from slot events."""
    counts = slot_counts(events)
    return core_metrics.collision_probability(
        counts["collision"], counts["collision"] + counts["success"]
    )


def airtime_by_source_from_trace(
    events: Iterable[Dict[str, Any]],
) -> Dict[int, float]:
    """Accumulate per-TEI busy airtime from ``airtime`` events.

    The coordinator emits one ``airtime`` event adjacent to every
    ``RoundLog.add_airtime`` call, with the same value and in the same
    order — so the floats match the direct accumulation exactly, not
    just approximately.
    """
    airtime: Dict[int, float] = {}
    for event in events:
        if event.get("event") != "airtime":
            continue
        tei = event["source_tei"]
        airtime[tei] = airtime.get(tei, 0.0) + event["airtime_us"]
    return airtime


def jain_index_from_trace(events: Sequence[Dict[str, Any]]) -> float:
    """Jain fairness index over per-TEI airtime (NaN with no airtime)."""
    airtime = airtime_by_source_from_trace(events)
    if not airtime:
        return float("nan")
    return core_metrics.jain_index(
        [airtime[tei] for tei in sorted(airtime)]
    )


def stage_occupancy(events: Iterable[Dict[str, Any]]) -> Dict[int, int]:
    """How many backoff redraws entered each stage.

    >>> stage_occupancy([{"event": "backoff_stage", "stage": 0}] * 2)
    {0: 2}
    """
    occupancy: Dict[int, int] = {}
    for event in events:
        if event.get("event") == "backoff_stage":
            stage = event["stage"]
            occupancy[stage] = occupancy.get(stage, 0) + 1
    return dict(sorted(occupancy.items()))


def winner_sequence(events: Iterable[Dict[str, Any]]) -> List[int]:
    """TEI of each successful transmission, in order."""
    return [
        event["sources"][0]
        for event in events
        if event.get("event") == "slot" and event["outcome"] == "success"
    ]


def analyze_mac_trace(
    events: Sequence[Dict[str, Any]],
    fairness_window: Optional[int] = None,
) -> Dict[str, Any]:
    """Full summary of a MAC trace (the §3-style derived metrics)."""
    counts = slot_counts(events)
    airtime = airtime_by_source_from_trace(events)
    winners = winner_sequence(events)
    distinct = sorted(set(winners))
    win_index = {tei: i for i, tei in enumerate(distinct)}
    indexed_winners = [win_index[tei] for tei in winners]
    dc_jumps = sum(1 for e in events if e.get("event") == "dc_jump")
    summary: Dict[str, Any] = {
        "slots": counts,
        "collision_probability": collision_probability_from_trace(events),
        "airtime_by_source": airtime,
        "jain_airtime": jain_index_from_trace(events),
        "stage_occupancy": stage_occupancy(events),
        "dc_jumps": dc_jumps,
        "winners": winners,
        "win_run_lengths": core_metrics.win_run_lengths(winners),
        "capture_probability": core_metrics.capture_probability(winners),
    }
    if distinct:
        summary["short_term_fairness"] = core_metrics.short_term_fairness(
            indexed_winners, len(distinct), window=fairness_window
        )
    else:
        summary["short_term_fairness"] = float("nan")
    return summary


# -- SoF-trace analysis ---------------------------------------------------
@dataclasses.dataclass
class _SofBurst:
    source_tei: int
    link_id: int
    start_us: float
    collided: bool
    mpdus: int
    complete: bool


def sof_bursts(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Reconstruct bursts from sniffer rows, faifa-style.

    Rows stream per ``(source_tei, link_id)``; ``mpdu_count`` counts
    MPDUs *remaining* in the burst, so a row with ``mpdu_count == 0``
    closes its burst.  Incomplete tails (capture truncated mid-burst)
    are returned with ``complete=False``.
    """
    open_bursts: Dict[Any, _SofBurst] = {}
    bursts: List[_SofBurst] = []
    for row in rows:
        key = (row["source_tei"], row["link_id"])
        burst = open_bursts.get(key)
        if burst is None:
            burst = open_bursts[key] = _SofBurst(
                source_tei=row["source_tei"],
                link_id=row["link_id"],
                start_us=row["timestamp_us"],
                collided=bool(row["collided"]),
                mpdus=0,
                complete=True,
            )
        burst.mpdus += 1
        burst.collided = burst.collided or bool(row["collided"])
        if row["mpdu_count"] == 0:
            bursts.append(burst)
            del open_bursts[key]
    for burst in open_bursts.values():
        burst.complete = False
        bursts.append(burst)
    bursts.sort(key=lambda b: b.start_us)
    return [dataclasses.asdict(burst) for burst in bursts]


def analyze_sof_trace(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Round outcomes from the wire-visible SoF stream alone.

    Colliding bursts start at the identical instant (the shared slot
    boundary), so collision *rounds* are groups of collided bursts with
    equal start time — the way the §3.2 sniffer methodology turns
    delimiter logs into collision counts.
    """
    bursts = sof_bursts(rows)
    successes = sum(1 for b in bursts if not b["collided"])
    collision_starts = {b["start_us"] for b in bursts if b["collided"]}
    collisions = len(collision_starts)
    return {
        "bursts": len(bursts),
        "mpdus": len(rows),
        "successes": successes,
        "collisions": collisions,
        "collision_probability": core_metrics.collision_probability(
            collisions, collisions + successes
        ),
        "sources": sorted({b["source_tei"] for b in bursts}),
    }


# -- cross-checking against the direct ground truth ----------------------
@dataclasses.dataclass
class CrossCheckRow:
    """One metric compared between trace and direct computation."""

    metric: str
    trace: float
    direct: float

    @property
    def abs_err(self) -> float:
        return abs(self.trace - self.direct)

    def within(self, tolerance: float = 1e-9) -> bool:
        if self.trace != self.trace and self.direct != self.direct:
            return True  # both NaN: degenerate metric agrees
        return self.abs_err <= tolerance

    def as_jsonable(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "trace": self.trace,
            "direct": self.direct,
            "abs_err": self.abs_err,
        }


def cross_check(
    events: Sequence[Dict[str, Any]], round_log: Any
) -> List[CrossCheckRow]:
    """Compare trace-derived metrics against a ``RoundLog``.

    Returns one row per metric: slot counts, collision probability,
    per-TEI airtime, and the Jain index over airtime.  All rows must
    satisfy ``row.within(1e-9)`` on a correct trace.
    """
    counts = slot_counts(events)
    airtime = airtime_by_source_from_trace(events)
    rows = [
        CrossCheckRow("idle_slots", counts["idle"], round_log.idle_slots),
        CrossCheckRow("successes", counts["success"], round_log.successes),
        CrossCheckRow(
            "collisions", counts["collision"], round_log.collisions
        ),
        CrossCheckRow(
            "collision_probability",
            collision_probability_from_trace(events),
            core_metrics.collision_probability(
                round_log.collisions,
                round_log.collisions + round_log.successes,
            ),
        ),
    ]
    teis = sorted(set(airtime) | set(round_log.airtime_by_source))
    for tei in teis:
        rows.append(
            CrossCheckRow(
                f"airtime_us[{tei}]",
                airtime.get(tei, 0.0),
                round_log.airtime_by_source.get(tei, 0.0),
            )
        )
    direct_shares = [round_log.airtime_by_source.get(tei, 0.0) for tei in teis]
    rows.append(
        CrossCheckRow(
            "jain_airtime",
            jain_index_from_trace(events),
            core_metrics.jain_index(direct_shares)
            if direct_shares
            else float("nan"),
        )
    )
    return rows
