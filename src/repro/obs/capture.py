"""Capture orchestration: attach probes/exporters to a whole run.

:class:`ObsConfig` is the JSON-able "what to capture" description that
rides inside runner task payloads (``payload["obs"]``), so parallel
sweeps can capture traces per point; :class:`ObsSession` attaches the
probe, recorders, metrics and profiler to a built testbed and
:meth:`ObsSession.finalize` flushes all artifacts to disk.

:func:`observed_collision_test` wraps the §3.2 measurement procedure
with a capture session and returns the test result together with the
artifact paths and a trace-vs-``RoundLog`` cross-check — the
self-validation the ``repro-plc trace`` CLI subcommand surfaces.

Experiment modules are imported lazily inside functions: this module
is imported from ``repro.obs`` (and transitively from the runner),
while ``repro.experiments`` imports the runner at module level.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .analyze import cross_check
from .probe import deinstrument, instrument_testbed
from .profiler import EngineProfiler
from .registry import ProbeMetrics
from .trace import MacTraceRecorder, SofTraceRecorder

__all__ = ["ObsConfig", "ObsSession", "observe_testbed", "observed_collision_test"]


@dataclasses.dataclass(frozen=True)
class ObsConfig:
    """What to capture for one run (JSON-able, cache-key friendly).

    >>> config = ObsConfig(dir="/tmp/obs", label="rep0")
    >>> ObsConfig.from_jsonable(config.as_jsonable()) == config
    True
    """

    #: Directory receiving all artifacts (created on demand).
    dir: str
    mac_trace: bool = True
    sof_trace: bool = True
    profile: bool = False
    metrics: bool = False
    #: Distinguishes artifacts of repeated runs in one directory.
    label: str = ""

    def _path(self, stem: str, suffix: str) -> Path:
        tag = f"_{self.label}" if self.label else ""
        return Path(self.dir) / f"{stem}{tag}{suffix}"

    @property
    def mac_trace_path(self) -> Path:
        return self._path("mac_trace", ".jsonl")

    @property
    def sof_trace_path(self) -> Path:
        return self._path("sof_trace", ".jsonl")

    @property
    def profile_path(self) -> Path:
        return self._path("profile", ".json")

    @property
    def metrics_path(self) -> Path:
        return self._path("metrics", ".json")

    @property
    def chaos_ledger_path(self) -> Path:
        return self._path("chaos_ledger", ".jsonl")

    def as_jsonable(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(
        cls, data: Union["ObsConfig", Dict[str, Any]]
    ) -> "ObsConfig":
        if isinstance(data, cls):
            return data
        return cls(**data)


class ObsSession:
    """All observability hooks of one run, attached and ready.

    Attaches a probe (clocked on the testbed's environment) plus the
    recorders/profiler selected by the config.  Call
    :meth:`finalize` once the run is over to detach everything and
    flush the artifacts.
    """

    def __init__(self, testbed: Any, config: Union[ObsConfig, Dict[str, Any]]) -> None:
        self.testbed = testbed
        self.config = ObsConfig.from_jsonable(config)
        self.probe = instrument_testbed(testbed)
        self.mac_recorder: Optional[MacTraceRecorder] = None
        self.sof_recorder: Optional[SofTraceRecorder] = None
        self.metrics: Optional[ProbeMetrics] = None
        self.profiler: Optional[EngineProfiler] = None
        if self.config.mac_trace:
            self.mac_recorder = MacTraceRecorder()
            self.probe.subscribe(self.mac_recorder)
        if self.config.sof_trace:
            self.sof_recorder = SofTraceRecorder()
            self.probe.subscribe(self.sof_recorder)
        if self.config.metrics:
            self.metrics = ProbeMetrics()
            self.probe.subscribe(self.metrics)
        if self.config.profile:
            self.profiler = EngineProfiler().attach(testbed.env)
        self._finalized = False

    def finalize(self) -> Dict[str, Any]:
        """Detach all hooks, flush artifacts, return their paths."""
        if self._finalized:
            raise RuntimeError("ObsSession already finalized")
        self._finalized = True
        config = self.config
        paths: Dict[str, str] = {}
        summary: Dict[str, Any] = {"paths": paths}
        if self.profiler is not None:
            self.profiler.detach()
            report = self.profiler.report()
            config.profile_path.parent.mkdir(parents=True, exist_ok=True)
            config.profile_path.write_text(
                json.dumps(report.as_dict(), indent=2) + "\n"
            )
            paths["profile"] = str(config.profile_path)
            summary["profile"] = report.as_dict()
        if self.mac_recorder is not None:
            self.mac_recorder.flush_jsonl(config.mac_trace_path)
            paths["mac_trace"] = str(config.mac_trace_path)
            summary["mac_events"] = len(self.mac_recorder)
        if self.sof_recorder is not None:
            self.sof_recorder.flush_jsonl(config.sof_trace_path)
            paths["sof_trace"] = str(config.sof_trace_path)
            summary["sof_rows"] = len(self.sof_recorder)
        if self.metrics is not None:
            config.metrics_path.parent.mkdir(parents=True, exist_ok=True)
            config.metrics_path.write_text(
                json.dumps(self.metrics.registry.as_dict(), indent=2) + "\n"
            )
            paths["metrics"] = str(config.metrics_path)
        deinstrument(
            coordinator=self.testbed.avln.coordinator,
            strip=self.testbed.avln.strip,
            nodes=[device.node for device in self.testbed.avln.devices],
        )
        return summary


def observe_testbed(
    testbed: Any, config: Union[ObsConfig, Dict[str, Any]]
) -> ObsSession:
    """Attach a capture session to a built testbed."""
    return ObsSession(testbed, config)


def observed_collision_test(
    num_stations: int,
    obs: Union[ObsConfig, Dict[str, Any]],
    duration_us: Optional[float] = None,
    warmup_us: Optional[float] = None,
    seed: int = 1,
    **testbed_kwargs,
):
    """One §3.2 collision test with full capture.

    The probe is attached *before* the warm-up so the MAC trace covers
    exactly the span the coordinator's :class:`RoundLog` aggregates —
    which is what makes the returned ``cross_check`` exact (1e-9).

    Returns ``(test, capture)`` where ``test`` is the usual
    :class:`~repro.experiments.procedures.CollisionTest` and
    ``capture`` extends :meth:`ObsSession.finalize`'s summary with the
    final ``round_log`` counters and the cross-check rows.
    """
    from ..experiments.procedures import (
        DEFAULT_TEST_DURATION_US,
        DEFAULT_WARMUP_US,
        run_collision_test,
    )
    from ..experiments.testbed import build_testbed

    if duration_us is None:
        duration_us = DEFAULT_TEST_DURATION_US
    if warmup_us is None:
        warmup_us = DEFAULT_WARMUP_US

    testbed = build_testbed(num_stations, seed=seed, **testbed_kwargs)
    session = ObsSession(testbed, obs)
    test = run_collision_test(
        num_stations,
        duration_us=duration_us,
        warmup_us=warmup_us,
        seed=seed,
        testbed=testbed,
    )
    capture = session.finalize()
    round_log = testbed.avln.coordinator.log
    capture["round_log"] = round_log.as_dict()
    if session.mac_recorder is not None:
        rows = cross_check(session.mac_recorder.events, round_log)
        capture["cross_check"] = [row.as_jsonable() for row in rows]
        capture["cross_check_ok"] = all(row.within(1e-9) for row in rows)
    return test, capture
