"""The in-simulation probe: a lightweight MAC/PHY event bus.

Instrumented hot paths (:class:`~repro.core.station.Station`,
:class:`~repro.mac.node.MacNode`,
:class:`~repro.mac.coordinator.ContentionCoordinator`,
:class:`~repro.phy.channel.PowerStrip`) each hold a ``probe``
attribute that is ``None`` by default.  The **disabled fast path** is
the ``probe is not None`` guard: with no probe attached, the only cost
the instrumentation adds to a simulation is one attribute load and an
identity check per instrumented site — no event dict is ever built, no
call is made.  ``tests/obs/test_overhead.py`` bounds that cost at
under 5 % of a fixed Table-2 point and
``benchmarks/bench_observability.py`` measures it.

When a :class:`MacProbe` *is* attached, instrumented sites build one
plain-dict event and hand it to :meth:`MacProbe.emit`, which stamps
the simulation time (``t_us``, from the probe's clock) and fans the
event out to every subscriber.  Subscribers are plain callables —
trace recorders (:mod:`repro.obs.trace`), the metrics adapter
(:class:`repro.obs.registry.ProbeMetrics`), or ad-hoc lambdas in
tests.

Event vocabulary (the ``event`` key of every dict):

===============  ============================================================
``backoff_stage``  a station redrew BC: new ``stage``/``cw``/``bc``/``dc``,
                   with ``bpc`` counted *before* the redraw incremented it
``dc_jump``        deferral-counter expiry: stage jump without an attempt
``defer``          busy-slot BC/DC decrement (values after the decrement)
``prs``            one priority-resolution phase: ``winning`` class,
                   ``pending``/``contenders`` counts
``slot``           one contention slot event: ``outcome`` of ``idle`` /
                   ``success`` / ``collision``; transmissions carry
                   their ``sources`` (TEIs) and total ``mpdus``
``airtime``        one busy-airtime quantum attributed to a TEI —
                   emitted adjacent to each ``RoundLog.add_airtime``
                   call, same value and order, so trace-side sums are
                   bitwise-equal to the direct accumulation
``sof``            one SoF delimiter on the wire (sniffer observables:
                   ``timestamp_us``, TEIs, ``link_id``, ``mpdu_count``,
                   ``frame_length_bytes``, ``num_blocks``, ``collided``)
``sack``           a selective acknowledgment delivered to a node
``queue``          queue occupancy after an enqueue (``depth``)
===============  ============================================================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = ["MacProbe", "instrument", "instrument_testbed", "deinstrument"]


def _zero_clock() -> float:
    return 0.0


class MacProbe:
    """Fan-out bus for structured MAC/PHY events.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time in
        µs (usually ``lambda: env.now``).  Every emitted event is
        stamped with it under ``t_us``.
    """

    __slots__ = ("clock", "_subscribers")

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock: Callable[[], float] = clock or _zero_clock
        self._subscribers: List[Callable[[Dict[str, Any]], None]] = []

    def __repr__(self) -> str:
        return f"<MacProbe subscribers={len(self._subscribers)}>"

    # -- subscriptions ---------------------------------------------------
    @property
    def subscribers(self) -> int:
        return len(self._subscribers)

    def subscribe(self, callback: Callable[[Dict[str, Any]], None]) -> None:
        """Register ``callback`` to receive every emitted event."""
        if callback in self._subscribers:
            raise ValueError("callback already subscribed")
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Dict[str, Any]], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    # -- emission --------------------------------------------------------
    def emit(self, event: Dict[str, Any]) -> None:
        """Stamp ``event`` with ``t_us`` and deliver it to subscribers.

        With no subscribers the event is dropped without being stamped
        (the secondary fast path; the primary one is the caller's
        ``probe is not None`` guard, which avoids building the dict at
        all).
        """
        subscribers = self._subscribers
        if not subscribers:
            return
        event["t_us"] = self.clock()
        for callback in subscribers:
            callback(event)


def instrument(
    probe: MacProbe,
    coordinator=None,
    strip=None,
    nodes: Iterable = (),
) -> MacProbe:
    """Attach ``probe`` to already-built simulation components.

    Sets the ``probe`` attribute of the contention coordinator, the
    power strip, and each MAC node (which propagates to the per-priority
    backoff stations).  Pass ``probe=None``-detaching is done with
    :func:`deinstrument`.
    """
    if coordinator is not None:
        coordinator.probe = probe
    if strip is not None:
        strip.probe = probe
    for node in nodes:
        node.set_probe(probe)
    return probe


def instrument_testbed(testbed, probe: Optional[MacProbe] = None) -> MacProbe:
    """Attach a probe to every layer of a built testbed.

    Covers the coordinator (PRS/slot events), the strip (SoF events)
    and all device MAC nodes (backoff, SACK and queue events).  Returns
    the probe (a fresh one clocked on ``testbed.env`` if none given).
    """
    if probe is None:
        probe = MacProbe(clock=lambda: testbed.env.now)
    return instrument(
        probe,
        coordinator=testbed.avln.coordinator,
        strip=testbed.avln.strip,
        nodes=[device.node for device in testbed.avln.devices],
    )


def deinstrument(coordinator=None, strip=None, nodes: Iterable = ()) -> None:
    """Detach probes from components (restores the disabled fast path)."""
    if coordinator is not None:
        coordinator.probe = None
    if strip is not None:
        strip.probe = None
    for node in nodes:
        node.set_probe(None)
