"""Engine profiler: where does the event loop spend its wall time?

:class:`EngineProfiler` attaches to an
:class:`~repro.engine.Environment` as its monitor (the ``is not None``
guard in ``Environment.step`` is the disabled fast path) and times the
callback dispatch of every processed event.  Events are classified by
*process type*: the generator name of the process the event resumes
(``_beacon_process``, ``_run``, ``_channel_est_process``, …), falling
back to the event class name for bare events.

The :class:`ProfileReport` answers the ROADMAP's perf questions
directly: events processed per wall-second, simulated µs advanced per
wall-second, and the wall-time share of each process type —
``benchmarks/bench_observability.py`` persists it as ``BENCH_*.json``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional

__all__ = ["EngineProfiler", "ProfileReport"]


def _event_label(event: Any) -> str:
    """Process-type label for a scheduled event.

    A :class:`~repro.engine.process.Process` completion event carries
    its own generator; other events are attributed to the process they
    resume (their callbacks are bound ``Process._resume`` methods).
    Runs in :meth:`Environment.step` *before* the callback swap, so
    ``event.callbacks`` is still intact.
    """
    generator = getattr(event, "_generator", None)
    if generator is not None:
        return getattr(generator, "__name__", "process")
    callbacks = event.callbacks
    if callbacks:
        for callback in callbacks:
            owner = getattr(callback, "__self__", None)
            generator = getattr(owner, "_generator", None)
            if generator is not None:
                return getattr(generator, "__name__", "process")
    return type(event).__name__


@dataclasses.dataclass
class ProfileReport:
    """Aggregated engine-profiling results (JSON-able via as_dict)."""

    total_events: int
    wall_s: float
    sim_us: float
    events_per_sec: float
    sim_us_per_wall_s: float
    #: label → {"count": int, "wall_s": float, "share": float}
    by_label: Dict[str, Dict[str, float]]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total_events": self.total_events,
            "wall_s": self.wall_s,
            "sim_us": self.sim_us,
            "events_per_sec": self.events_per_sec,
            "sim_us_per_wall_s": self.sim_us_per_wall_s,
            "by_label": {
                label: dict(entry) for label, entry in self.by_label.items()
            },
        }

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"events processed : {self.total_events}",
            f"wall time        : {self.wall_s:.3f} s",
            f"simulated time   : {self.sim_us:.0f} us",
            f"events/sec       : {self.events_per_sec:,.0f}",
            f"sim-us per wall-s: {self.sim_us_per_wall_s:,.0f}",
            "",
            f"{'process type':<28} {'events':>10} {'wall s':>10} {'share':>7}",
        ]
        ranked = sorted(
            self.by_label.items(),
            key=lambda item: item[1]["wall_s"],
            reverse=True,
        )
        for label, entry in ranked:
            lines.append(
                f"{label:<28} {int(entry['count']):>10} "
                f"{entry['wall_s']:>10.4f} {entry['share']:>6.1%}"
            )
        return "\n".join(lines)


class EngineProfiler:
    """Environment monitor timing every event's callback dispatch.

    Usage::

        profiler = EngineProfiler()
        profiler.attach(env)
        env.run(until=...)
        profiler.detach()
        print(profiler.report().format())
    """

    def __init__(self) -> None:
        self._by_label: Dict[str, List[float]] = {}  # label -> [count, wall]
        self.total_events = 0
        self._env: Optional[Any] = None
        self._wall_start: Optional[float] = None
        self._sim_start = 0.0
        self._wall_total = 0.0
        self._sim_total = 0.0
        self._current_label = ""
        self._current_start = 0.0

    # -- lifecycle -------------------------------------------------------
    def attach(self, env: Any) -> "EngineProfiler":
        """Install as ``env``'s monitor and start the wall/sim clocks."""
        env.set_monitor(self)
        self._env = env
        self._wall_start = time.perf_counter()
        self._sim_start = env.now
        return self

    def detach(self) -> None:
        """Uninstall and fold the elapsed wall/sim spans into totals."""
        if self._env is None:
            return
        self._wall_total += time.perf_counter() - self._wall_start
        self._sim_total += self._env.now - self._sim_start
        self._env.set_monitor(None)
        self._env = None
        self._wall_start = None

    # -- Environment monitor hooks --------------------------------------
    def event_begin(self, event: Any) -> None:
        self._current_label = _event_label(event)
        self._current_start = time.perf_counter()

    def event_end(self, event: Any) -> None:
        elapsed = time.perf_counter() - self._current_start
        entry = self._by_label.get(self._current_label)
        if entry is None:
            entry = self._by_label[self._current_label] = [0, 0.0]
        entry[0] += 1
        entry[1] += elapsed
        self.total_events += 1

    # -- results ---------------------------------------------------------
    def report(self) -> ProfileReport:
        """Snapshot the profile (attach-to-now if still attached)."""
        wall = self._wall_total
        sim = self._sim_total
        if self._env is not None:
            wall += time.perf_counter() - self._wall_start
            sim += self._env.now - self._sim_start
        dispatch_total = sum(entry[1] for entry in self._by_label.values())
        by_label = {
            label: {
                "count": entry[0],
                "wall_s": entry[1],
                "share": entry[1] / dispatch_total if dispatch_total else 0.0,
            }
            for label, entry in self._by_label.items()
        }
        return ProfileReport(
            total_events=self.total_events,
            wall_s=wall,
            sim_us=sim,
            events_per_sec=self.total_events / wall if wall > 0 else 0.0,
            sim_us_per_wall_s=sim / wall if wall > 0 else 0.0,
            by_label=by_label,
        )
