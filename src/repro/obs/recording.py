"""Shared event-record conventions: ordered logs with JSONL export.

Every trace producer in the repo — the runner's task-lifecycle
:class:`~repro.runner.telemetry.TraceRecorder`, the MAC trace and the
SoF trace of :mod:`repro.obs.trace` — follows the same contract:

- events are collected **in record order** on an ``events`` list;
- each event serializes via ``as_jsonable()`` (dataclasses drop
  ``None`` fields; plain dicts pass through);
- ``flush_jsonl`` **appends** one JSON object per line and only writes
  events recorded since the last flush, so a recorder shared across
  several runs keeps one coherent trace file.

:class:`JsonlEventLog` implements that contract once; recorders either
subclass it or hold one, instead of re-growing drifting copies of the
append/serialize logic.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = ["as_jsonable", "append_jsonl", "read_jsonl", "JsonlEventLog"]


def _telemetry_ids() -> Optional[Dict[str, str]]:
    """The active telemetry ``run_id``/``span_id`` stamp, if any.

    Looked up through ``sys.modules`` rather than imported: when
    :mod:`repro.telemetry.context` was never loaded there is no active
    run by definition, and this costs one dict lookup — no import, no
    cycle (telemetry imports this module), no overhead for
    telemetry-free runs.
    """
    module = sys.modules.get("repro.telemetry.context")
    if module is None:
        return None
    return module.current_ids()


def as_jsonable(record: Any) -> Dict[str, Any]:
    """One event record as a JSON-serializable dict.

    Dataclasses are converted field-by-field with ``None`` fields
    dropped (absent-field convention: optional fields simply do not
    appear on the line); mappings pass through unchanged; objects
    providing their own ``as_jsonable()`` are deferred to.
    """
    method = getattr(record, "as_jsonable", None)
    if method is not None:
        return method()
    if dataclasses.is_dataclass(record) and not isinstance(record, type):
        return {
            key: value
            for key, value in dataclasses.asdict(record).items()
            if value is not None
        }
    if isinstance(record, dict):
        return record
    raise TypeError(
        f"cannot serialize event record of type {type(record).__name__}"
    )


def append_jsonl(path: Union[str, Path], records: Iterable[Any]) -> int:
    """Append ``records`` to ``path``, one JSON object per line.

    Parent directories are created on demand.  Returns the number of
    lines written.

    This is the single choke point every JSONL family flushes through
    (runner traces, MAC/SoF traces, chaos ledgers, checkpoint
    journals): when a telemetry run is active, each line gains the
    run's ``run_id``/``span_id`` so all streams of one run can be
    joined post hoc.  Records that already carry a ``run_id`` (span
    records, worker-annotated events) keep their own.
    """
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    ids = _telemetry_ids()
    written = 0
    with path.open("a", encoding="utf-8") as handle:
        for record in records:
            payload = as_jsonable(record)
            if ids is not None and "run_id" not in payload:
                payload = dict(payload)
                payload.update(ids)
            handle.write(json.dumps(payload) + "\n")
            written += 1
    return written


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a JSONL event file back into a list of dicts."""
    rows: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


class JsonlEventLog:
    """Ordered event collector with incremental JSONL flushing.

    ``flush_jsonl`` appends only the events recorded since the last
    flush, so one log instance can back a long-running recorder that
    periodically persists its tail.
    """

    def __init__(self) -> None:
        self.events: List[Any] = []
        self._flushed = 0

    def __len__(self) -> int:
        return len(self.events)

    def append(self, record: Any) -> Any:
        """Append one event record and return it."""
        self.events.append(record)
        return record

    def flush_jsonl(self, path: Union[str, Path]) -> int:
        """Append unflushed events to ``path``; return how many."""
        fresh = self.events[self._flushed:]
        if not fresh:
            return 0
        written = append_jsonl(path, fresh)
        self._flushed = len(self.events)
        return written
