"""Shared event-record conventions: ordered logs with JSONL export.

Every trace producer in the repo — the runner's task-lifecycle
:class:`~repro.runner.telemetry.TraceRecorder`, the MAC trace and the
SoF trace of :mod:`repro.obs.trace` — follows the same contract:

- events are collected **in record order** on an ``events`` list;
- each event serializes via ``as_jsonable()`` (dataclasses drop
  ``None`` fields; plain dicts pass through);
- ``flush_jsonl`` **appends** one JSON object per line and only writes
  events recorded since the last flush, so a recorder shared across
  several runs keeps one coherent trace file.

:class:`JsonlEventLog` implements that contract once; recorders either
subclass it or hold one, instead of re-growing drifting copies of the
append/serialize logic.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

__all__ = ["as_jsonable", "append_jsonl", "read_jsonl", "JsonlEventLog"]


def as_jsonable(record: Any) -> Dict[str, Any]:
    """One event record as a JSON-serializable dict.

    Dataclasses are converted field-by-field with ``None`` fields
    dropped (absent-field convention: optional fields simply do not
    appear on the line); mappings pass through unchanged; objects
    providing their own ``as_jsonable()`` are deferred to.
    """
    method = getattr(record, "as_jsonable", None)
    if method is not None:
        return method()
    if dataclasses.is_dataclass(record) and not isinstance(record, type):
        return {
            key: value
            for key, value in dataclasses.asdict(record).items()
            if value is not None
        }
    if isinstance(record, dict):
        return record
    raise TypeError(
        f"cannot serialize event record of type {type(record).__name__}"
    )


def append_jsonl(path: Union[str, Path], records: Iterable[Any]) -> int:
    """Append ``records`` to ``path``, one JSON object per line.

    Parent directories are created on demand.  Returns the number of
    lines written.
    """
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with path.open("a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(as_jsonable(record)) + "\n")
            written += 1
    return written


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a JSONL event file back into a list of dicts."""
    rows: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


class JsonlEventLog:
    """Ordered event collector with incremental JSONL flushing.

    ``flush_jsonl`` appends only the events recorded since the last
    flush, so one log instance can back a long-running recorder that
    periodically persists its tail.
    """

    def __init__(self) -> None:
        self.events: List[Any] = []
        self._flushed = 0

    def __len__(self) -> int:
        return len(self.events)

    def append(self, record: Any) -> Any:
        """Append one event record and return it."""
        self.events.append(record)
        return record

    def flush_jsonl(self, path: Union[str, Path]) -> int:
        """Append unflushed events to ``path``; return how many."""
        fresh = self.events[self._flushed:]
        if not fresh:
            return 0
        written = append_jsonl(path, fresh)
        self._flushed = len(self.events)
        return written
