"""A metrics registry: labelled counters, gauges and histograms.

Experiments, the boost search and tests can read these **mid-run** —
unlike :class:`~repro.mac.coordinator.RoundLog`, which only aggregates
totals, the registry keeps labelled series (per-TEI, per-backoff-stage,
per-outcome) and snapshots cheaply via :meth:`MetricsRegistry.as_dict`.

:class:`ProbeMetrics` is the bridge from the in-simulation probe
(:mod:`repro.obs.probe`) to the registry: subscribe it to a
:class:`~repro.obs.probe.MacProbe` and the standard MAC metric set
fills itself as the simulation runs.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProbeMetrics",
]

LabelKey = Tuple[str, ...]


class _Metric:
    """Common machinery of one named, labelled metric."""

    kind = "metric"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help = help
        self.labelnames: LabelKey = tuple(labelnames)

    def _key(self, labels: Dict[str, Any]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_Metric):
    """Monotonically increasing value, one series per label set.

    >>> c = Counter("slots_total", labelnames=("outcome",))
    >>> c.inc(outcome="idle"); c.inc(2, outcome="idle")
    >>> c.value(outcome="idle")
    3.0
    """

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label series."""
        return sum(self._values.values())

    def series(self) -> Dict[LabelKey, float]:
        """Label tuple → value, a shallow copy."""
        return dict(self._values)

    def reset(self) -> None:
        self._values.clear()

    def as_jsonable(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "labelnames": list(self.labelnames),
            "series": {
                ",".join(key) if key else "": value
                for key, value in sorted(self._values.items())
            },
        }


class Gauge(Counter):
    """A value that can go up and down (queue depth, window size)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels: Any) -> None:
        self._values[self._key(labels)] = float(value)


#: Default histogram buckets: µs-scale quantities spanning a slot
#: (35.84 µs) through a full 1901 transmission (~3000 µs) and beyond.
DEFAULT_BUCKETS = (
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0,
    10_000.0, 50_000.0, 100_000.0,
)


@dataclasses.dataclass
class _HistogramSeries:
    counts: List[int]
    total: float = 0.0
    count: int = 0
    minimum: float = math.inf
    maximum: float = -math.inf


class Histogram(_Metric):
    """Bucketed distribution with per-label series.

    >>> h = Histogram("airtime_us", buckets=(10.0, 100.0))
    >>> for v in (5.0, 50.0, 500.0): h.observe(v)
    >>> h.snapshot()["counts"]
    [1, 1, 1]
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(
                counts=[0] * (len(self.buckets) + 1)
            )
        series.counts[bisect.bisect_left(self.buckets, value)] += 1
        series.total += value
        series.count += 1
        series.minimum = min(series.minimum, value)
        series.maximum = max(series.maximum, value)

    def quantile(self, q: float, **labels: Any) -> float:
        """Estimate the ``q``-quantile (0..1) of one label series.

        Linear interpolation inside the bucket holding the target rank,
        with bucket edges tightened by the observed min/max — so p50 of
        a single observation is that observation, not a bucket midpoint.
        Empty series yield NaN.

        >>> h = Histogram("d_us", buckets=(10.0, 100.0))
        >>> for v in (2.0, 4.0, 6.0, 8.0): h.observe(v)
        >>> h.quantile(0.5)
        5.0
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile q must be in [0, 1]")
        return self._quantile_of(self._series.get(self._key(labels)), q)

    def _quantile_of(
        self, series: Optional[_HistogramSeries], q: float
    ) -> float:
        if series is None or series.count == 0:
            return float("nan")
        if q <= 0.0:
            return series.minimum
        if q >= 1.0:
            return series.maximum
        target = q * series.count
        cumulative = 0
        for index, bucket_count in enumerate(series.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = series.minimum if index == 0 else self.buckets[index - 1]
                upper = (
                    series.maximum
                    if index == len(self.buckets)
                    else self.buckets[index]
                )
                lower = max(lower, series.minimum)
                upper = min(upper, series.maximum)
                if upper <= lower:
                    return lower
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return series.maximum

    def quantiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99), **labels):
        """``{"p50": ..., "p95": ...}`` for the requested quantiles."""
        return {f"p{q * 100:g}": self.quantile(q, **labels) for q in qs}

    def snapshot(self, **labels: Any) -> Dict[str, Any]:
        """Counts/sum/mean/quantiles for one label series (zeros when empty)."""
        series = self._series.get(self._key(labels))
        if series is None:
            return {
                "buckets": list(self.buckets),
                "counts": [0] * (len(self.buckets) + 1),
                "count": 0,
                "sum": 0.0,
                "mean": float("nan"),
            }
        return {
            "buckets": list(self.buckets),
            "counts": list(series.counts),
            "count": series.count,
            "sum": series.total,
            "mean": series.total / series.count,
            "min": series.minimum,
            "max": series.maximum,
            "p50": self.quantile(0.5, **labels),
            "p95": self.quantile(0.95, **labels),
            "p99": self.quantile(0.99, **labels),
        }

    def reset(self) -> None:
        self._series.clear()

    def as_jsonable(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "labelnames": list(self.labelnames),
            "buckets": list(self.buckets),
            "series": {
                ",".join(key) if key else "": {
                    "counts": list(series.counts),
                    "count": series.count,
                    "sum": series.total,
                    "p50": self._quantile_of(series, 0.5),
                    "p95": self._quantile_of(series, 0.95),
                    "p99": self._quantile_of(series, 0.99),
                }
                for key, series in sorted(self._series.items())
            },
        }


class MetricsRegistry:
    """Named collection of metrics with get-or-create semantics.

    Re-requesting an existing name returns the existing metric (so
    independent subsystems can share series) but mismatched kinds or
    label names raise immediately.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def __iter__(self) -> Iterator[_Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> _Metric:
        return self._metrics[name]

    def _register(self, cls, name, help, labelnames, **kwargs) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(
                labelnames
            ):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels {existing.labelnames}"
                )
            return existing
        metric = cls(name, help=help, labelnames=labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def reset(self) -> None:
        """Zero every metric (keeps the registrations)."""
        for metric in self._metrics.values():
            metric.reset()  # type: ignore[attr-defined]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot of every metric, safe to take mid-run."""
        return {
            name: metric.as_jsonable()  # type: ignore[attr-defined]
            for name, metric in sorted(self._metrics.items())
        }


class ProbeMetrics:
    """Probe subscriber maintaining the standard MAC metric set.

    Subscribe an instance to a :class:`~repro.obs.probe.MacProbe`
    (``probe.subscribe(metrics)``) and read the registry at any point
    of the run::

        metrics = ProbeMetrics()
        probe.subscribe(metrics)
        ...
        metrics.slots.value(outcome="collision")
        metrics.registry.as_dict()
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.slots = r.counter(
            "mac_slots_total", "slot events by outcome", ("outcome",)
        )
        self.prs_phases = r.counter(
            "mac_prs_phases_total", "priority-resolution phases", ()
        )
        self.transmissions = r.counter(
            "mac_transmissions_total",
            "bursts put on the wire, by source TEI and outcome",
            ("source_tei", "outcome"),
        )
        self.airtime = r.counter(
            "mac_airtime_us_total", "busy airtime by source TEI", ("source_tei",)
        )
        self.stage_entries = r.counter(
            "mac_backoff_stage_entries_total",
            "backoff redraws by stage",
            ("stage",),
        )
        self.dc_jumps = r.counter(
            "mac_dc_jumps_total", "deferral-counter stage jumps", ()
        )
        self.sacks = r.counter(
            "mac_sacks_total", "SACKs delivered, by outcome", ("outcome",)
        )
        self.queue_depth = r.gauge(
            "mac_queue_depth", "queue occupancy after enqueue", ("station",)
        )
        self.burst_airtime = r.histogram(
            "mac_burst_airtime_us",
            "busy-airtime quanta (per MPDU on success, per burst on collision)",
            (),
        )

    def __call__(self, event: Dict[str, Any]) -> None:
        kind = event["event"]
        if kind == "slot":
            outcome = event["outcome"]
            self.slots.inc(outcome=outcome)
            for tei in event.get("sources", ()):
                self.transmissions.inc(source_tei=tei, outcome=outcome)
        elif kind == "airtime":
            self.airtime.inc(event["airtime_us"], source_tei=event["source_tei"])
            self.burst_airtime.observe(event["airtime_us"])
        elif kind == "backoff_stage":
            self.stage_entries.inc(stage=event["stage"])
        elif kind == "dc_jump":
            self.dc_jumps.inc()
        elif kind == "prs":
            self.prs_phases.inc()
        elif kind == "sack":
            self.sacks.inc(outcome=event["outcome"])
        elif kind == "queue":
            self.queue_depth.set(event["depth"], station=event["station"])
