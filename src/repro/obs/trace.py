"""Trace exporters: JSONL MAC trace and sniffer-compatible SoF trace.

Both recorders are probe subscribers (see :mod:`repro.obs.probe`) built
on the shared event-record conventions of :mod:`repro.obs.recording`:

- :class:`MacTraceRecorder` keeps **every** probe event (backoff-stage
  transitions, deferral decrements, PRS outcomes, slot outcomes, SoFs,
  SACKs, queue depths) as one JSON object per line, in emission order —
  the full protocol-level history :mod:`repro.obs.analyze` recomputes
  the paper's metrics from.
- :class:`SofTraceRecorder` keeps only the wire-visible subset: one row
  per SoF delimiter, with exactly the
  :class:`~repro.hpav.mme_types.SnifferIndication` field set the §3
  testbed's faifa sniffer logs.  A simulation trace and a (hypothetical)
  hardware capture are therefore row-compatible.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Union

from .recording import JsonlEventLog, read_jsonl

__all__ = [
    "MacTraceRecorder",
    "SofTraceRecorder",
    "SOF_TRACE_FIELDS",
    "load_mac_trace",
    "load_sof_trace",
]

#: Row schema of the SoF trace (the §3.3 sniffer observables, in the
#: order of :class:`repro.hpav.mme_types.SnifferIndication`).
SOF_TRACE_FIELDS = (
    "timestamp_us",
    "source_tei",
    "dest_tei",
    "link_id",
    "mpdu_count",
    "frame_length_bytes",
    "num_blocks",
    "collided",
)


class MacTraceRecorder(JsonlEventLog):
    """Probe subscriber recording the full MAC event stream.

    Subscribe to a probe and flush at any point::

        recorder = MacTraceRecorder()
        probe.subscribe(recorder)
        env.run(until=...)
        recorder.flush_jsonl("mac_trace.jsonl")
    """

    def __call__(self, event: Dict[str, Any]) -> None:
        # Copy: the probe hands subscribers one shared dict per event.
        self.append(dict(event))


class SofTraceRecorder(JsonlEventLog):
    """Probe subscriber recording only SoF delimiters, sniffer-style.

    Rows carry exactly :data:`SOF_TRACE_FIELDS` — what a sniffer-mode
    station on the §3 power strip observes of each delimiter.
    """

    def __call__(self, event: Dict[str, Any]) -> None:
        if event.get("event") != "sof":
            return
        self.append({field: event[field] for field in SOF_TRACE_FIELDS})


def load_mac_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a MAC trace JSONL file back into event dicts."""
    return read_jsonl(path)


def load_sof_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a SoF trace JSONL file; validates the row schema."""
    rows = read_jsonl(path)
    for index, row in enumerate(rows):
        missing = [field for field in SOF_TRACE_FIELDS if field not in row]
        if missing:
            raise ValueError(
                f"SoF trace row {index} is missing fields {missing}"
            )
    return rows
