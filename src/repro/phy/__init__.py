"""HomePlug AV PHY substrate: framing, timing and the shared medium."""

from .bitloading import (
    AV_MODULATIONS,
    DEFAULT_STRIP_SNR_DB,
    Modulation,
    ToneMap,
    compute_tone_map,
    select_modulation,
)
from .channel import (
    BernoulliPbErrors,
    ErrorModel,
    IdealChannel,
    PowerStrip,
    SofObservation,
)
from .framing import (
    Burst,
    Mpdu,
    PhysicalBlock,
    SackDelimiter,
    SofDelimiter,
    segment_into_pbs,
)
from .rates import LinkRateTable
from .timing import PhyTiming, default_phy_rate_calibrated

__all__ = [
    "AV_MODULATIONS",
    "BernoulliPbErrors",
    "DEFAULT_STRIP_SNR_DB",
    "LinkRateTable",
    "Modulation",
    "ToneMap",
    "compute_tone_map",
    "select_modulation",
    "Burst",
    "ErrorModel",
    "IdealChannel",
    "Mpdu",
    "PhyTiming",
    "PhysicalBlock",
    "PowerStrip",
    "SackDelimiter",
    "SofDelimiter",
    "SofObservation",
    "default_phy_rate_calibrated",
    "segment_into_pbs",
]
