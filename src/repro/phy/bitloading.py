"""Bit loading and tone maps: the §4.1 "unknown" made explicit.

The paper lists the bit-loading algorithm (how a HomePlug AV chip maps
channel conditions to per-carrier modulation, hence to the number of
Ethernet frames per PLC frame) as vendor-secret.  This module builds
the closest well-defined substitute:

- the OFDM band is divided into carrier groups; each group's SNR maps
  to the highest HomePlug AV constellation whose demodulation
  threshold it clears (BPSK … 1024-QAM, the AV modulation set);
- the per-group bits/symbol, summed and scaled by symbol rate and FEC
  rate, give the link's *tone map* and effective payload rate;
- tone maps refresh when the SNR changes (the channel-estimation MMEs
  of :mod:`repro.hpav.network` model the signalling for this).

With ideal same-power-strip channels all links get the same (maximal)
rate, reproducing the paper's setup; the model exists so rate-diverse
scenarios (attenuated outlets) exercise the same code path.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "Modulation",
    "AV_MODULATIONS",
    "ToneMap",
    "compute_tone_map",
    "select_modulation",
    "DEFAULT_STRIP_SNR_DB",
]

#: HomePlug AV OFDM parameters (1901 FFT PHY): 917 usable carriers in
#: 1.8–30 MHz, ~40.96 µs symbols ≈ 24.4k symbols/s.
USABLE_CARRIERS = 917
SYMBOLS_PER_SECOND = 24414.0
#: Effective FEC + framing efficiency (turbo code rate 16/21 with
#: interleaving overheads folded in).
FEC_EFFICIENCY = 0.6
#: Number of carrier groups a tone map quantizes the band into.
CARRIER_GROUPS = 16


@dataclasses.dataclass(frozen=True)
class Modulation:
    """One constellation of the AV modulation set."""

    name: str
    bits_per_carrier: int
    #: Minimum SNR (dB) at which the chip selects this constellation.
    snr_threshold_db: float


#: The HomePlug AV modulation set with textbook demodulation
#: thresholds (ordered by increasing rate).
AV_MODULATIONS: Tuple[Modulation, ...] = (
    Modulation("BPSK", 1, 2.0),
    Modulation("QPSK", 2, 5.0),
    Modulation("8-QAM", 3, 8.5),
    Modulation("16-QAM", 4, 11.5),
    Modulation("64-QAM", 6, 17.5),
    Modulation("256-QAM", 8, 23.5),
    Modulation("1024-QAM", 10, 29.5),
)

#: Default SNR (dB) of a healthy same-power-strip link: clears the
#: 256-QAM threshold (an effective ~107 Mbps tone map).  The *paper*'s
#: effective rate (~11.8 Mbps payload, INT6300 with practical
#: overheads) is reproduced by the fixed-airtime path of
#: :class:`repro.phy.timing.PhyTiming`, not by this table.
DEFAULT_STRIP_SNR_DB = 24.0


def select_modulation(snr_db: float) -> Optional[Modulation]:
    """Highest constellation whose threshold the SNR clears."""
    chosen = None
    for modulation in AV_MODULATIONS:
        if snr_db >= modulation.snr_threshold_db:
            chosen = modulation
    return chosen


@dataclasses.dataclass(frozen=True)
class ToneMap:
    """A link's negotiated modulation per carrier group."""

    #: Modulation per carrier group (None = group masked off).
    groups: Tuple[Optional[Modulation], ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("tone map needs at least one carrier group")

    @property
    def bits_per_symbol(self) -> float:
        """Raw bits carried by one OFDM symbol under this map."""
        carriers_per_group = USABLE_CARRIERS / len(self.groups)
        return sum(
            modulation.bits_per_carrier * carriers_per_group
            for modulation in self.groups
            if modulation is not None
        )

    @property
    def payload_rate_mbps(self) -> float:
        """Effective payload rate (Mbps) after FEC/framing."""
        return (
            self.bits_per_symbol
            * SYMBOLS_PER_SECOND
            * FEC_EFFICIENCY
            / 1e6
        )

    @property
    def usable(self) -> bool:
        """Whether any carrier group carries data."""
        return any(modulation is not None for modulation in self.groups)

    def describe(self) -> str:
        names = [
            modulation.name if modulation else "off"
            for modulation in self.groups
        ]
        return f"<ToneMap {self.payload_rate_mbps:.1f} Mbps {names}>"


def compute_tone_map(
    snr_db: Sequence[float] | float,
    num_groups: int = CARRIER_GROUPS,
) -> ToneMap:
    """Build a tone map from per-group (or flat) SNR measurements.

    >>> compute_tone_map(30.0).groups[0].name
    '1024-QAM'
    >>> compute_tone_map(-10.0).usable
    False
    """
    if isinstance(snr_db, (int, float)):
        snrs: List[float] = [float(snr_db)] * num_groups
    else:
        snrs = [float(s) for s in snr_db]
        if not snrs:
            raise ValueError("need at least one SNR value")
    return ToneMap(groups=tuple(select_modulation(s) for s in snrs))
