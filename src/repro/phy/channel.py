"""The shared power-line medium ("the power strip").

§3's testbed attaches all stations to one power strip so that channel
conditions are ideal and every station hears every other (a single
contention domain, which is also the reference simulator's assumption).
:class:`PowerStrip` models exactly that: a broadcast bus connecting
transceivers, with

- delivery of MPDUs to their destination TEI,
- delivery of every SoF delimiter to *sniffer* listeners (the faifa
  capture surface — delimiters only, never payload),
- a pluggable per-PB error model (ideal by default, per the paper;
  a Bernoulli model is provided for the channel-error extension).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Protocol

import numpy as np

from .framing import Mpdu, SofDelimiter

__all__ = [
    "SofObservation",
    "ErrorModel",
    "TimeAwareErrorModel",
    "IdealChannel",
    "BernoulliPbErrors",
    "PowerStrip",
]


@dataclasses.dataclass(frozen=True)
class SofObservation:
    """A SoF delimiter as seen on the wire at a given time."""

    time_us: float
    sof: SofDelimiter
    #: Whether the MPDU payload that followed was part of a collision.
    collided: bool


class ErrorModel(Protocol):
    """Per-PB channel error hook."""

    def pb_error_flags(self, mpdu: Mpdu) -> List[bool]:
        """Return an error flag per physical block of ``mpdu``."""


class TimeAwareErrorModel(Protocol):
    """Per-PB error hook for time-varying channels.

    A model advertises this interface with a truthy ``time_aware``
    class attribute; :meth:`PowerStrip.deliver_mpdu` then passes the
    wire time so bursty/scheduled impairments (Gilbert–Elliott states,
    impulsive-noise windows — :mod:`repro.chaos.impairments`) can
    evolve with the simulation clock instead of the call count alone.
    """

    time_aware: bool

    def pb_error_flags(self, mpdu: Mpdu, time_us: float) -> List[bool]:
        """Error flag per physical block of ``mpdu`` at ``time_us``."""


class IdealChannel:
    """No channel errors (the paper's operating assumption)."""

    def pb_error_flags(self, mpdu: Mpdu) -> List[bool]:
        return [False] * max(mpdu.num_blocks, 1)


class BernoulliPbErrors:
    """Independent per-PB errors with fixed probability (extension)."""

    def __init__(self, pb_error_probability: float, rng: np.random.Generator) -> None:
        if not 0.0 <= pb_error_probability <= 1.0:
            raise ValueError("pb_error_probability must be in [0, 1]")
        self.pb_error_probability = pb_error_probability
        self.rng = rng

    def pb_error_flags(self, mpdu: Mpdu) -> List[bool]:
        n = max(mpdu.num_blocks, 1)
        return list(self.rng.random(n) < self.pb_error_probability)


class PowerStrip:
    """Broadcast medium connecting all attached transceivers.

    Transceivers register a TEI-keyed MPDU handler; sniffers register a
    callback receiving every :class:`SofObservation`.  The contention
    coordinator (:mod:`repro.mac.coordinator`) drives transmissions and
    calls :meth:`deliver_mpdu` / :meth:`observe_sof`.
    """

    def __init__(self, error_model: Optional[ErrorModel] = None) -> None:
        self.error_model: ErrorModel = (
            error_model if error_model is not None else IdealChannel()
        )
        self._receivers: List[Callable[[Mpdu, float], None]] = []
        self._sniffers: List[Callable[[SofObservation], None]] = []
        #: Wire-level counters (useful for tests and sanity checks).
        self.sof_count = 0
        self.delivered_mpdus = 0
        #: Optional :class:`repro.obs.probe.MacProbe` (``None`` = off).
        self.probe = None

    # -- attachment --------------------------------------------------------
    def attach(self, handler: Callable[[Mpdu, float], None]) -> None:
        """Register a transceiver's MPDU receive callback.

        The medium is a true broadcast bus: every receiver sees every
        delivered MPDU and filters on its own TEI (devices may not even
        have a TEI yet while associating).
        """
        if handler in self._receivers:
            raise ValueError("handler already attached")
        self._receivers.append(handler)

    def detach(self, handler: Callable[[Mpdu, float], None]) -> None:
        if handler in self._receivers:
            self._receivers.remove(handler)

    def add_sniffer(self, callback: Callable[[SofObservation], None]) -> None:
        """Register a sniffer-mode listener (gets every SoF delimiter)."""
        self._sniffers.append(callback)

    def remove_sniffer(self, callback: Callable[[SofObservation], None]) -> None:
        if callback in self._sniffers:
            self._sniffers.remove(callback)

    @property
    def num_receivers(self) -> int:
        return len(self._receivers)

    # -- wire events ---------------------------------------------------------
    def observe_sof(
        self, sof: SofDelimiter, time_us: float, collided: bool
    ) -> None:
        """Broadcast a SoF delimiter to every sniffer.

        Delimiters use robust modulation, so they are observable even
        during collisions (§3.2) — sniffers therefore see collided
        bursts too.
        """
        self.sof_count += 1
        observation = SofObservation(time_us=time_us, sof=sof, collided=collided)
        if self.probe is not None:
            # Mirrors the SnifferIndication field set (§3.3 observables).
            self.probe.emit(
                {
                    "event": "sof",
                    "timestamp_us": time_us,
                    "source_tei": sof.source_tei,
                    "dest_tei": sof.dest_tei,
                    "link_id": sof.link_id,
                    "mpdu_count": sof.mpdu_count,
                    "frame_length_bytes": sof.frame_length_bytes,
                    "num_blocks": sof.num_blocks,
                    "collided": collided,
                }
            )
        for sniffer in self._sniffers:
            sniffer(observation)

    def deliver_mpdu(self, mpdu: Mpdu, time_us: float) -> List[bool]:
        """Put a (non-collided) MPDU on the bus.

        Returns the per-PB error flags from the channel error model;
        the caller builds the SACK from them.  Only error-free MPDUs
        are handed to receivers: errored PBs make the receiver discard
        the MPDU and the selective acknowledgment triggers a MAC-level
        retransmission of the whole MPDU (per-PB retransmission is one
        of the vendor unknowns §4.1 lists; whole-MPDU ARQ preserves the
        airtime/goodput behaviour without guessing its details).

        Raises ``RuntimeError`` if no receiver is attached: an MPDU on
        a bus nobody listens to is always a wiring bug (a detached
        device left in the coordinator, a testbed built without its
        destination), and silently returning flags would let such runs
        produce zeros instead of failing.
        """
        if not self._receivers:
            raise RuntimeError(
                "deliver_mpdu on a PowerStrip with no attached receivers "
                f"(source_tei={mpdu.source_tei}, dest_tei={mpdu.dest_tei}); "
                "attach at least one transceiver before transmitting"
            )
        model = self.error_model
        if getattr(model, "time_aware", False):
            flags = model.pb_error_flags(mpdu, time_us)
        else:
            flags = model.pb_error_flags(mpdu)
        if not any(flags):
            self.delivered_mpdus += 1
            for handler in list(self._receivers):
                handler(mpdu, time_us)
        return flags
