"""HomePlug AV framing: physical blocks, MPDUs, bursts and delimiters.

§3.1 of the paper: Ethernet frames are segmented into 512-byte
*physical blocks* (PBs); PBs are packed into a *MAC protocol data unit*
(MPDU, the PLC frame); up to four MPDUs may be transmitted back-to-back
in a *burst* that contends for the medium as a unit (the paper's
devices use bursts of 2).

Every MPDU on the wire is preceded by a *start-of-frame (SoF)
delimiter* whose fields — Link ID (priority), source/destination TEI,
``MPDUCnt`` (remaining MPDUs in the burst), frame length — are exactly
what the ``faifa`` sniffer captures (§3.3).  Receivers answer a burst
with a *selective acknowledgment (SACK)* delimiter carrying a per-PB
error bitmap; a collision is acknowledged with all PBs marked errored
(the 1901 feature §3.2 verifies).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..core.counters import SequenceCounter
from ..core.parameters import (
    MAX_MPDUS_PER_BURST,
    PB_SIZE_BYTES,
    PriorityClass,
)

__all__ = [
    "PhysicalBlock",
    "Mpdu",
    "Burst",
    "SofDelimiter",
    "SackDelimiter",
    "segment_into_pbs",
]

_mpdu_sequence = SequenceCounter(1)


def mpdu_sequence_state() -> int:
    """Checkpoint hook: the next MPDU id to be handed out."""
    return _mpdu_sequence.peek()


def restore_mpdu_sequence(value: int) -> None:
    """Checkpoint hook: restore the MPDU id counter."""
    _mpdu_sequence.reset(value)


@dataclasses.dataclass(frozen=True)
class PhysicalBlock:
    """One 512-byte PB carrying a slice of an Ethernet frame.

    ``frame_id``/``offset`` identify the payload slice so the receiver
    can reassemble; ``fill`` is the number of meaningful bytes (the
    last PB of a frame is zero-padded on the wire).
    """

    frame_id: int
    offset: int
    fill: int
    size: int = PB_SIZE_BYTES

    def __post_init__(self) -> None:
        if not 0 < self.fill <= self.size:
            raise ValueError(
                f"PB fill must be in (0, {self.size}], got {self.fill}"
            )


def segment_into_pbs(frame_id: int, payload_bytes: int) -> List[PhysicalBlock]:
    """Split an Ethernet frame into 512-byte physical blocks.

    >>> [pb.fill for pb in segment_into_pbs(1, 1500)]
    [512, 512, 476]
    """
    if payload_bytes <= 0:
        raise ValueError("payload_bytes must be positive")
    blocks = []
    offset = 0
    while offset < payload_bytes:
        fill = min(PB_SIZE_BYTES, payload_bytes - offset)
        blocks.append(PhysicalBlock(frame_id=frame_id, offset=offset, fill=fill))
        offset += fill
    return blocks


@dataclasses.dataclass(frozen=True)
class Mpdu:
    """A PLC frame: an aggregate of physical blocks.

    ``mpdu_id`` is globally unique (used by acknowledgment matching and
    the firmware statistics engine).
    """

    source_tei: int
    dest_tei: int
    priority: PriorityClass
    blocks: Tuple[PhysicalBlock, ...]
    is_management: bool = False
    #: Opaque payload reference for management MPDUs (the MME bytes).
    payload: Optional[bytes] = None
    mpdu_id: int = dataclasses.field(
        default_factory=lambda: next(_mpdu_sequence)
    )

    def __post_init__(self) -> None:
        if not self.blocks and not self.is_management:
            raise ValueError("data MPDU needs at least one physical block")

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def payload_bytes(self) -> int:
        """Meaningful bytes carried (PB fills, or MME payload length)."""
        if self.blocks:
            return sum(pb.fill for pb in self.blocks)
        return len(self.payload) if self.payload else 0

    @property
    def on_wire_bytes(self) -> int:
        """Bytes occupying the channel (PBs are padded to 512)."""
        if self.blocks:
            return self.num_blocks * PB_SIZE_BYTES
        return max(PB_SIZE_BYTES, self.payload_bytes)


@dataclasses.dataclass(frozen=True)
class Burst:
    """Up to four MPDUs contending for the medium as one unit (§3.1)."""

    mpdus: Tuple[Mpdu, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.mpdus) <= MAX_MPDUS_PER_BURST:
            raise ValueError(
                f"burst must carry 1..{MAX_MPDUS_PER_BURST} MPDUs, got "
                f"{len(self.mpdus)}"
            )
        first = self.mpdus[0]
        for mpdu in self.mpdus[1:]:
            if (
                mpdu.source_tei != first.source_tei
                or mpdu.priority != first.priority
            ):
                raise ValueError(
                    "all MPDUs of a burst share source and priority"
                )

    @property
    def size(self) -> int:
        return len(self.mpdus)

    @property
    def source_tei(self) -> int:
        return self.mpdus[0].source_tei

    @property
    def priority(self) -> PriorityClass:
        return self.mpdus[0].priority

    @property
    def is_management(self) -> bool:
        return self.mpdus[0].is_management

    def sof_delimiters(self) -> List["SofDelimiter"]:
        """The SoF delimiter sequence a sniffer observes for this burst.

        ``mpdu_count`` counts the *remaining* MPDUs: the last MPDU of a
        burst carries 0, which is how burst boundaries are detected
        (§3.3).
        """
        total = self.size
        return [
            SofDelimiter(
                source_tei=mpdu.source_tei,
                dest_tei=mpdu.dest_tei,
                link_id=int(mpdu.priority),
                mpdu_count=total - 1 - position,
                frame_length_bytes=mpdu.on_wire_bytes,
                num_blocks=max(mpdu.num_blocks, 1),
            )
            for position, mpdu in enumerate(self.mpdus)
        ]


@dataclasses.dataclass(frozen=True)
class SofDelimiter:
    """Start-of-frame delimiter fields visible to the sniffer (§3.3).

    Delimiters use a robust modulation, so they are decodable even when
    the MPDU payload collides — which is why collided frames still get
    (negatively) acknowledged and why sniffer-based counting works.
    """

    source_tei: int
    dest_tei: int
    #: Link ID: the frame's priority class (CA0..CA3) for our traffic.
    link_id: int
    #: Remaining MPDUs in the burst after this one (0 = last).
    mpdu_count: int
    frame_length_bytes: int
    num_blocks: int

    def __post_init__(self) -> None:
        if not 0 <= self.link_id <= 3:
            raise ValueError(f"link_id must be 0..3, got {self.link_id}")
        if self.mpdu_count < 0:
            raise ValueError("mpdu_count must be >= 0")

    @property
    def priority(self) -> PriorityClass:
        return PriorityClass(self.link_id)

    @property
    def is_last_in_burst(self) -> bool:
        return self.mpdu_count == 0


@dataclasses.dataclass(frozen=True)
class SackDelimiter:
    """Selective acknowledgment for one MPDU.

    ``pb_errors`` marks errored physical blocks.  On a collision the
    destination can still decode the (robustly modulated) delimiter and
    replies with *all* PBs errored — the paper's §3.2 explains this is
    why the acknowledged-frame counter includes collided frames.
    """

    mpdu_id: int
    source_tei: int
    dest_tei: int
    pb_errors: Tuple[bool, ...]

    @property
    def all_errored(self) -> bool:
        return all(self.pb_errors) if self.pb_errors else True

    @property
    def ok(self) -> bool:
        """Whether every PB was received correctly."""
        return not any(self.pb_errors)

    @classmethod
    def success(cls, mpdu: Mpdu) -> "SackDelimiter":
        return cls(
            mpdu_id=mpdu.mpdu_id,
            source_tei=mpdu.dest_tei,
            dest_tei=mpdu.source_tei,
            pb_errors=tuple(False for _ in range(max(mpdu.num_blocks, 1))),
        )

    @classmethod
    def collision(cls, mpdu: Mpdu) -> "SackDelimiter":
        return cls(
            mpdu_id=mpdu.mpdu_id,
            source_tei=mpdu.dest_tei,
            dest_tei=mpdu.source_tei,
            pb_errors=tuple(True for _ in range(max(mpdu.num_blocks, 1))),
        )
