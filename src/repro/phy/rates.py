"""Per-link rate table: tone maps negotiated between device pairs.

Glue between :mod:`repro.phy.bitloading` and the MAC timing: the table
holds the tone map of every (source TEI, destination TEI) link,
derived from that link's SNR, and answers rate queries from
:class:`repro.phy.timing.PhyTiming` when MPDU airtime is rate-based.

On the paper's single power strip every link has the same high SNR;
setting a lower SNR for one outlet reproduces rate-diverse homes and
the CSMA airtime anomaly (experiment X11).
"""

from __future__ import annotations

from typing import Dict, Tuple

from .bitloading import DEFAULT_STRIP_SNR_DB, ToneMap, compute_tone_map

__all__ = ["LinkRateTable"]


class LinkRateTable:
    """SNR-driven tone maps / payload rates per directed link."""

    def __init__(self, default_snr_db: float = DEFAULT_STRIP_SNR_DB) -> None:
        self.default_snr_db = default_snr_db
        #: Explicit per-directed-link SNR overrides.
        self._snr: Dict[Tuple[int, int], float] = {}
        #: Per-station SNR caps (an attenuated outlet degrades every
        #: link touching that station).
        self._station_snr: Dict[int, float] = {}
        self._maps: Dict[Tuple[int, int], ToneMap] = {}
        self._default_map = compute_tone_map(default_snr_db)

    # -- configuration -----------------------------------------------------
    def set_snr(self, source_tei: int, dest_tei: int, snr_db: float) -> None:
        """Set one directed link's SNR (recomputes its tone map)."""
        self._snr[(source_tei, dest_tei)] = snr_db
        self._maps.pop((source_tei, dest_tei), None)

    def set_station_snr(self, tei: int, snr_db: float) -> None:
        """Degrade every link touching ``tei`` (an attenuated outlet)."""
        self._station_snr[tei] = snr_db
        self._maps.clear()

    # -- queries --------------------------------------------------------------
    def snr(self, source_tei: int, dest_tei: int) -> float:
        key = (source_tei, dest_tei)
        explicit = self._snr.get(key)
        caps = [
            self._station_snr[tei]
            for tei in key
            if tei in self._station_snr
        ]
        candidates = ([explicit] if explicit is not None else []) + caps
        if candidates:
            return min(candidates)
        return self.default_snr_db

    def tone_map(self, source_tei: int, dest_tei: int) -> ToneMap:
        key = (source_tei, dest_tei)
        if key not in self._maps:
            snr = self.snr(*key)
            if snr == self.default_snr_db:
                return self._default_map
            self._maps[key] = compute_tone_map(snr)
        return self._maps[key]

    def rate_mbps(self, source_tei: int, dest_tei: int) -> float:
        """Effective payload rate of a link (Mbps)."""
        tone_map = self.tone_map(source_tei, dest_tei)
        if not tone_map.usable:
            raise ValueError(
                f"link {source_tei}->{dest_tei} has no usable carriers "
                f"(SNR {self.snr(source_tei, dest_tei)} dB)"
            )
        return tone_map.payload_rate_mbps
