"""µs-resolution timing composition for the event-driven MAC.

The slot-synchronous simulator takes the total durations ``Ts``/``Tc``
as opaque inputs (Table 3).  The event-driven MAC instead *composes*
them from the HomePlug AV timeline:

    contention round = PRS0 + PRS1 + backoff slots + burst
    burst (success)  = Σ per MPDU (SoF delimiter + payload + RIFS + SACK)
                       + CIFS
    burst (collision)= SoF delimiter + payload + EIFS-style recovery
                       (no usable SACK timing) + CIFS

Payload airtime is derived from the PHY rate of the tone map.  The
defaults are calibrated so that a single-MPDU data transmission matches
the paper's Table 3 totals (Ts = 2920.64 µs, Tc = 2542.64 µs) — see
:func:`default_phy_rate_calibrated`.
"""

from __future__ import annotations

import dataclasses

from typing import TYPE_CHECKING

from ..core.parameters import (
    CIFS_US,
    DEFAULT_FRAME_US,
    DEFAULT_TS_US,
    DELIMITER_US,
    PRIORITY_RESOLUTION_US,
    RIFS_US,
    SACK_US,
    SLOT_DURATION_US,
)
from .framing import Burst, Mpdu

if TYPE_CHECKING:
    from .rates import LinkRateTable

__all__ = ["PhyTiming", "default_phy_rate_calibrated"]


#: Airtime of one data MPDU (one 1514-byte Ethernet frame) such that a
#: 2-MPDU burst occupies the paper's 2050 µs frame duration.
DEFAULT_MPDU_AIRTIME_US = DEFAULT_FRAME_US / 2.0


def default_phy_rate_calibrated(payload_bytes: int = 1514) -> float:
    """PHY rate (Mbps) such that ``payload_bytes`` airs in one MPDU's
    default airtime (1025 µs).

    The paper's stations put one 1514-byte Ethernet frame in each MPDU
    and contend with 2-MPDU bursts (§3.1); 1514 bytes in 1025 µs is
    ≈ 11.8 Mbps of *payload* throughput at the MAC/PHY boundary (the
    INT6300's effective rate for that tone map, channel coding
    included).
    """
    return payload_bytes * 8.0 / DEFAULT_MPDU_AIRTIME_US  # bits/µs == Mbps


@dataclasses.dataclass(frozen=True)
class PhyTiming:
    """Airtime calculator for delimiters, MPDUs and bursts.

    Parameters
    ----------
    phy_rate_mbps:
        Effective payload rate (bits per µs).  The default reproduces
        the paper's 2050 µs frame duration for the testbed's typical
        aggregate (see :func:`default_phy_rate_calibrated`).
    fixed_mpdu_airtime_us:
        If set, every data MPDU payload airs for exactly this duration
        regardless of size — matching the slot simulator's fixed
        ``frame_length`` input for like-for-like comparisons.
    """

    slot_us: float = SLOT_DURATION_US
    prs_us: float = PRIORITY_RESOLUTION_US
    delimiter_us: float = DELIMITER_US
    rifs_us: float = RIFS_US
    sack_us: float = SACK_US
    cifs_us: float = CIFS_US
    phy_rate_mbps: float = dataclasses.field(
        default_factory=default_phy_rate_calibrated
    )
    fixed_mpdu_airtime_us: float | None = DEFAULT_MPDU_AIRTIME_US
    #: Optional per-link tone-map rates (rate-diverse scenarios); used
    #: when ``fixed_mpdu_airtime_us`` is ``None``.
    link_rates: "LinkRateTable | None" = None

    def __post_init__(self) -> None:
        for name in (
            "slot_us",
            "prs_us",
            "delimiter_us",
            "rifs_us",
            "sack_us",
            "cifs_us",
            "phy_rate_mbps",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # -- per-unit durations -------------------------------------------------
    def payload_airtime_us(self, mpdu: Mpdu) -> float:
        """Airtime of one MPDU's payload symbols.

        Data MPDUs use the fixed calibrated airtime unless disabled;
        otherwise the link's tone-map rate (when a rate table is
        installed) or the flat PHY rate converts bytes to µs.
        Management MPDUs always go over the actual rate (they are much
        shorter than data frames).
        """
        if self.fixed_mpdu_airtime_us is not None and not mpdu.is_management:
            return self.fixed_mpdu_airtime_us
        rate = self.phy_rate_mbps
        if self.link_rates is not None:
            rate = self.link_rates.rate_mbps(
                mpdu.source_tei, mpdu.dest_tei
            )
        return mpdu.on_wire_bytes * 8.0 / rate

    def mpdu_airtime_us(self, mpdu: Mpdu) -> float:
        """SoF delimiter + payload of one MPDU (no response timing)."""
        return self.delimiter_us + self.payload_airtime_us(mpdu)

    def mpdu_exchange_us(self, mpdu: Mpdu) -> float:
        """Delimiter + payload + RIFS + SACK for a lone MPDU."""
        return self.mpdu_airtime_us(mpdu) + self.rifs_us + self.sack_us

    def burst_airtime_us(self, burst: Burst) -> float:
        """Back-to-back airtime of all MPDUs of a burst (no SACK)."""
        return sum(self.mpdu_airtime_us(mpdu) for mpdu in burst.mpdus)

    # -- burst outcomes ------------------------------------------------------
    def burst_success_us(self, burst: Burst) -> float:
        """Total busy time of a successful burst, CIFS included.

        1901 burst mode: the MPDUs air back-to-back and a single
        selective acknowledgment (covering all of them) follows the
        last one after RIFS.  Priority-resolution and backoff slots are
        accounted by the contention coordinator, not here.
        """
        return (
            self.burst_airtime_us(burst)
            + self.rifs_us
            + self.sack_us
            + self.cifs_us
        )

    def burst_collision_us(self, bursts: list) -> float:
        """Busy time of a collision between overlapping bursts.

        Colliding stations are committed to their whole burst (the
        SACK only comes after the last MPDU), so the medium stays busy
        for the longest full burst among the colliders, plus CIFS.
        """
        if len(bursts) < 2:
            raise ValueError("a collision involves at least two bursts")
        longest = max(self.burst_airtime_us(burst) for burst in bursts)
        return longest + self.cifs_us

    # -- calibration helpers ---------------------------------------------------
    def single_mpdu_ts_us(self, mpdu: Mpdu) -> float:
        """PRS + exchange + CIFS: comparable to the slot-sim ``Ts``."""
        return self.prs_us + self.mpdu_exchange_us(mpdu) + self.cifs_us

    @classmethod
    def paper_calibrated(cls) -> "PhyTiming":
        """Timing whose 2-MPDU-burst round matches Table 3's ``Ts``.

        A standard testbed round is PRS + burst(2 MPDUs of 1025 µs) +
        RIFS + SACK + CIFS = 2693.12 µs of protocol components; the
        Table 3 total of 2920.64 µs implies an extra turnaround margin
        of 227.52 µs measured on the devices.  We fold it into RIFS so
        the burst-level totals agree with the reference inputs.
        """
        margin = DEFAULT_TS_US - (
            PRIORITY_RESOLUTION_US
            + 2 * (DELIMITER_US + DEFAULT_MPDU_AIRTIME_US)
            + RIFS_US
            + SACK_US
            + CIFS_US
        )
        return cls(rifs_us=RIFS_US + margin)
