"""Text rendering of the reproduced tables and figures."""

from .export import to_jsonable, write_csv, write_json
from .figures import ascii_plot
from .tables import format_scientific, format_table

__all__ = [
    "ascii_plot",
    "format_scientific",
    "format_table",
    "to_jsonable",
    "write_csv",
    "write_json",
]
