"""Machine-readable export of experiment results (CSV / JSON).

The benches print human-readable tables; downstream users replotting
the reproduced figures want files.  These helpers write plain rows to
CSV and dataclass-friendly structures to JSON, with no third-party
dependencies.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable, Sequence, Union

__all__ = ["write_csv", "write_json", "write_jsonl", "to_jsonable"]


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> Path:
    """Write ``rows`` under ``headers`` to ``path``; returns the path."""
    path = Path(path)
    rows = [list(row) for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row length {len(row)} != header length {len(headers)}"
            )
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def to_jsonable(value: Any) -> Any:
    """Convert dataclasses / numpy scalars / containers to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, bytes):
        return value.hex()
    if hasattr(value, "item") and callable(value.item):
        try:
            return value.item()  # numpy scalar
        except (TypeError, ValueError):
            pass
    if hasattr(value, "tolist") and callable(value.tolist):
        return value.tolist()  # numpy array
    return value


def write_json(path: Union[str, Path], value: Any, indent: int = 2) -> Path:
    """Serialize ``value`` (dataclasses welcome) to JSON at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(value), indent=indent) + "\n")
    return path


def write_jsonl(path: Union[str, Path], records: Iterable[Any]) -> Path:
    """Write ``records`` as one JSON object per line (whole-file write).

    Complements :func:`repro.obs.recording.append_jsonl`: this is the
    export-a-finished-dataset form (truncate and write), while the
    recording helper appends incrementally to a live trace.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(to_jsonable(record)) + "\n")
    return path
