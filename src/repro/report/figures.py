"""ASCII line plots: the offline stand-in for the paper's figures.

:func:`ascii_plot` renders one or more (x, y) series on a character
grid with distinct markers per series and a legend — enough to eyeball
the *shape* agreement that the reproduction targets (who wins, where
curves cross, saturation levels).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 70,
    height: int = 20,
    title: Optional[str] = None,
    xlabel: str = "",
    ylabel: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render named (xs, ys) series as an ASCII scatter/line chart.

    >>> art = ascii_plot({"demo": ([0, 1, 2], [0.0, 0.5, 1.0])},
    ...                  width=20, height=5)
    >>> "demo" in art
    True
    """
    if not series:
        raise ValueError("ascii_plot needs at least one series")
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: x/y length mismatch")
        if len(xs) == 0:
            raise ValueError(f"series {name!r} is empty")

    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo = y_min if y_min is not None else min(all_y)
    y_hi = y_max if y_max is not None else max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, round((x - x_lo) / (x_hi - x_lo) * (width - 1))))

    def to_row(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, round((1.0 - frac) * (height - 1))))

    for index, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            grid[to_row(float(y))][to_col(float(x))] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    if ylabel:
        lines.append(ylabel)
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    label_width = max(len(top_label), len(bottom_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_width)
        elif r == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - 8) + f"{x_hi:.4g}".rjust(8)
    lines.append(" " * label_width + "  " + x_axis)
    if xlabel:
        lines.append(" " * label_width + "  " + xlabel.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series.keys())
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
