"""Plain-text table rendering for benchmark and experiment output.

The offline environment has no plotting stack, so every table/figure of
the paper is regenerated as text: aligned tables here, ASCII line plots
in :mod:`repro.report.figures`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_scientific"]


def format_scientific(value: float, digits: int = 4) -> str:
    """Render a number like the paper's Table 2 (e.g. ``2.5000e+01``)."""
    return f"{value:.{digits}e}"


def _render_cell(value: object, spec: Optional[str]) -> str:
    if spec is None:
        return str(value)
    if isinstance(value, str):
        return value
    return format(value, spec)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    formats: Optional[Sequence[Optional[str]]] = None,
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; converted with ``formats`` where given.
    formats:
        Optional per-column format specs (e.g. ``".4f"``); ``None``
        entries fall back to ``str``.

    >>> print(format_table(["N", "p"], [(1, 0.0), (2, 0.0741)],
    ...                    formats=[None, ".3f"]))
    N  p
    -  -----
    1  0.000
    2  0.074
    """
    rows = list(rows)
    if formats is None:
        formats = [None] * len(headers)
    if len(formats) != len(headers):
        raise ValueError("formats length must match headers length")
    rendered: List[List[str]] = [
        [_render_cell(value, spec) for value, spec in zip(row, formats)]
        for row in rows
    ]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row length must match headers length")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
