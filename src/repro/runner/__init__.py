"""Parallel experiment execution with deterministic seeding and caching.

The paper's evaluation — throughput-vs-N sweeps, the (CW, DC) boosting
search, fairness and coexistence studies — consists of many *independent*
simulation points.  This package runs them:

- **in parallel** across processes (:class:`ExperimentRunner`, backed by
  :class:`concurrent.futures.ProcessPoolExecutor`, with an in-process
  serial path for ``max_workers=1``);
- **deterministically** — every point's random stream is derived from
  ``(root_seed, point_index, repetition)`` via
  :class:`numpy.random.SeedSequence` spawn keys, so results are
  bit-identical regardless of worker count or scheduling order
  (:mod:`repro.runner.seeding`);
- **incrementally** — completed points are memoized on disk under a
  stable content hash of the full configuration tuple
  (:mod:`repro.runner.cache`), so re-running a sweep or resuming an
  interrupted search only simulates new points.

The execution layer is **fault tolerant**: per-task retries with
capped exponential backoff (a retry reuses the task's exact
:class:`SeedSpec`, so recovery cannot change the numbers), per-task
wall-clock timeouts, automatic worker-pool rebuilds after a crashed
worker with graceful degradation to serial execution, and an optional
partial-results mode that returns what completed plus a structured
:class:`TaskFailure` per lost point (:mod:`repro.runner.telemetry`).
Fault paths are exercised deterministically through the
``REPRO_FAULT_INJECT`` hook (:mod:`repro.runner.faults`).

Progress, cache and fault behaviour are observable through
:class:`repro.core.metrics.RunnerCounters` (``runner.counters``) and
the per-task lifecycle trace (``runner.trace``, exportable as JSONL
via ``trace_path``).
"""

from .backoff import FullJitterBackoff
from .batch import BatchRunner
from .cache import CacheEntryError, ResultCache, cache_key
from .faults import FaultPlan, InjectedFault
from .runner import (
    ExperimentRunner,
    RunnerConfig,
    RunnerTaskError,
    require_complete,
)
from .seeding import SeedSpec, derive_seed_sequence, streams_for
from .serialize import canonical_json, scenario_from_jsonable, scenario_to_jsonable
from .tasks import Task, TaskKind
from .telemetry import TaskEvent, TaskFailure, TraceRecorder

__all__ = [
    "BatchRunner",
    "FullJitterBackoff",
    "ExperimentRunner",
    "RunnerConfig",
    "RunnerTaskError",
    "require_complete",
    "ResultCache",
    "CacheEntryError",
    "cache_key",
    "SeedSpec",
    "derive_seed_sequence",
    "streams_for",
    "Task",
    "TaskKind",
    "TaskEvent",
    "TaskFailure",
    "TraceRecorder",
    "FaultPlan",
    "InjectedFault",
    "canonical_json",
    "scenario_to_jsonable",
    "scenario_from_jsonable",
]
