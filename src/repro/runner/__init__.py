"""Parallel experiment execution with deterministic seeding and caching.

The paper's evaluation — throughput-vs-N sweeps, the (CW, DC) boosting
search, fairness and coexistence studies — consists of many *independent*
simulation points.  This package runs them:

- **in parallel** across processes (:class:`ExperimentRunner`, backed by
  :class:`concurrent.futures.ProcessPoolExecutor`, with an in-process
  serial path for ``max_workers=1``);
- **deterministically** — every point's random stream is derived from
  ``(root_seed, point_index, repetition)`` via
  :class:`numpy.random.SeedSequence` spawn keys, so results are
  bit-identical regardless of worker count or scheduling order
  (:mod:`repro.runner.seeding`);
- **incrementally** — completed points are memoized on disk under a
  stable content hash of the full configuration tuple
  (:mod:`repro.runner.cache`), so re-running a sweep or resuming an
  interrupted search only simulates new points.

Progress and cache behaviour are observable through
:class:`repro.core.metrics.RunnerCounters` (``runner.counters``).
"""

from .cache import CacheEntryError, ResultCache, cache_key
from .runner import ExperimentRunner, RunnerConfig
from .seeding import SeedSpec, derive_seed_sequence, streams_for
from .serialize import canonical_json, scenario_from_jsonable, scenario_to_jsonable
from .tasks import Task, TaskKind

__all__ = [
    "ExperimentRunner",
    "RunnerConfig",
    "ResultCache",
    "CacheEntryError",
    "cache_key",
    "SeedSpec",
    "derive_seed_sequence",
    "streams_for",
    "Task",
    "TaskKind",
    "canonical_json",
    "scenario_to_jsonable",
    "scenario_from_jsonable",
]
