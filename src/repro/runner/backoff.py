"""Full-jitter exponential backoff, shared by the runner and the HTTP client.

The runner's original retry delay (PR 2) was the deterministic capped
exponential ``min(max, base * 2**(k-1))``.  Deterministic backoff is
fine for one process retrying against its own worker pool, but the
moment many clients retry against one service (the PR 10 HTTP front
end) it synchronizes: every client that failed together retries
together, and the retry storm re-creates the overload that caused the
failures.  The standard fix is *full jitter* (Brooker, "Exponential
Backoff And Jitter"): sleep ``uniform(0, cap(k))`` instead of
``cap(k)``, which decorrelates the herd while keeping the same
worst-case delay envelope.

Determinism is preserved where it matters:

- the **cap** schedule stays exactly the PR 2 formula — tests that pin
  ``RunnerConfig.backoff_s`` keep passing unchanged;
- the jitter stream is a private seedable ``random.Random`` — pass a
  ``seed`` and the delay sequence is reproducible (what the tests do);
  never the global ``random`` state, and never the task's
  :class:`~repro.runner.seeding.SeedSpec` (backoff timing must not be
  able to change results);
- ``jitter=False`` degrades to the old deterministic schedule.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["FullJitterBackoff"]


class FullJitterBackoff:
    """Seedable full-jitter delays over a capped exponential schedule.

    ``cap(attempt)`` is the deterministic ceiling
    ``min(max_s, base_s * 2**(attempt-1))`` (attempt is 1-based);
    ``sample(attempt)`` draws ``uniform(0, cap(attempt))`` from a
    private RNG — or returns the cap itself when ``jitter=False``.
    """

    def __init__(
        self,
        base_s: float = 0.05,
        max_s: float = 2.0,
        jitter: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        if base_s < 0 or max_s < 0:
            raise ValueError("base_s and max_s must be >= 0")
        self.base_s = base_s
        self.max_s = max_s
        self.jitter = jitter
        self._rng = random.Random(seed)

    def cap(self, attempt: int) -> float:
        """Deterministic delay ceiling before retry ``attempt`` (1-based)."""
        return min(self.max_s, self.base_s * (2 ** max(0, attempt - 1)))

    def sample(self, attempt: int) -> float:
        """The actual delay to sleep before retry ``attempt``."""
        cap = self.cap(attempt)
        if not self.jitter or cap <= 0.0:
            return cap
        return self._rng.uniform(0.0, cap)
