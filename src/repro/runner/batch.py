"""Batch-kernel execution with per-point caching and scalar fallback.

:class:`BatchRunner` is the sweep-facing entry to
:class:`~repro.batch.kernel.BatchSlotKernel`: it takes the same
``(scenarios, root_seed, repetitions)`` inputs as
:meth:`~repro.runner.runner.ExperimentRunner.run_scenarios` and returns
the same repetition-major :class:`~repro.runner.runner.SimPointResult`
lists — bit-identical numbers, computed hundreds of points at a time.

The cache contract is the load-bearing part.  Every point is keyed by
the sha256 of the **scalar** ``simulate`` task description it is
equivalent to (same scenario payload, same
:class:`~repro.runner.seeding.SeedSpec`), and the batch kernel's
bit-exactness guarantee makes the stored dict identical to what the
scalar task would have written.  Consequences:

- a sweep half-computed by :class:`ExperimentRunner` finishes on the
  batch path without recomputing (and vice versa);
- cache semantics (sha256 keys, corrupt-entry recovery, the
  partial-results discipline) are exactly those of the scalar runner —
  nothing batch-specific is persisted.

The kernel covers the full ``ScenarioConfig`` space (saturated and
unsaturated stations, finite retry limits — see
:func:`~repro.batch.kernel.check_supported`); the per-point scalar
fallback remains as a safety valve should the gate ever narrow again.
"""

from __future__ import annotations

import contextlib
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..batch.kernel import supports_scenario
from ..core.config import ScenarioConfig
from ..core.metrics import RunnerCounters
from ..telemetry.context import TelemetryContext, activate
from ..telemetry.openmetrics import write_openmetrics
from ..telemetry.spans import SpanRecorder
from .cache import ResultCache, cache_key
from .runner import SimPointResult, rehydrate_simulation
from .seeding import SeedSpec
from .serialize import scenario_to_jsonable
from .tasks import Task, TaskKind, execute_task
from .telemetry import TraceRecorder

__all__ = ["BatchRunner", "DEFAULT_CHUNK_SIZE"]

#: Points per kernel dispatch.  Large enough to amortize the
#: per-round Python overhead (the measured kernel/FSM ratio keeps
#: climbing up to ~1k points), small enough to bound peak array memory.
DEFAULT_CHUNK_SIZE = 1024


class BatchRunner:
    """Run simulation sweeps through the vectorized batch kernel.

    Parameters
    ----------
    cache_dir:
        Optional on-disk result cache, shared bit-for-bit with
        :class:`~repro.runner.runner.ExperimentRunner` (see module
        docstring).
    chunk_size:
        Maximum points per kernel dispatch.
    trace_path / span_path / metrics_path:
        Telemetry outputs, same semantics as
        :class:`~repro.runner.runner.RunnerConfig`: the task-lifecycle
        trace JSONL, the span JSONL, and the OpenMetrics textfile.
        All ``None`` (the default) keeps the batch path telemetry-free.
    telemetry_dir:
        Convenience: derives all three paths (``trace.jsonl``,
        ``spans.jsonl``, ``metrics.prom``) inside one directory.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        trace_path: Optional[Union[str, Path]] = None,
        span_path: Optional[Union[str, Path]] = None,
        metrics_path: Optional[Union[str, Path]] = None,
        telemetry_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.chunk_size = chunk_size
        self.counters = RunnerCounters()
        if telemetry_dir is not None:
            base = Path(telemetry_dir)
            if trace_path is None:
                trace_path = base / "trace.jsonl"
            if span_path is None:
                span_path = base / "spans.jsonl"
            if metrics_path is None:
                metrics_path = base / "metrics.prom"
        self.trace_path = Path(trace_path) if trace_path is not None else None
        self.span_path = Path(span_path) if span_path is not None else None
        self.metrics_path = (
            Path(metrics_path) if metrics_path is not None else None
        )
        telemetry_on = (
            self.trace_path is not None
            or self.span_path is not None
            or self.metrics_path is not None
        )
        #: Shared run id of trace + spans (``None`` without telemetry).
        self.run_id: Optional[str] = None
        self.trace: Optional[TraceRecorder] = None
        self.spans: Optional[SpanRecorder] = None
        if telemetry_on:
            self.trace = TraceRecorder()
            self.run_id = self.trace.run_id
            self.spans = SpanRecorder(run_id=self.run_id)

    # -- core --------------------------------------------------------------
    def run_scenarios(
        self,
        scenarios: Sequence[ScenarioConfig],
        root_seed: int = 1,
        repetitions: int = 1,
    ) -> List[List[SimPointResult]]:
        """Simulate every ``(scenario, repetition)`` pair.

        Seeding follows the runner's determinism contract exactly:
        point ``i`` at repetition ``r`` draws from ``(root_seed, i,
        r)``.  Returns one repetition-major list per scenario, equal
        bit-for-bit to ``ExperimentRunner.run_scenarios`` on the same
        inputs.
        """
        points: List[Dict[str, Any]] = []
        expanded: List[ScenarioConfig] = []
        for i, scenario in enumerate(scenarios):
            payload = scenario_to_jsonable(scenario)
            for rep in range(repetitions):
                seed = SeedSpec(
                    root_seed=root_seed, point_index=i, repetition=rep
                )
                points.append({"scenario": payload, "seed": seed})
                expanded.append(scenario)

        raw = self._run_points(points, expanded)
        grouped: List[List[SimPointResult]] = []
        for i, scenario in enumerate(scenarios):
            chunk = raw[i * repetitions : (i + 1) * repetitions]
            grouped.append(
                [rehydrate_simulation(scenario, entry) for entry in chunk]
            )
        return grouped

    def run_points(
        self,
        pairs: Sequence[tuple],
    ) -> List[SimPointResult]:
        """Simulate explicit ``(scenario, SeedSpec)`` points.

        The general-purpose entry behind :meth:`run_scenarios`:
        callers that need a seeding mode other than the grid contract
        — e.g. the validity harness's legacy-``simulate`` seeds, which
        reproduce :func:`repro.core.simulator.simulate` bit-for-bit —
        pass their own :class:`~repro.runner.seeding.SeedSpec` per
        point.  Caching, chunked kernel dispatch and the scalar
        fallback behave exactly as in :meth:`run_scenarios`.
        """
        points: List[Dict[str, Any]] = [
            {"scenario": scenario_to_jsonable(scenario), "seed": spec}
            for scenario, spec in pairs
        ]
        raw = self._run_points(points, [scenario for scenario, _ in pairs])
        return [
            rehydrate_simulation(scenario, entry)
            for (scenario, _), entry in zip(pairs, raw)
        ]

    def _run_points(
        self,
        points: List[Dict[str, Any]],
        scenarios: List[ScenarioConfig],
    ) -> List[Dict[str, Any]]:
        """Resolve every point: cache, batch kernel, or scalar fallback."""
        self.counters.points_total += len(points)
        self.counters.workers = 1
        results: List[Optional[Dict[str, Any]]] = [None] * len(points)
        keys: List[str] = []
        batched: List[int] = []
        with contextlib.ExitStack() as scope:
            sweep_id = None
            if self.spans is not None:
                sweep_id = self.spans.start(
                    "batch_sweep", points=len(points)
                )
                scope.enter_context(
                    activate(
                        TelemetryContext(
                            self.run_id, sweep_id, recorder=self.spans
                        )
                    )
                )
            if self.trace is not None:
                self.trace.record_run_start(
                    detail=f"batch points={len(points)}", span_id=sweep_id
                )
            try:
                for idx, point in enumerate(points):
                    # The *scalar* task this point is equivalent to —
                    # its key is the cache identity on both paths.
                    task = self._scalar_task(point)
                    key = cache_key(task.describe())
                    keys.append(key)
                    if self.cache is not None:
                        cached = self.cache.get(key)
                        if cached is not None:
                            results[idx] = cached
                            if self.trace is not None:
                                self.trace.record(
                                    "cache_hit",
                                    task_index=idx,
                                    kind=task.kind,
                                    span_id=sweep_id,
                                )
                            continue
                    if self.trace is not None:
                        self.trace.record(
                            "queued",
                            task_index=idx,
                            kind=task.kind,
                            span_id=sweep_id,
                        )
                    if supports_scenario(scenarios[idx]):
                        batched.append(idx)
                    else:
                        results[idx] = self._finish(
                            idx, task, keys[idx], sweep_id
                        )

                for start in range(0, len(batched), self.chunk_size):
                    chunk = batched[start : start + self.chunk_size]
                    results_chunk = self._run_chunk(points, chunk, sweep_id)
                    for idx, result in zip(chunk, results_chunk):
                        self.counters.executed += 1
                        if self.cache is not None:
                            self.cache.put(
                                keys[idx],
                                result,
                                self._scalar_task(points[idx]).describe(),
                            )
                        results[idx] = result
            finally:
                if self.cache is not None:
                    self.counters.cache_hits += self.cache.hits
                    self.counters.cache_misses += self.cache.misses
                    self.counters.cache_corrupt += self.cache.corrupt
                    self.cache.hits = 0
                    self.cache.misses = 0
                    self.cache.corrupt = 0
                self._flush_telemetry(sweep_id)
        return results  # type: ignore[return-value]

    def _run_chunk(
        self,
        points: List[Dict[str, Any]],
        chunk: List[int],
        sweep_id: Optional[str],
    ) -> List[Dict[str, Any]]:
        """One kernel dispatch, wrapped in a ``batch_chunk`` span."""
        chunk_id = None
        if self.spans is not None:
            chunk_id = self.spans.start(
                "batch_chunk", parent_id=sweep_id, points=len(chunk)
            )
        if self.trace is not None:
            for idx in chunk:
                self.trace.record(
                    "started",
                    task_index=idx,
                    kind=TaskKind.SIMULATE,
                    span_id=chunk_id or sweep_id,
                )
        t0 = time.perf_counter()
        try:
            out = execute_task(
                Task(
                    kind=TaskKind.SIMULATE_BATCH,
                    payload={
                        "points": [
                            {
                                "scenario": points[idx]["scenario"],
                                "seed": points[idx]["seed"].as_jsonable(),
                            }
                            for idx in chunk
                        ]
                    },
                )
            )
        except BaseException:
            if self.spans is not None and chunk_id is not None:
                self.spans.end(chunk_id, status="error")
            raise
        elapsed = time.perf_counter() - t0
        if self.trace is not None:
            # The kernel resolves the chunk as one dispatch; attribute
            # the wall-clock evenly so per-kind throughput stays usable.
            per_point = elapsed / len(chunk) if chunk else 0.0
            for idx in chunk:
                self.trace.record(
                    "finished",
                    task_index=idx,
                    kind=TaskKind.SIMULATE,
                    duration_s=per_point,
                    span_id=chunk_id or sweep_id,
                )
        if self.spans is not None and chunk_id is not None:
            self.spans.end(chunk_id)
        return out["points"]

    def _flush_telemetry(self, sweep_id: Optional[str]) -> None:
        """Close the sweep span and persist every telemetry output."""
        if self.trace is not None:
            self.trace.record("run_end", span_id=sweep_id)
        if self.spans is not None and sweep_id is not None:
            status = "error" if sys.exc_info()[0] is not None else "ok"
            self.spans.end(sweep_id, status=status)
        try:
            if self.trace is not None and self.trace_path is not None:
                self.trace.flush_jsonl(self.trace_path)
            if self.spans is not None and self.span_path is not None:
                self.spans.flush_jsonl(self.span_path)
            if self.metrics_path is not None:
                write_openmetrics(
                    self.metrics_path,
                    runner_counters=self.counters,
                    run_id=self.run_id,
                )
        except OSError:
            pass

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _scalar_task(point: Dict[str, Any]) -> Task:
        return Task(
            kind=TaskKind.SIMULATE,
            payload={
                "scenario": point["scenario"],
                "record_winners": False,
            },
            seed=point["seed"],
        )

    def _finish(
        self,
        idx: int,
        task: Task,
        key: str,
        sweep_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Scalar in-process fallback for an unsupported point."""
        span_id = None
        if self.spans is not None:
            span_id = self.spans.start(
                "scalar_fallback", parent_id=sweep_id, task_index=idx
            )
        if self.trace is not None:
            self.trace.record(
                "started",
                task_index=idx,
                kind=task.kind,
                span_id=span_id or sweep_id,
            )
        t0 = time.perf_counter()
        try:
            result = execute_task(task)
        except BaseException:
            if self.spans is not None and span_id is not None:
                self.spans.end(span_id, status="error")
            raise
        self.counters.executed += 1
        if self.trace is not None:
            self.trace.record(
                "finished",
                task_index=idx,
                kind=task.kind,
                duration_s=time.perf_counter() - t0,
                span_id=span_id or sweep_id,
            )
        if self.spans is not None and span_id is not None:
            self.spans.end(span_id)
        if self.cache is not None:
            self.cache.put(key, result, task.describe())
        return result
