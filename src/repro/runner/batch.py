"""Batch-kernel execution with per-point caching and scalar fallback.

:class:`BatchRunner` is the sweep-facing entry to
:class:`~repro.batch.kernel.BatchSlotKernel`: it takes the same
``(scenarios, root_seed, repetitions)`` inputs as
:meth:`~repro.runner.runner.ExperimentRunner.run_scenarios` and returns
the same repetition-major :class:`~repro.runner.runner.SimPointResult`
lists — bit-identical numbers, computed hundreds of points at a time.

The cache contract is the load-bearing part.  Every point is keyed by
the sha256 of the **scalar** ``simulate`` task description it is
equivalent to (same scenario payload, same
:class:`~repro.runner.seeding.SeedSpec`), and the batch kernel's
bit-exactness guarantee makes the stored dict identical to what the
scalar task would have written.  Consequences:

- a sweep half-computed by :class:`ExperimentRunner` finishes on the
  batch path without recomputing (and vice versa);
- cache semantics (sha256 keys, corrupt-entry recovery, the
  partial-results discipline) are exactly those of the scalar runner —
  nothing batch-specific is persisted.

The kernel covers the full ``ScenarioConfig`` space (saturated and
unsaturated stations, finite retry limits — see
:func:`~repro.batch.kernel.check_supported`); the per-point scalar
fallback remains as a safety valve should the gate ever narrow again.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..batch.kernel import supports_scenario
from ..core.config import ScenarioConfig
from ..core.metrics import RunnerCounters
from .cache import ResultCache, cache_key
from .runner import SimPointResult, rehydrate_simulation
from .seeding import SeedSpec
from .serialize import scenario_to_jsonable
from .tasks import Task, TaskKind, execute_task

__all__ = ["BatchRunner", "DEFAULT_CHUNK_SIZE"]

#: Points per kernel dispatch.  Large enough to amortize the
#: per-round Python overhead (the measured kernel/FSM ratio keeps
#: climbing up to ~1k points), small enough to bound peak array memory.
DEFAULT_CHUNK_SIZE = 1024


class BatchRunner:
    """Run simulation sweeps through the vectorized batch kernel.

    Parameters
    ----------
    cache_dir:
        Optional on-disk result cache, shared bit-for-bit with
        :class:`~repro.runner.runner.ExperimentRunner` (see module
        docstring).
    chunk_size:
        Maximum points per kernel dispatch.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.chunk_size = chunk_size
        self.counters = RunnerCounters()

    # -- core --------------------------------------------------------------
    def run_scenarios(
        self,
        scenarios: Sequence[ScenarioConfig],
        root_seed: int = 1,
        repetitions: int = 1,
    ) -> List[List[SimPointResult]]:
        """Simulate every ``(scenario, repetition)`` pair.

        Seeding follows the runner's determinism contract exactly:
        point ``i`` at repetition ``r`` draws from ``(root_seed, i,
        r)``.  Returns one repetition-major list per scenario, equal
        bit-for-bit to ``ExperimentRunner.run_scenarios`` on the same
        inputs.
        """
        points: List[Dict[str, Any]] = []
        expanded: List[ScenarioConfig] = []
        for i, scenario in enumerate(scenarios):
            payload = scenario_to_jsonable(scenario)
            for rep in range(repetitions):
                seed = SeedSpec(
                    root_seed=root_seed, point_index=i, repetition=rep
                )
                points.append({"scenario": payload, "seed": seed})
                expanded.append(scenario)

        raw = self._run_points(points, expanded)
        grouped: List[List[SimPointResult]] = []
        for i, scenario in enumerate(scenarios):
            chunk = raw[i * repetitions : (i + 1) * repetitions]
            grouped.append(
                [rehydrate_simulation(scenario, entry) for entry in chunk]
            )
        return grouped

    def run_points(
        self,
        pairs: Sequence[tuple],
    ) -> List[SimPointResult]:
        """Simulate explicit ``(scenario, SeedSpec)`` points.

        The general-purpose entry behind :meth:`run_scenarios`:
        callers that need a seeding mode other than the grid contract
        — e.g. the validity harness's legacy-``simulate`` seeds, which
        reproduce :func:`repro.core.simulator.simulate` bit-for-bit —
        pass their own :class:`~repro.runner.seeding.SeedSpec` per
        point.  Caching, chunked kernel dispatch and the scalar
        fallback behave exactly as in :meth:`run_scenarios`.
        """
        points: List[Dict[str, Any]] = [
            {"scenario": scenario_to_jsonable(scenario), "seed": spec}
            for scenario, spec in pairs
        ]
        raw = self._run_points(points, [scenario for scenario, _ in pairs])
        return [
            rehydrate_simulation(scenario, entry)
            for (scenario, _), entry in zip(pairs, raw)
        ]

    def _run_points(
        self,
        points: List[Dict[str, Any]],
        scenarios: List[ScenarioConfig],
    ) -> List[Dict[str, Any]]:
        """Resolve every point: cache, batch kernel, or scalar fallback."""
        self.counters.points_total += len(points)
        self.counters.workers = 1
        results: List[Optional[Dict[str, Any]]] = [None] * len(points)
        keys: List[str] = []
        batched: List[int] = []
        for idx, point in enumerate(points):
            # The *scalar* task this point is equivalent to — its key
            # is the cache identity on both execution paths.
            task = self._scalar_task(point)
            key = cache_key(task.describe())
            keys.append(key)
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    results[idx] = cached
                    continue
            if supports_scenario(scenarios[idx]):
                batched.append(idx)
            else:
                results[idx] = self._finish(idx, task, keys[idx])

        for start in range(0, len(batched), self.chunk_size):
            chunk = batched[start : start + self.chunk_size]
            out = execute_task(
                Task(
                    kind=TaskKind.SIMULATE_BATCH,
                    payload={
                        "points": [
                            {
                                "scenario": points[idx]["scenario"],
                                "seed": points[idx]["seed"].as_jsonable(),
                            }
                            for idx in chunk
                        ]
                    },
                )
            )
            for idx, result in zip(chunk, out["points"]):
                self.counters.executed += 1
                if self.cache is not None:
                    self.cache.put(
                        keys[idx],
                        result,
                        self._scalar_task(points[idx]).describe(),
                    )
                results[idx] = result

        if self.cache is not None:
            self.counters.cache_hits += self.cache.hits
            self.counters.cache_misses += self.cache.misses
            self.counters.cache_corrupt += self.cache.corrupt
            self.cache.hits = self.cache.misses = self.cache.corrupt = 0
        return results  # type: ignore[return-value]

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _scalar_task(point: Dict[str, Any]) -> Task:
        return Task(
            kind=TaskKind.SIMULATE,
            payload={
                "scenario": point["scenario"],
                "record_winners": False,
            },
            seed=point["seed"],
        )

    def _finish(self, idx: int, task: Task, key: str) -> Dict[str, Any]:
        """Scalar in-process fallback for an unsupported point."""
        result = execute_task(task)
        self.counters.executed += 1
        if self.cache is not None:
            self.cache.put(key, result, task.describe())
        return result
