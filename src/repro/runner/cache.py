"""On-disk memoization of completed experiment points.

Each completed point is stored as one JSON file under the cache
directory, named by the point's *cache key*: the SHA-256 of the
canonical JSON of the full task description — task kind, configuration
tuple (``CsmaConfig``/``ScenarioConfig``/``TimingConfig`` fields) and
seed derivation.  The key is therefore

- stable across process restarts (no dependence on ``hash()``
  randomization or object identity);
- stable under field-order permutations (keys are sorted before
  hashing);
- different whenever any configuration field differs.

Entries are written atomically and durably (temp file + fsync +
``os.replace``, via the same :mod:`repro.checkpoint.integrity` helpers
the checkpoint container uses) so an interrupted run never leaves a
truncated entry behind under its final name; a corrupted or truncated
entry that does appear is detected on read (JSON parse + schema check +
sha256 content checksum of the stored result) and treated as a miss,
never crashed on — the entry is evicted and the point recomputed.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Set, Union

from ..checkpoint.integrity import FileLock, atomic_write_text, sha256_hex
from .serialize import canonical_json

__all__ = ["cache_key", "ResultCache", "CacheEntryError", "result_checksum"]

#: Advisory write-lock file inside the cache directory.  Not an entry
#: (no ``.json`` suffix), so entry iteration never sees it.
LOCK_FILENAME = ".lock"

#: Schema version folded into every key: bump to invalidate all entries
#: when the stored result format changes.  v2 added the sha256 result
#: checksum.
CACHE_FORMAT_VERSION = 2

#: Prefix of in-flight atomic-write temp files.  They end in ``.json``
#: too, so entry iteration must filter on this prefix — otherwise
#: ``len(cache)`` counts partial writes and ``clear()`` races with a
#: concurrent ``put()``'s ``os.replace``.
TEMP_PREFIX = ".tmp-"


class CacheEntryError(Exception):
    """A cache entry exists but cannot be trusted (corrupt/truncated)."""


def cache_key(description: Dict[str, Any]) -> str:
    """SHA-256 content hash of a task description.

    ``description`` must be JSON-serializable; it normally comes from
    :meth:`repro.runner.tasks.Task.describe` and contains the task kind,
    the jsonable configuration tuple and the seed spec.
    """
    payload = canonical_json(
        {"version": CACHE_FORMAT_VERSION, "task": description}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def result_checksum(result: Dict[str, Any]) -> str:
    """sha256 of the canonical JSON of a stored result.

    Stored in every entry and re-verified on every read, so a bit flip
    anywhere in the result payload — not just a torn JSON — turns the
    entry into a detected miss instead of a silently wrong sweep point.
    """
    return sha256_hex(canonical_json(result).encode("utf-8"))


class ResultCache:
    """A directory of ``<key>.json`` result files.

    Parameters
    ----------
    cache_dir:
        Directory to store entries in (created on first write).
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        #: Advisory cross-process lock serializing mutations
        #: (``put``/``clear``/``prune``) against writers in *other*
        #: processes — e.g. workers of two orchestrators sharing one
        #: cache directory.  Reads stay lock-free: atomic rename means
        #: a reader sees whole entries regardless.
        self.lock = FileLock(self.cache_dir / LOCK_FILENAME)

    def path_for(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored result for ``key``, or ``None`` on a miss.

        A present-but-unreadable entry (truncated write, disk
        corruption, foreign file) counts as a miss and bumps
        :attr:`corrupt`; it is deleted so the recompute can rewrite it
        cleanly.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            self.corrupt += 1
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict):
                raise CacheEntryError("entry is not an object")
            if entry.get("key") != key:
                raise CacheEntryError("entry key mismatch")
            if "result" not in entry:
                raise CacheEntryError("entry has no result")
            if entry.get("sha256") != result_checksum(entry["result"]):
                raise CacheEntryError("result checksum mismatch")
        except (json.JSONDecodeError, CacheEntryError):
            self.misses += 1
            self.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return entry["result"]

    def put(
        self, key: str, result: Dict[str, Any], description: Dict[str, Any]
    ) -> None:
        """Store ``result`` for ``key`` atomically.

        The originating ``description`` is stored alongside the result
        for debuggability (``repro-plc cache info`` and humans reading
        the files).  The write is best-effort against a concurrent
        ``clear()``: if the temp file (or the directory) vanishes under
        the ``os.replace``, the write is retried once on a fresh temp
        file and then given up silently — memoization is an
        optimization, never a correctness dependency.
        """
        entry = {
            "key": key,
            "task": description,
            "result": result,
            "sha256": result_checksum(result),
        }
        payload = json.dumps(entry)
        with self.lock:
            for final_attempt in (False, True):
                try:
                    self._write_entry(key, payload)
                    return
                except FileNotFoundError:
                    if final_attempt:
                        return

    def _write_entry(self, key: str, payload: str) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            str(self.path_for(key)), payload, temp_prefix=TEMP_PREFIX
        )

    def entry_paths(self):
        """Paths of the committed entries (in-flight temp files excluded)."""
        if not self.cache_dir.is_dir():
            return
        for path in self.cache_dir.glob("*.json"):
            if not path.name.startswith(TEMP_PREFIX):
                yield path

    def temp_paths(self):
        """In-flight or orphaned atomic-write temp files."""
        if not self.cache_dir.is_dir():
            return
        yield from self.cache_dir.glob(f"{TEMP_PREFIX}*")

    def clear(self) -> int:
        """Delete every entry; return the number removed.

        Orphaned ``.tmp-*`` leftovers (from writers killed mid-``put``)
        are swept as well but do not count toward the return value —
        they were never entries.
        """
        if not self.cache_dir.is_dir():
            return 0
        removed = 0
        with self.lock:
            for path in list(self.entry_paths()):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in list(self.temp_paths()):
                try:
                    path.unlink()
                except OSError:
                    pass
        # Sweep the lock file as well: ``clear`` means an empty
        # directory.  We still hold the open fd, so the advisory
        # exclusion stands until release; a rival writer simply
        # recreates the file.
        try:
            (self.cache_dir / LOCK_FILENAME).unlink()
        except OSError:
            pass
        return removed

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        protect: Optional[Iterable[str]] = None,
    ) -> Dict[str, int]:
        """Evict entries to bound disk growth; returns what happened.

        Two independent policies, either or both:

        - ``max_age_s`` — drop entries older than this (mtime);
        - ``max_bytes`` — then, if the directory still exceeds this
          size, drop oldest-first (LRU by mtime — ``get`` never touches
          entries, so mtime is write time: oldest = least recently
          *computed*, the entries a long-lived service is least likely
          to be re-asked for).

        ``protect`` is a set of cache keys that must survive regardless
        — the journal-aware guard: the service CLI passes the keys of
        every task with an active lease, so a prune racing a running
        sweep can't evict a result the orchestrator is about to commit
        or a duplicate submission is about to dedupe against.  Orphaned
        temp files older than ``max_age_s`` are swept too.
        """
        report = {"removed": 0, "kept": 0, "protected": 0, "bytes": 0}
        if not self.cache_dir.is_dir():
            return report
        protected: Set[str] = set(protect or ())
        now = time.time()
        with self.lock:
            entries = []
            for path in self.entry_paths():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((path, stat.st_mtime, stat.st_size))
            entries.sort(key=lambda item: item[1])  # oldest first
            total = sum(size for _, _, size in entries)

            def _evict(path: Path, size: int) -> int:
                try:
                    path.unlink()
                except OSError:
                    return 0
                report["removed"] += 1
                return size

            survivors = []
            for path, mtime, size in entries:
                if path.stem in protected:
                    report["protected"] += 1
                    survivors.append((path, mtime, size))
                    continue
                if max_age_s is not None and now - mtime > max_age_s:
                    total -= _evict(path, size)
                    continue
                survivors.append((path, mtime, size))
            if max_bytes is not None:
                for path, _mtime, size in survivors:
                    if total <= max_bytes:
                        break
                    if path.stem in protected:
                        continue
                    total -= _evict(path, size)
            if max_age_s is not None:
                for path in list(self.temp_paths()):
                    try:
                        if now - path.stat().st_mtime > max_age_s:
                            path.unlink()
                    except OSError:
                        pass
        report["kept"] = sum(1 for _ in self.entry_paths())
        report["bytes"] = sum(
            path.stat().st_size
            for path in self.entry_paths()
            if path.is_file()
        )
        return report

    def __len__(self) -> int:
        return sum(1 for _ in self.entry_paths())
