"""Deterministic fault injection for exercising the recovery paths.

The fault-tolerant runner has code paths — retry after a worker crash,
pool rebuild after a :class:`BrokenProcessPool`, timeout of a hung
task — that never fire in a healthy run.  This module lets the test
suite (and the CI smoke job) trigger them on demand, from *inside* the
worker, controlled entirely by environment variables so no production
code path changes shape:

``REPRO_FAULT_INJECT``
    ``mode[:key=value[,key=value...]]`` — what to do to a claimed task:

    - ``raise`` — raise :class:`InjectedFault` (an ordinary task
      failure, exercised by the retry path);
    - ``exit`` — ``os._exit`` the worker process (kills it without
      cleanup, exercising ``BrokenProcessPool`` recovery; never use
      with a serial runner — it would kill the submitting process);
    - ``hang`` — sleep for ``seconds`` (default 30), exercising the
      per-task timeout.

    Options: ``times=N`` (how many distinct tasks to hit, default 1),
    ``seconds=S`` (hang duration).

``REPRO_FAULT_DIR``
    A directory of claim markers shared by all workers.  Each task is
    identified by its cache key; the *first* execution of a claimed
    task faults, every retry of it runs clean.  This is what makes the
    injection deterministic-per-task and lets a retried task succeed —
    the retry reuses the exact :class:`~repro.runner.seeding.SeedSpec`,
    so the recovered sweep is bit-identical to an uninjected run.
    Injection is disabled when unset.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path
from typing import Mapping, Optional

__all__ = [
    "ENV_FAULT_INJECT",
    "ENV_FAULT_DIR",
    "FaultPlan",
    "InjectedFault",
    "parse_plan",
    "plan_from_env",
    "inject_for_task",
]

ENV_FAULT_INJECT = "REPRO_FAULT_INJECT"
ENV_FAULT_DIR = "REPRO_FAULT_DIR"

_MODES = ("raise", "exit", "hang")

#: Exit status used by ``exit`` mode — recognizable in worker postmortems.
FAULT_EXIT_CODE = 117


class InjectedFault(RuntimeError):
    """The failure raised by ``raise``-mode injection."""


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Parsed ``REPRO_FAULT_INJECT`` specification."""

    mode: str
    times: int = 1
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"fault mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.hang_s <= 0:
            raise ValueError("seconds must be > 0")


def parse_plan(spec: str) -> FaultPlan:
    """Parse ``mode[:key=value[,key=value...]]`` into a :class:`FaultPlan`."""
    mode, _, rest = spec.strip().partition(":")
    kwargs = {}
    if rest:
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"malformed fault option {item!r} in {spec!r}")
            key = key.strip()
            if key == "times":
                kwargs["times"] = int(value)
            elif key == "seconds":
                kwargs["hang_s"] = float(value)
            else:
                raise ValueError(f"unknown fault option {key!r} in {spec!r}")
    return FaultPlan(mode=mode, **kwargs)


def plan_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[FaultPlan]:
    """The active plan, or ``None`` when injection is off."""
    environ = os.environ if environ is None else environ
    spec = environ.get(ENV_FAULT_INJECT)
    if not spec:
        return None
    if not environ.get(ENV_FAULT_DIR):
        # No claim directory means no cross-worker coordination: the
        # same task would fault on every retry.  Fail safe: inject
        # nothing rather than make a sweep unrecoverable.
        return None
    return parse_plan(spec)


def _claim(marker_dir: Path, token: str, times: int) -> bool:
    """Atomically claim an injection slot for ``token``.

    ``times`` numbered slot files bound the total number of injections;
    each slot is taken exactly once via ``O_EXCL`` creation (atomic on
    a local filesystem, so concurrent workers cannot over-claim).  A
    slot records which task took it, making the claim a one-shot: the
    retry of a faulted task finds its token in a slot and runs clean.
    """
    marker_dir.mkdir(parents=True, exist_ok=True)
    for k in range(times):
        slot = marker_dir / f"slot-{k}"
        try:
            with open(slot, "x", encoding="utf-8") as handle:
                handle.write(token)
            return True
        except FileExistsError:
            try:
                if slot.read_text(encoding="utf-8") == token:
                    return False  # this task already faulted once
            except OSError:
                pass
    return False


def inject_for_task(
    task, environ: Optional[Mapping[str, str]] = None
) -> None:
    """Fault hook, called at the top of every task execution.

    No-op (one dict lookup) unless ``REPRO_FAULT_INJECT`` and
    ``REPRO_FAULT_DIR`` are both set.
    """
    environ = os.environ if environ is None else environ
    if not environ.get(ENV_FAULT_INJECT):
        return
    plan = plan_from_env(environ)
    if plan is None:
        return
    from .cache import cache_key

    token = cache_key(task.describe())
    if not _claim(Path(environ[ENV_FAULT_DIR]), token, plan.times):
        return
    if plan.mode == "raise":
        raise InjectedFault(f"injected fault for task {token[:12]}")
    if plan.mode == "exit":
        os._exit(FAULT_EXIT_CODE)
    time.sleep(plan.hang_s)
