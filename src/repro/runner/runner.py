"""The fault-tolerant parallel experiment runner.

:class:`ExperimentRunner` executes an ordered list of
:class:`~repro.runner.tasks.Task` and returns their results *in input
order*, regardless of completion order, worker count or cache state:

1. every task's cache key is computed in the submitting process;
2. cached points are answered from disk;
3. the remaining points run either in-process (``max_workers=1`` — the
   serial fallback, no pool, no pickling) or on a
   :class:`concurrent.futures.ProcessPoolExecutor`;
4. fresh results are written back to the cache (when one is
   configured) and every result is slotted back by task index.

Determinism: each task's random draws are fully specified by its
:class:`~repro.runner.seeding.SeedSpec`, so steps 2–4 cannot change the
numbers — only how fast they arrive.  The determinism contract is
enforced by ``tests/runner/test_determinism.py``.

Fault tolerance (``tests/runner/test_faults.py``): a failing task is
retried up to ``retries`` times with capped exponential backoff — and
because a retry resubmits the *same* :class:`Task` (hence the same
``SeedSpec``), the determinism contract extends to failure paths: a
sweep that recovers from worker crashes is bit-identical to a clean
run.  A dead worker (:class:`BrokenProcessPool`) triggers an automatic
pool rebuild, up to ``max_pool_rebuilds`` times, after which the
remaining points degrade gracefully to serial in-process execution.
``task_timeout_s`` puts a wall-clock bound on each running task (pool
mode only — a hung task cannot be preempted in-process); overrunning
tasks have their workers killed and count as ordinary failures.  With
``on_failure="partial"``, a task that exhausts its retries leaves
``None`` in its result slot and a structured
:class:`~repro.runner.telemetry.TaskFailure` on ``runner.failures``
instead of aborting the sweep; the default ``"raise"`` mode raises
:class:`RunnerTaskError` (with counters still finalized truthfully).
Every lifecycle transition is recorded on ``runner.trace`` and can be
exported as JSONL via ``trace_path``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import sys
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.config import ScenarioConfig
from ..core.metrics import RunnerCounters
from ..core.results import SimulationResult, StationStats
from .backoff import FullJitterBackoff
from .cache import ResultCache, cache_key
from .seeding import SeedSpec
from .serialize import scenario_to_jsonable
from ..telemetry.context import TelemetryContext, activate
from ..telemetry.openmetrics import write_openmetrics
from ..telemetry.spans import SpanRecorder
from .tasks import Task, TaskKind, checkpoint_status, run_task
from .telemetry import TaskFailure, TraceRecorder

__all__ = [
    "RunnerConfig",
    "ExperimentRunner",
    "RunnerTaskError",
    "SimPointResult",
    "rehydrate_simulation",
    "require_complete",
]


class RunnerTaskError(RuntimeError):
    """One or more tasks failed permanently (retries exhausted).

    Carries the structured :class:`TaskFailure` records on
    ``.failures`` so callers can report exactly which points were lost.
    """

    def __init__(self, message: str, failures: Sequence[TaskFailure] = ()):
        super().__init__(message)
        self.failures = list(failures)


@dataclasses.dataclass(frozen=True)
class RunnerConfig:
    """How to execute experiment points.

    Parameters
    ----------
    max_workers:
        ``1`` (default) runs points serially in-process; ``n > 1``
        fans them out over ``n`` worker processes; ``0`` or ``None``
        means "one per CPU".
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables
        caching.
    progress:
        Optional ``callback(done, total)`` invoked in the submitting
        process as points complete (including permanently failed ones).
    retries:
        Retry attempts per task after its first failure (default 0 —
        one attempt total).  A retry reuses the task's exact
        ``SeedSpec``, so retrying cannot change the numbers.
    task_timeout_s:
        Per-task wall-clock bound, enforced in pool mode by killing
        the worker of an overrunning task.  ``None`` (default)
        disables it; not enforceable on the serial path.
    backoff_base_s / backoff_max_s:
        Capped exponential backoff before retry ``k`` (1-based):
        ``min(backoff_max_s, backoff_base_s * 2**(k-1))``.
    backoff_jitter / backoff_seed:
        Full-jitter decorrelation of the retry delays: the actual sleep
        before retry ``k`` is ``uniform(0, backoff_s(k))`` drawn from a
        private RNG (:class:`~repro.runner.backoff.FullJitterBackoff`),
        so many clients retrying against one service don't synchronize
        into retry storms.  ``backoff_seed`` makes the delay sequence
        reproducible for tests; ``backoff_jitter=False`` restores the
        deterministic schedule.  Jitter can never change results —
        only retry timing.
    on_failure:
        ``"raise"`` (default) aborts the sweep with
        :class:`RunnerTaskError` on the first permanent failure;
        ``"partial"`` completes the sweep, leaves ``None`` in failed
        slots and records a :class:`TaskFailure` per lost point.
    trace_path:
        When set, task lifecycle events are appended to this JSONL
        file at the end of every ``run()``.
    span_path:
        When set, hierarchical telemetry spans (sweep → point →
        attempt, plus chaos/checkpoint scopes) are recorded and
        appended to this JSONL file, an ambient
        :class:`~repro.telemetry.context.TelemetryContext` is active
        for the duration of each ``run()``, and every JSONL line any
        layer writes during the run (obs traces, chaos ledgers,
        checkpoint journals) is stamped with the run's ``run_id``.
        ``None`` (default) disables spans entirely — the zero-cost
        path.
    metrics_path:
        When set, the runner's counters are rendered to this file in
        OpenMetrics text format at run start, periodically as points
        complete (throttled), and finally when the run ends — the
        Prometheus textfile-collector pattern.
    telemetry_dir:
        Convenience switch: setting it defaults ``trace_path``,
        ``span_path`` and ``metrics_path`` to ``trace.jsonl``,
        ``spans.jsonl`` and ``metrics.prom`` inside the directory (the
        layout ``repro-plc top`` and ``repro-plc report`` expect).
        Explicitly-set paths win over the derived ones.
    max_pool_rebuilds:
        Broken-pool rebuilds tolerated per ``run()`` before degrading
        the remaining points to serial in-process execution.
    checkpoint_dir:
        When set, ``simulate`` and ``collision_test`` points snapshot
        their full simulation state into
        ``checkpoint_dir/<cache_key>/`` as they run, and a (re)run of
        the same point — after a crash, a kill, or an exhausted-retry
        failure — resumes from the newest valid snapshot instead of
        starting over.  Resumption is bit-identical to an
        uninterrupted run (the :mod:`repro.checkpoint` invariant), so
        cache keys and results are unaffected.  ``None`` (default)
        disables checkpointing.  Points with an ``obs`` capture config
        run straight through (capture sessions stream artifacts and
        cannot be re-entered mid-run).
    checkpoint_every_us:
        Snapshot cadence in simulated microseconds; ``None`` uses the
        per-kind defaults (:data:`repro.checkpoint.slotsim
        .DEFAULT_SLOTSIM_EVERY_US`, :data:`repro.checkpoint
        .DEFAULT_CHECKPOINT_EVERY_US`).
    resume:
        ``True`` (default) resumes checkpointed points from the newest
        valid snapshot when one exists; ``False`` ignores existing
        snapshots and recomputes from scratch (still writing fresh
        ones).

    All constraints are validated here at construction time, so a bad
    config fails immediately with a clear message instead of deep
    inside a sweep.
    """

    max_workers: Optional[int] = 1
    cache_dir: Optional[Union[str, Path]] = None
    progress: Optional[Callable[[int, int], None]] = None
    retries: int = 0
    task_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    backoff_jitter: bool = True
    backoff_seed: Optional[int] = None
    on_failure: str = "raise"
    trace_path: Optional[Union[str, Path]] = None
    max_pool_rebuilds: int = 2
    checkpoint_dir: Optional[Union[str, Path]] = None
    checkpoint_every_us: Optional[float] = None
    resume: bool = True
    span_path: Optional[Union[str, Path]] = None
    metrics_path: Optional[Union[str, Path]] = None
    telemetry_dir: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if self.telemetry_dir is not None:
            base = Path(self.telemetry_dir)
            if self.trace_path is None:
                object.__setattr__(self, "trace_path", base / "trace.jsonl")
            if self.span_path is None:
                object.__setattr__(self, "span_path", base / "spans.jsonl")
            if self.metrics_path is None:
                object.__setattr__(
                    self, "metrics_path", base / "metrics.prom"
                )
        if (
            self.checkpoint_every_us is not None
            and self.checkpoint_every_us <= 0
        ):
            raise ValueError(
                "checkpoint_every_us must be > 0 or None, "
                f"got {self.checkpoint_every_us}"
            )
        if self.checkpoint_every_us is not None and self.checkpoint_dir is None:
            raise ValueError(
                "checkpoint_every_us requires checkpoint_dir to be set"
            )
        if self.max_workers is not None and self.max_workers < 0:
            raise ValueError(
                "max_workers must be >= 0 or None (0/None = one per CPU), "
                f"got {self.max_workers}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError(
                f"task_timeout_s must be > 0 or None, got {self.task_timeout_s}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff_base_s and backoff_max_s must be >= 0")
        if self.on_failure not in ("raise", "partial"):
            raise ValueError(
                f"on_failure must be 'raise' or 'partial', got {self.on_failure!r}"
            )
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    def resolved_workers(self) -> int:
        if not self.max_workers:
            return max(1, os.cpu_count() or 1)
        return self.max_workers

    def backoff_s(self, attempt: int) -> float:
        """Deterministic backoff *cap* before retry ``attempt`` (1-based).

        The actual sleep is sampled by :meth:`backoff_sampler` — full
        jitter in ``[0, backoff_s(attempt)]`` unless jitter is off.
        """
        return min(
            self.backoff_max_s,
            self.backoff_base_s * (2 ** max(0, attempt - 1)),
        )

    def backoff_sampler(self) -> FullJitterBackoff:
        """A fresh delay sampler honouring this config's jitter knobs."""
        return FullJitterBackoff(
            base_s=self.backoff_base_s,
            max_s=self.backoff_max_s,
            jitter=self.backoff_jitter,
            seed=self.backoff_seed,
        )


@dataclasses.dataclass(frozen=True)
class SimPointResult:
    """One simulated point: the counters result plus optional extras."""

    result: SimulationResult
    winners: Optional[Tuple[int, ...]] = None


@dataclasses.dataclass
class _Pending:
    """One not-yet-completed task and its retry state."""

    index: int
    task: Task
    key: str
    #: Failed attempts so far (0 = never attempted).
    attempt: int = 0
    #: Monotonic time before which the entry must not be (re)submitted.
    not_before: float = 0.0
    #: Telemetry "point" span covering the task's whole lifecycle
    #: (``None`` when spans are disabled).
    span_id: Optional[str] = None


@dataclasses.dataclass
class _RunState:
    """Mutable bookkeeping of one ``run()`` call."""

    done: int = 0
    total: int = 0
    executed: int = 0
    failures: List[TaskFailure] = dataclasses.field(default_factory=list)


class ExperimentRunner:
    """Execute experiment tasks in parallel, deterministically, cached —
    and keep going when workers crash, hang, or tasks fail."""

    def __init__(
        self,
        max_workers: Optional[int] = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        *,
        retries: int = 0,
        task_timeout_s: Optional[float] = None,
        on_failure: str = "raise",
        trace_path: Optional[Union[str, Path]] = None,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        backoff_jitter: bool = True,
        backoff_seed: Optional[int] = None,
        max_pool_rebuilds: int = 2,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every_us: Optional[float] = None,
        resume: bool = True,
        span_path: Optional[Union[str, Path]] = None,
        metrics_path: Optional[Union[str, Path]] = None,
        telemetry_dir: Optional[Union[str, Path]] = None,
        config: Optional[RunnerConfig] = None,
    ) -> None:
        self.config = (
            config
            if config is not None
            else RunnerConfig(
                max_workers=max_workers,
                cache_dir=cache_dir,
                progress=progress,
                retries=retries,
                task_timeout_s=task_timeout_s,
                on_failure=on_failure,
                trace_path=trace_path,
                backoff_base_s=backoff_base_s,
                backoff_max_s=backoff_max_s,
                backoff_jitter=backoff_jitter,
                backoff_seed=backoff_seed,
                max_pool_rebuilds=max_pool_rebuilds,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every_us=checkpoint_every_us,
                resume=resume,
                span_path=span_path,
                metrics_path=metrics_path,
                telemetry_dir=telemetry_dir,
            )
        )
        self.cache = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        self.counters = RunnerCounters()
        #: Full-jitter retry-delay sampler (satellite of the HTTP front
        #: end: the same helper the service client uses).
        self._backoff = self.config.backoff_sampler()
        #: Structured records of permanently failed tasks, across runs.
        self.failures: List[TaskFailure] = []
        #: Lifecycle event trace, across runs.
        self.trace = TraceRecorder()
        #: Telemetry correlation id shared by the trace, the spans, and
        #: every JSONL line written while a telemetry run is active.
        self.run_id = self.trace.run_id
        #: Hierarchical span recorder; ``None`` when spans are disabled
        #: (``span_path`` unset) — the zero-cost path.
        self.spans: Optional[SpanRecorder] = (
            SpanRecorder(run_id=self.run_id)
            if self.config.span_path is not None
            else None
        )
        self._last_metrics_write = 0.0

    # -- core execution ----------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> List[Optional[Dict[str, Any]]]:
        """Execute ``tasks``; results are returned in task order.

        In ``on_failure="partial"`` mode a slot is ``None`` when its
        task failed permanently — consult :attr:`failures` (or call
        :func:`require_complete`) before consuming the results.
        """
        tasks = list(tasks)
        start = time.perf_counter()
        workers = self.config.resolved_workers()
        self.counters.points_total += len(tasks)
        self.counters.workers = workers

        results: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
        state = _RunState(total=len(tasks))
        with contextlib.ExitStack() as scope:
            sweep_id: Optional[str] = None
            if self.spans is not None:
                sweep_id = self.spans.start(
                    "sweep", points=len(tasks), workers=workers
                )
                # While the sweep span is open, every JSONL line any
                # layer writes in this process carries our run_id (see
                # repro.obs.recording.append_jsonl); workers get the
                # same ids via the task runtime.
                scope.enter_context(
                    activate(
                        TelemetryContext(
                            self.run_id, sweep_id, recorder=self.spans
                        )
                    )
                )
            self.trace.record_run_start(
                detail=f"points={len(tasks)}", span_id=sweep_id
            )
            self._write_metrics(force=True)
            try:
                pending: List[_Pending] = []
                for i, task in enumerate(tasks):
                    key = cache_key(task.describe())
                    if self.cache is not None:
                        cached = self.cache.get(key)
                        if cached is not None:
                            results[i] = cached
                            state.done += 1
                            self.trace.record(
                                "cache_hit",
                                task_index=i,
                                kind=task.kind,
                                span_id=sweep_id,
                            )
                            continue
                    entry = _Pending(
                        index=i,
                        task=self._with_checkpointing(task, key),
                        key=key,
                    )
                    if self.spans is not None:
                        entry.span_id = self.spans.start(
                            "point",
                            parent_id=sweep_id,
                            task_index=i,
                            kind=task.kind,
                        )
                        entry.task = self._with_telemetry(
                            entry.task, entry.span_id
                        )
                    pending.append(entry)
                    self.trace.record(
                        "queued",
                        task_index=i,
                        kind=task.kind,
                        span_id=entry.span_id,
                        parent_id=sweep_id,
                    )
                self._progress(state.done, state.total)

                if workers == 1 or len(pending) <= 1:
                    self._run_serial(pending, results, state)
                else:
                    self._run_pool(pending, results, state, workers)
            finally:
                # Counter finalization must not depend on a clean sweep:
                # a mid-run failure still leaves truthful telemetry.
                self.failures.extend(state.failures)
                self.counters.executed += state.executed
                self.counters.failed += len(state.failures)
                if self.cache is not None:
                    self.counters.cache_hits += self.cache.hits
                    self.counters.cache_misses += self.cache.misses
                    self.counters.cache_corrupt += self.cache.corrupt
                    self.cache.hits = self.cache.misses = self.cache.corrupt = 0
                self.counters.wall_time_s += time.perf_counter() - start
                self.trace.record(
                    "run_end",
                    span_id=sweep_id,
                    detail=(
                        f"done={state.done}/{state.total} "
                        f"failed={len(state.failures)}"
                    ),
                )
                if self.spans is not None:
                    aborted = sys.exc_info()[0] is not None
                    for open_id in self.spans.open_spans():
                        if open_id != sweep_id:
                            self.spans.end(open_id, status="aborted")
                    self.spans.end(
                        sweep_id, status="error" if aborted else "ok"
                    )
                    self.spans.flush_jsonl(self.config.span_path)
                if self.config.trace_path is not None:
                    self.trace.flush_jsonl(self.config.trace_path)
                self._write_metrics(force=True)
        return results

    #: Task kinds whose executors understand the checkpoint runtime.
    _CHECKPOINTABLE = (TaskKind.SIMULATE, TaskKind.COLLISION_TEST)

    def _with_checkpointing(self, task: Task, key: str) -> Task:
        """Attach the per-point checkpoint runtime, if configured.

        Each point snapshots into its own ``checkpoint_dir/<cache_key>``
        subdirectory: the cache key already identifies the point's full
        description, so concurrent sweep points never share a store,
        and a re-run of the same sweep finds its snapshots again.  A
        task that already carries an explicit ``runtime`` is left
        untouched.  The runtime is excluded from ``describe()``, so
        ``key`` (computed by the caller) is unaffected.
        """
        if self.config.checkpoint_dir is None:
            return task
        if task.kind not in self._CHECKPOINTABLE or task.runtime is not None:
            return task
        runtime: Dict[str, Any] = {
            "checkpoint_dir": str(Path(self.config.checkpoint_dir) / key),
            "resume": self.config.resume,
        }
        if self.config.checkpoint_every_us is not None:
            runtime["checkpoint_every_us"] = self.config.checkpoint_every_us
        return dataclasses.replace(task, runtime=runtime)

    def _with_telemetry(self, task: Task, parent_span_id: str) -> Task:
        """Ship the correlation ids to the (possibly remote) worker.

        The ids ride in the execution-time ``runtime`` dict — excluded
        from ``describe()`` and the cache key, like the checkpoint
        knobs — and :func:`~repro.runner.tasks.run_task` re-activates
        them around the execution, so JSONL written *inside worker
        processes* carries the same ``run_id`` as ours.
        """
        runtime = dict(task.runtime or {})
        runtime["telemetry"] = {
            "run_id": self.run_id,
            "parent_span_id": parent_span_id,
        }
        return dataclasses.replace(task, runtime=runtime)

    def run_degraded_local(
        self, tasks: Sequence[Task], reason: str = "all hosts unreachable"
    ) -> List[Optional[Dict[str, Any]]]:
        """Execute ``tasks`` locally as the *degraded* path of a remote
        sweep.

        The graceful-degradation hook of the HTTP sweep client
        (:class:`repro.service.net.client.SweepClient`): when every
        remote host is unreachable the client falls back here instead
        of raising.  Identical to :meth:`run` except that the fallback
        is recorded truthfully — a structured ``degraded_local`` trace
        event and the ``degraded_local`` counter — so operators can see
        a sweep silently stopped being distributed.  Results are
        bit-identical to the remote path by the determinism contract
        (same tasks, same ``SeedSpec``s, same cache keys).
        """
        self.counters.degraded_local += 1
        self.trace.record("degraded_local", detail=reason)
        return self.run(tasks)

    def _write_metrics(self, force: bool = False) -> None:
        """Render counters to the OpenMetrics textfile (throttled).

        Failure to write the textfile must never kill a sweep — the
        metrics file is advisory output, not part of the results.
        """
        path = self.config.metrics_path
        if path is None:
            return
        now = time.monotonic()
        if not force and now - self._last_metrics_write < 0.5:
            return
        self._last_metrics_write = now
        try:
            write_openmetrics(
                path, runner_counters=self.counters, run_id=self.run_id
            )
        except OSError:
            pass

    # -- serial path -------------------------------------------------------
    def _run_serial(
        self,
        pending: Sequence[_Pending],
        results: List[Optional[Dict[str, Any]]],
        state: _RunState,
    ) -> None:
        for entry in pending:
            while True:
                delay = entry.not_before - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                self.trace.record(
                    "started",
                    task_index=entry.index,
                    kind=entry.task.kind,
                    attempt=entry.attempt,
                    span_id=entry.span_id,
                )
                try:
                    envelope = run_task(entry.task)
                except Exception as exc:
                    if not self._retry_or_fail(entry, exc, state):
                        break  # permanent failure, partial mode
                    continue
                self._complete(entry, envelope, results, state)
                break

    # -- pool path ---------------------------------------------------------
    def _run_pool(
        self,
        pending: Sequence[_Pending],
        results: List[Optional[Dict[str, Any]]],
        state: _RunState,
        workers: int,
    ) -> None:
        timeout = self.config.task_timeout_s
        # With a timeout, in-flight is capped at the worker count so
        # every submitted task is actually running and its deadline is
        # fair; without one, a small buffer keeps workers saturated.
        limit = workers if timeout is not None else workers * 2
        queue: List[_Pending] = list(pending)
        inflight: Dict[Future, Tuple[_Pending, float]] = {}
        pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=workers
        )
        rebuilds = 0
        try:
            while queue or inflight:
                now = time.monotonic()
                # Submit every ready entry, up to the in-flight limit.
                broken = False
                i = 0
                while i < len(queue) and len(inflight) < limit:
                    entry = queue[i]
                    if entry.not_before > now:
                        i += 1
                        continue
                    try:
                        future = pool.submit(run_task, entry.task)
                    except (BrokenExecutor, RuntimeError):
                        broken = True
                        break
                    queue.pop(i)
                    inflight[future] = (entry, now)
                    self.trace.record(
                        "started",
                        task_index=entry.index,
                        kind=entry.task.kind,
                        attempt=entry.attempt,
                        span_id=entry.span_id,
                    )
                if broken:
                    pool, rebuilds = self._recover_pool(
                        pool, inflight, queue, results, state, workers, rebuilds,
                        kill=False,
                    )
                    if pool is None:
                        self._degrade_serial(queue, results, state)
                        return
                    continue

                if not inflight:
                    # Everything is backing off; sleep to the earliest.
                    wake = min(e.not_before for e in queue)
                    time.sleep(max(0.0, wake - time.monotonic()))
                    continue

                finished, _ = wait(
                    set(inflight),
                    timeout=self._wait_timeout(inflight, queue, limit),
                    return_when=FIRST_COMPLETED,
                )
                for future in finished:
                    entry, _submitted = inflight.pop(future)
                    try:
                        envelope = future.result()
                    except BrokenExecutor:
                        broken = True
                        self._retry_or_fail(
                            entry, _pool_died_error(), state, queue
                        )
                    except Exception as exc:
                        self._retry_or_fail(entry, exc, state, queue)
                    else:
                        self._complete(entry, envelope, results, state)
                if broken:
                    pool, rebuilds = self._recover_pool(
                        pool, inflight, queue, results, state, workers, rebuilds,
                        kill=False,
                    )
                    if pool is None:
                        self._degrade_serial(queue, results, state)
                        return
                    continue

                if timeout is not None:
                    overdue = [
                        (future, entry)
                        for future, (entry, submitted) in inflight.items()
                        if time.monotonic() - submitted >= timeout
                    ]
                    if overdue:
                        for future, entry in overdue:
                            del inflight[future]
                            self.counters.timeouts += 1
                            self.trace.record(
                                "timeout",
                                task_index=entry.index,
                                kind=entry.task.kind,
                                attempt=entry.attempt,
                                span_id=entry.span_id,
                            )
                            self._retry_or_fail(
                                entry,
                                TimeoutError(
                                    f"task exceeded {timeout}s wall clock"
                                ),
                                state,
                                queue,
                                timed_out=True,
                            )
                        # A hung worker only dies with its pool.
                        pool, rebuilds = self._recover_pool(
                            pool, inflight, queue, results, state, workers, rebuilds,
                            kill=True,
                        )
                        if pool is None:
                            self._degrade_serial(queue, results, state)
                            return
        except BaseException:
            self._shutdown_pool(pool, kill=True)
            raise
        else:
            self._shutdown_pool(pool, kill=False)

    def _wait_timeout(
        self,
        inflight: Dict[Future, Tuple[_Pending, float]],
        queue: Sequence[_Pending],
        limit: int,
    ) -> Optional[float]:
        """How long ``wait()`` may block before the loop must wake up."""
        now = time.monotonic()
        horizons = []
        if self.config.task_timeout_s is not None:
            earliest = min(submitted for _, submitted in inflight.values())
            horizons.append(earliest + self.config.task_timeout_s - now)
        if queue and len(inflight) < limit:
            backoff_wake = min(e.not_before for e in queue)
            if backoff_wake > now:
                horizons.append(backoff_wake - now)
        if not horizons:
            return None
        return max(0.0, min(horizons))

    def _recover_pool(
        self,
        pool: Optional[ProcessPoolExecutor],
        inflight: Dict[Future, Tuple[_Pending, float]],
        queue: List[_Pending],
        results: List[Optional[Dict[str, Any]]],
        state: _RunState,
        workers: int,
        rebuilds: int,
        kill: bool,
    ) -> Tuple[Optional[ProcessPoolExecutor], int]:
        """Drain a broken/killed pool and rebuild it — or degrade.

        Every task still in flight is resolved: completed futures keep
        their results, broken ones go through the retry machinery.
        Returns ``(new_pool, rebuilds)``; ``new_pool`` is ``None`` when
        the rebuild budget is exhausted and the caller must degrade to
        serial execution.
        """
        self._shutdown_pool(pool, kill=kill)
        if inflight:
            # Broken futures resolve ~immediately once the pool is
            # down; the bounded wait is a safety net, not a sleep.
            done, not_done = wait(set(inflight), timeout=5.0)
            for future in done:
                entry, _submitted = inflight.pop(future)
                try:
                    envelope = future.result()
                except Exception as exc:
                    self._retry_or_fail(entry, exc, state, queue)
                else:
                    # The task finished before its worker died.
                    self._complete(entry, envelope, results, state)
            for future in not_done:
                entry, _submitted = inflight.pop(future)
                # Unresolvable — requeue without consuming an attempt.
                queue.append(entry)
                self.trace.record(
                    "requeued", task_index=entry.index, kind=entry.task.kind,
                    attempt=entry.attempt, span_id=entry.span_id,
                )
        if rebuilds >= self.config.max_pool_rebuilds:
            self.counters.degraded_serial += 1
            self.trace.record(
                "degrade_serial",
                detail=f"after {rebuilds} rebuild(s)",
            )
            return None, rebuilds
        rebuilds += 1
        self.counters.pool_rebuilds += 1
        self.trace.record("pool_rebuild", detail=f"rebuild #{rebuilds}")
        return ProcessPoolExecutor(max_workers=workers), rebuilds

    def _degrade_serial(
        self,
        queue: List[_Pending],
        results: List[Optional[Dict[str, Any]]],
        state: _RunState,
    ) -> None:
        """Run every remaining point in-process, in task order."""
        queue.sort(key=lambda entry: entry.index)
        self._run_serial(queue, results, state)

    # -- completion / failure handling -------------------------------------
    def _complete(
        self,
        entry: _Pending,
        envelope: Dict[str, Any],
        results: List[Optional[Dict[str, Any]]],
        state: _RunState,
    ) -> None:
        result = envelope["result"]
        if self.cache is not None:
            self.cache.put(entry.key, result, entry.task.describe())
        results[entry.index] = result
        state.executed += 1
        state.done += 1
        checkpoint = envelope.get("checkpoint")
        if checkpoint and checkpoint.get("resume_seq") is not None:
            # This attempt picked the simulation up mid-run instead of
            # recomputing from t=0 — the crash-recovery path working.
            self.trace.record(
                "checkpoint_resume",
                task_index=entry.index,
                kind=entry.task.kind,
                attempt=entry.attempt,
                span_id=entry.span_id,
                detail=(
                    f"seq={checkpoint['resume_seq']} "
                    f"sim_time_us={checkpoint['resume_sim_time_us']}"
                ),
            )
        if self.spans is not None:
            worker_spans = envelope.get("spans")
            if worker_spans:
                self.spans.adopt(worker_spans)
            if entry.span_id is not None:
                self.spans.end(entry.span_id)
        self.trace.record(
            "finished",
            task_index=entry.index,
            kind=entry.task.kind,
            attempt=entry.attempt,
            duration_s=envelope.get("elapsed_s"),
            worker_pid=envelope.get("worker_pid"),
            span_id=entry.span_id,
        )
        self._progress(state.done, state.total)

    def _retry_or_fail(
        self,
        entry: _Pending,
        exc: BaseException,
        state: _RunState,
        queue: Optional[List[_Pending]] = None,
        timed_out: bool = False,
    ) -> bool:
        """Schedule a retry for ``entry`` or record its permanent failure.

        Returns ``True`` when a retry was scheduled.  In ``"raise"``
        mode a permanent failure raises :class:`RunnerTaskError`
        immediately (counters are finalized by ``run()``'s ``finally``).
        """
        if entry.attempt < self.config.retries:
            entry.attempt += 1
            entry.not_before = time.monotonic() + self._backoff.sample(
                entry.attempt
            )
            self.counters.retried += 1
            self.trace.record(
                "retried",
                task_index=entry.index,
                kind=entry.task.kind,
                attempt=entry.attempt,
                error=repr(exc),
                span_id=entry.span_id,
            )
            if queue is not None:
                queue.append(entry)
            return True
        failure = TaskFailure(
            task_index=entry.index,
            kind=entry.task.kind,
            key=entry.key,
            attempts=entry.attempt + 1,
            error_type=type(exc).__name__,
            error=str(exc) or repr(exc),
            timed_out=timed_out,
            # Where a re-run would resume this point from, if anywhere.
            checkpoint=checkpoint_status(entry.task),
        )
        state.failures.append(failure)
        state.done += 1
        if self.spans is not None and entry.span_id is not None:
            self.spans.end(entry.span_id, status="error")
        self.trace.record(
            "failed",
            task_index=entry.index,
            kind=entry.task.kind,
            attempt=entry.attempt,
            error=repr(exc),
            span_id=entry.span_id,
        )
        self._progress(state.done, state.total)
        if self.config.on_failure == "raise":
            raise RunnerTaskError(
                f"task {entry.index} ({entry.task.kind}) failed after "
                f"{failure.attempts} attempt(s): {failure.error_type}: "
                f"{failure.error}",
                failures=[failure],
            ) from exc
        return False

    def _progress(self, done: int, total: int) -> None:
        self._write_metrics()
        if self.config.progress is not None:
            self.config.progress(done, total)

    @staticmethod
    def _shutdown_pool(
        pool: Optional[ProcessPoolExecutor], kill: bool
    ) -> None:
        if pool is None:
            return
        if kill:
            # A hung or crashed worker never drains the call queue;
            # terminate the processes outright before shutdown.
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)

    # -- simulation conveniences ------------------------------------------
    def run_scenarios(
        self,
        scenarios: Sequence[ScenarioConfig],
        root_seed: int = 1,
        repetitions: int = 1,
        record_winners: bool = False,
    ) -> List[List[SimPointResult]]:
        """Simulate every ``(scenario, repetition)`` pair.

        Point ``i`` (the scenario's position) at repetition ``r`` is
        seeded from ``(root_seed, i, r)`` per the determinism contract;
        the scenario's own ``seed`` field is *not* used.  Returns one
        list of :class:`SimPointResult` per scenario, repetition-major.
        """
        tasks = []
        for i, scenario in enumerate(scenarios):
            payload = {
                "scenario": scenario_to_jsonable(scenario),
                "record_winners": record_winners,
            }
            for rep in range(repetitions):
                tasks.append(
                    Task(
                        kind=TaskKind.SIMULATE,
                        payload=payload,
                        seed=SeedSpec(
                            root_seed=root_seed,
                            point_index=i,
                            repetition=rep,
                        ),
                    )
                )
        raw = self.run(tasks)
        require_complete(raw, self.failures)
        grouped: List[List[SimPointResult]] = []
        for i, scenario in enumerate(scenarios):
            chunk = raw[i * repetitions : (i + 1) * repetitions]
            grouped.append(
                [rehydrate_simulation(scenario, entry) for entry in chunk]
            )
        return grouped

    def run_repetitions(
        self,
        scenario: ScenarioConfig,
        root_seed: int = 1,
        repetitions: int = 1,
        point_index: int = 0,
        record_winners: bool = False,
    ) -> List[SimPointResult]:
        """Repetitions of a single scenario at a fixed point index."""
        payload = {
            "scenario": scenario_to_jsonable(scenario),
            "record_winners": record_winners,
        }
        tasks = [
            Task(
                kind=TaskKind.SIMULATE,
                payload=payload,
                seed=SeedSpec(
                    root_seed=root_seed,
                    point_index=point_index,
                    repetition=rep,
                ),
            )
            for rep in range(repetitions)
        ]
        raw = self.run(tasks)
        require_complete(raw, self.failures)
        return [rehydrate_simulation(scenario, entry) for entry in raw]


def _pool_died_error() -> RuntimeError:
    return RuntimeError(
        "worker process died abruptly (BrokenProcessPool)"
    )


def require_complete(
    results: Sequence[Optional[Dict[str, Any]]],
    failures: Sequence[TaskFailure] = (),
) -> None:
    """Raise :class:`RunnerTaskError` if any result slot is ``None``.

    The guard between a partial-results run and code that rehydrates
    every slot (sweeps, Figure 2 / Table 2, boost validation): instead
    of a ``TypeError`` deep inside aggregation, callers get the failed
    indices and the structured failure records.
    """
    missing = [i for i, entry in enumerate(results) if entry is None]
    if not missing:
        return
    shown = ", ".join(str(i) for i in missing[:8])
    if len(missing) > 8:
        shown += ", ..."
    raise RunnerTaskError(
        f"{len(missing)} of {len(results)} task(s) have no result "
        f"(failed indices: {shown}); inspect runner.failures for "
        "per-task records or re-run with retries",
        failures=failures,
    )


def rehydrate_simulation(
    scenario: ScenarioConfig, entry: Dict[str, Any]
) -> SimPointResult:
    """Rebuild a :class:`SimulationResult` from a task's counters dict."""
    result = SimulationResult(
        scenario=scenario,
        duration_us=entry["duration_us"],
        successes=entry["successes"],
        collisions=entry["collisions"],
        collision_events=entry["collision_events"],
        idle_slots=entry["idle_slots"],
        stations=[StationStats(**s) for s in entry["stations"]],
    )
    winners = entry.get("winners")
    return SimPointResult(
        result=result,
        winners=tuple(winners) if winners is not None else None,
    )
