"""The parallel experiment runner.

:class:`ExperimentRunner` executes an ordered list of
:class:`~repro.runner.tasks.Task` and returns their results *in input
order*, regardless of completion order, worker count or cache state:

1. every task's cache key is computed in the submitting process;
2. cached points are answered from disk;
3. the remaining points run either in-process (``max_workers=1`` — the
   serial fallback, no pool, no pickling) or on a
   :class:`concurrent.futures.ProcessPoolExecutor`;
4. fresh results are written back to the cache (when one is
   configured) and every result is slotted back by task index.

Determinism: each task's random draws are fully specified by its
:class:`~repro.runner.seeding.SeedSpec`, so steps 2–4 cannot change the
numbers — only how fast they arrive.  The determinism contract is
enforced by ``tests/runner/test_determinism.py``.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.config import ScenarioConfig
from ..core.metrics import RunnerCounters
from ..core.results import SimulationResult, StationStats
from .cache import ResultCache, cache_key
from .seeding import SeedSpec
from .serialize import scenario_to_jsonable
from .tasks import Task, TaskKind, execute_task

__all__ = [
    "RunnerConfig",
    "ExperimentRunner",
    "SimPointResult",
    "rehydrate_simulation",
]


@dataclasses.dataclass(frozen=True)
class RunnerConfig:
    """How to execute experiment points.

    Parameters
    ----------
    max_workers:
        ``1`` (default) runs points serially in-process; ``n > 1``
        fans them out over ``n`` worker processes; ``0`` or ``None``
        means "one per CPU".
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables
        caching.
    progress:
        Optional ``callback(done, total)`` invoked in the submitting
        process as points complete.
    """

    max_workers: Optional[int] = 1
    cache_dir: Optional[Union[str, Path]] = None
    progress: Optional[Callable[[int, int], None]] = None

    def resolved_workers(self) -> int:
        if not self.max_workers:
            return max(1, os.cpu_count() or 1)
        if self.max_workers < 0:
            raise ValueError("max_workers must be >= 0 or None")
        return self.max_workers


@dataclasses.dataclass(frozen=True)
class SimPointResult:
    """One simulated point: the counters result plus optional extras."""

    result: SimulationResult
    winners: Optional[Tuple[int, ...]] = None


class ExperimentRunner:
    """Execute experiment tasks in parallel, deterministically, cached."""

    def __init__(
        self,
        max_workers: Optional[int] = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.config = RunnerConfig(
            max_workers=max_workers, cache_dir=cache_dir, progress=progress
        )
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.counters = RunnerCounters()

    # -- core execution ----------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> List[Dict[str, Any]]:
        """Execute ``tasks``; results are returned in task order."""
        tasks = list(tasks)
        start = time.perf_counter()
        workers = self.config.resolved_workers()
        self.counters.points_total += len(tasks)
        self.counters.workers = workers

        results: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
        pending: List[Tuple[int, Task, str]] = []
        for i, task in enumerate(tasks):
            key = cache_key(task.describe())
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    results[i] = cached
                    continue
            pending.append((i, task, key))

        done = len(tasks) - len(pending)
        self._progress(done, len(tasks))

        if workers == 1 or len(pending) <= 1:
            for i, task, key in pending:
                results[i] = self._finish(i, task, key, execute_task(task))
                done += 1
                self._progress(done, len(tasks))
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(execute_task, task): (i, task, key)
                    for i, task, key in pending
                }
                outstanding = set(futures)
                while outstanding:
                    finished, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        i, task, key = futures[future]
                        results[i] = self._finish(
                            i, task, key, future.result()
                        )
                        done += 1
                        self._progress(done, len(tasks))

        self.counters.executed += len(pending)
        if self.cache is not None:
            self.counters.cache_hits += self.cache.hits
            self.counters.cache_misses += self.cache.misses
            self.counters.cache_corrupt += self.cache.corrupt
            self.cache.hits = self.cache.misses = self.cache.corrupt = 0
        self.counters.wall_time_s += time.perf_counter() - start
        return results  # type: ignore[return-value]

    def _finish(
        self, index: int, task: Task, key: str, result: Dict[str, Any]
    ) -> Dict[str, Any]:
        if self.cache is not None:
            self.cache.put(key, result, task.describe())
        return result

    def _progress(self, done: int, total: int) -> None:
        if self.config.progress is not None:
            self.config.progress(done, total)

    # -- simulation conveniences ------------------------------------------
    def run_scenarios(
        self,
        scenarios: Sequence[ScenarioConfig],
        root_seed: int = 1,
        repetitions: int = 1,
        record_winners: bool = False,
    ) -> List[List[SimPointResult]]:
        """Simulate every ``(scenario, repetition)`` pair.

        Point ``i`` (the scenario's position) at repetition ``r`` is
        seeded from ``(root_seed, i, r)`` per the determinism contract;
        the scenario's own ``seed`` field is *not* used.  Returns one
        list of :class:`SimPointResult` per scenario, repetition-major.
        """
        tasks = []
        for i, scenario in enumerate(scenarios):
            payload = {
                "scenario": scenario_to_jsonable(scenario),
                "record_winners": record_winners,
            }
            for rep in range(repetitions):
                tasks.append(
                    Task(
                        kind=TaskKind.SIMULATE,
                        payload=payload,
                        seed=SeedSpec(
                            root_seed=root_seed,
                            point_index=i,
                            repetition=rep,
                        ),
                    )
                )
        raw = self.run(tasks)
        grouped: List[List[SimPointResult]] = []
        for i, scenario in enumerate(scenarios):
            chunk = raw[i * repetitions : (i + 1) * repetitions]
            grouped.append(
                [rehydrate_simulation(scenario, entry) for entry in chunk]
            )
        return grouped

    def run_repetitions(
        self,
        scenario: ScenarioConfig,
        root_seed: int = 1,
        repetitions: int = 1,
        point_index: int = 0,
        record_winners: bool = False,
    ) -> List[SimPointResult]:
        """Repetitions of a single scenario at a fixed point index."""
        payload = {
            "scenario": scenario_to_jsonable(scenario),
            "record_winners": record_winners,
        }
        tasks = [
            Task(
                kind=TaskKind.SIMULATE,
                payload=payload,
                seed=SeedSpec(
                    root_seed=root_seed,
                    point_index=point_index,
                    repetition=rep,
                ),
            )
            for rep in range(repetitions)
        ]
        return [
            rehydrate_simulation(scenario, entry) for entry in self.run(tasks)
        ]


def rehydrate_simulation(
    scenario: ScenarioConfig, entry: Dict[str, Any]
) -> SimPointResult:
    """Rebuild a :class:`SimulationResult` from a task's counters dict."""
    result = SimulationResult(
        scenario=scenario,
        duration_us=entry["duration_us"],
        successes=entry["successes"],
        collisions=entry["collisions"],
        collision_events=entry["collision_events"],
        idle_slots=entry["idle_slots"],
        stations=[StationStats(**s) for s in entry["stations"]],
    )
    winners = entry.get("winners")
    return SimPointResult(
        result=result,
        winners=tuple(winners) if winners is not None else None,
    )
