"""Deterministic per-point seed derivation.

The determinism contract of the runner: a point's random draws depend
*only* on ``(root_seed, point_index, repetition)`` — never on worker
count, scheduling order, or whether neighbouring points were served from
the cache.  The derivation uses :class:`numpy.random.SeedSequence`'s
spawn mechanism: the sequence

    ``SeedSequence(root_seed).spawn(i + 1)[i].spawn(r + 1)[r]``

is, by the SeedSequence spawn-key construction, identical to

    ``SeedSequence(root_seed, spawn_key=(i, r))``

which is what :func:`derive_seed_sequence` builds directly (O(1) instead
of materializing ``i`` siblings).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..engine.randomness import RandomStreams

__all__ = ["SeedSpec", "derive_seed_sequence", "streams_for"]


@dataclasses.dataclass(frozen=True)
class SeedSpec:
    """How to seed one experiment point.

    Three modes:

    - *derived* (the default): the point's root
      :class:`~numpy.random.SeedSequence` is spawned from
      ``(root_seed, point_index, repetition)`` — reproducible and
      collision-free across an arbitrary grid of points;
    - *explicit* (``explicit_seed`` set): the point uses exactly that
      integer as its root seed, bypassing derivation.  This preserves
      the historical seeding of retrofitted procedures (e.g. the §3.2
      testbed tests' ``seed + repetition * 1000``) bit-for-bit.
    - *legacy repetition* (``legacy_rep`` also set): the point's tree
      is ``RandomStreams(explicit_seed).spawn("rep", legacy_rep)`` —
      exactly how :func:`repro.core.simulator.simulate` seeds its
      repetitions.  This lets procedures that historically called
      ``simulate(scenario, repetitions=r)`` directly (e.g.
      ``compare_model_to_simulation``) route through the runner/batch
      paths while reproducing their golden numbers bit-for-bit.

    ``as_jsonable`` omits ``legacy_rep`` when unset, so every
    pre-existing task description — and therefore every existing cache
    key — stays byte-identical.
    """

    root_seed: int = 1
    point_index: int = 0
    repetition: int = 0
    explicit_seed: Optional[int] = None
    legacy_rep: Optional[int] = None

    def __post_init__(self) -> None:
        if self.point_index < 0 or self.repetition < 0:
            raise ValueError("point_index and repetition must be >= 0")
        if self.legacy_rep is not None and self.explicit_seed is None:
            raise ValueError(
                "legacy_rep requires explicit_seed (the scenario seed "
                "the historical simulate() call would have used)"
            )

    def as_jsonable(self) -> dict:
        data = dataclasses.asdict(self)
        if data["legacy_rep"] is None:
            # Keep pre-legacy_rep task descriptions (and cache keys)
            # byte-identical.
            del data["legacy_rep"]
        return data

    @classmethod
    def from_jsonable(cls, data: dict) -> "SeedSpec":
        return cls(**data)


def derive_seed_sequence(spec: SeedSpec) -> np.random.SeedSequence:
    """The point's root ``SeedSequence`` under the determinism contract."""
    if spec.legacy_rep is not None:
        # simulate()'s historical per-repetition derivation.
        root = RandomStreams(spec.explicit_seed)
        return root.spawn("rep", spec.legacy_rep)._root
    if spec.explicit_seed is not None:
        return np.random.SeedSequence(spec.explicit_seed)
    return np.random.SeedSequence(
        entropy=spec.root_seed,
        spawn_key=(spec.point_index, spec.repetition),
    )


def streams_for(spec: SeedSpec) -> RandomStreams:
    """A :class:`RandomStreams` tree rooted at the point's sequence.

    The tree hands every simulator component (each station's backoff
    draws, each traffic source) its own named substream, exactly as the
    serial code paths do — only the root differs.
    """
    return RandomStreams.from_seed_sequence(
        derive_seed_sequence(spec), seed=spec.explicit_seed
        if spec.explicit_seed is not None
        else spec.root_seed,
    )
