"""Canonical JSON forms of the configuration dataclasses.

Two consumers with the same requirement — a *stable, process-independent
representation* of a configuration:

- the cache (:mod:`repro.runner.cache`) hashes it into the cache key, so
  it must not depend on ``hash()`` randomization, dict insertion order or
  dataclass field order;
- the worker processes (:mod:`repro.runner.tasks`) rebuild the config
  objects from it, so it must round-trip exactly.

``canonical_json`` sorts keys and uses minimal separators, which makes
the byte string (and therefore the hash) independent of the order in
which fields were assembled.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..core import parameters as P
from ..core.config import CsmaConfig, ScenarioConfig, StationConfig, TimingConfig

__all__ = [
    "canonical_json",
    "csma_to_jsonable",
    "csma_from_jsonable",
    "timing_to_jsonable",
    "timing_from_jsonable",
    "station_to_jsonable",
    "station_from_jsonable",
    "scenario_to_jsonable",
    "scenario_from_jsonable",
]


def canonical_json(obj: Any) -> str:
    """Serialize ``obj`` to a canonical JSON string.

    Keys are sorted and separators minimal, so two structurally equal
    objects always produce the same bytes — the property the cache key
    relies on.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def csma_to_jsonable(config: CsmaConfig) -> Dict[str, Any]:
    return {
        "cw": list(config.cw),
        "dc": list(config.dc),
        "protocol": config.protocol,
        "retry_limit": config.retry_limit,
    }


def csma_from_jsonable(data: Dict[str, Any]) -> CsmaConfig:
    return CsmaConfig(
        cw=tuple(data["cw"]),
        dc=tuple(data["dc"]),
        protocol=data["protocol"],
        retry_limit=data["retry_limit"],
    )


def timing_to_jsonable(timing: TimingConfig) -> Dict[str, Any]:
    return {
        "slot": timing.slot,
        "ts": timing.ts,
        "tc": timing.tc,
        "frame": timing.frame,
    }


def timing_from_jsonable(data: Dict[str, Any]) -> TimingConfig:
    return TimingConfig(
        slot=data["slot"], ts=data["ts"], tc=data["tc"], frame=data["frame"]
    )


def station_to_jsonable(station: StationConfig) -> Dict[str, Any]:
    return {
        "csma": csma_to_jsonable(station.csma),
        "priority": int(station.priority),
        "arrival_rate_pps": station.arrival_rate_pps,
        "queue_capacity": station.queue_capacity,
        "name": station.name,
    }


def station_from_jsonable(data: Dict[str, Any]) -> StationConfig:
    return StationConfig(
        csma=csma_from_jsonable(data["csma"]),
        priority=P.PriorityClass(data["priority"]),
        arrival_rate_pps=data["arrival_rate_pps"],
        queue_capacity=data["queue_capacity"],
        name=data["name"],
    )


def scenario_to_jsonable(scenario: ScenarioConfig) -> Dict[str, Any]:
    return {
        "stations": [station_to_jsonable(s) for s in scenario.stations],
        "timing": timing_to_jsonable(scenario.timing),
        "sim_time_us": scenario.sim_time_us,
        "seed": scenario.seed,
    }


def scenario_from_jsonable(data: Dict[str, Any]) -> ScenarioConfig:
    return ScenarioConfig(
        stations=tuple(
            station_from_jsonable(s) for s in data["stations"]
        ),
        timing=timing_from_jsonable(data["timing"]),
        sim_time_us=data["sim_time_us"],
        seed=data["seed"],
    )
