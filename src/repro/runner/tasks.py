"""Task descriptions and worker entry points.

A :class:`Task` is the unit the runner schedules: a *kind* (which
module-level worker function executes it), a JSON-serializable
*payload*, and an optional :class:`~repro.runner.seeding.SeedSpec`.
Keeping payloads JSON-able buys three things at once: tasks pickle
cheaply into worker processes, the cache key is a content hash of
exactly what determines the result, and cached results are readable on
disk.

Worker functions return plain dicts of counters (never live objects
with traces or RNG state), which the experiment retrofits re-hydrate
into their domain types (:class:`~repro.core.results.SimulationResult`,
:class:`~repro.experiments.procedures.CollisionTest`, ...).

Task kinds
----------
``simulate``
    One scenario, one repetition, seeded per the task's
    :class:`SeedSpec`.  Optionally records the winner sequence (for
    fairness studies).
``model_curve``
    Analytical predictions (:class:`~repro.analysis.model.Model1901`,
    or :class:`~repro.analysis.bianchi.Bianchi80211Model` for the
    ``"80211"`` family) for one configuration over a list of station
    counts.  Deterministic — carries no seed, so identical curves are
    shared between sweeps with different root seeds.
``simulate_batch``
    An *array* of scenario points advanced in lockstep by the
    vectorized :class:`~repro.batch.kernel.BatchSlotKernel` (one
    worker dispatch for the whole array).  Each point carries its own
    scenario and :class:`SeedSpec` in the payload and produces exactly
    the dict a ``simulate`` task for the same point would — the batch
    kernel is bit-exact against :class:`~repro.core.simulator
    .SlotSimulator` — so :class:`~repro.runner.batch.BatchRunner` can
    cache each point under its *scalar* task key and batch/scalar
    executions interoperate through the same cache entries.
``collision_test``
    One §3.2 emulated-testbed test
    (:func:`repro.experiments.procedures.run_collision_test`), seeded
    explicitly to preserve the historical testbed seeding bit-for-bit.
    An optional ``payload["obs"]`` dict (an
    :class:`~repro.obs.capture.ObsConfig` as JSON) captures MAC/SoF
    traces, metrics and a profile for the point; the artifact paths
    come back under ``result["obs"]``.  An optional ``payload["chaos"]``
    dict (a :class:`~repro.chaos.plan.ChaosPlan` as JSON) runs the test
    under fault injection with the runtime invariant checker; the
    injection ledger and checker summary come back under
    ``result["chaos"]``.  Both dicts ride in the payload and therefore
    in the cache key.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Dict, Optional

from .seeding import SeedSpec, streams_for
from .serialize import (
    csma_from_jsonable,
    scenario_from_jsonable,
    timing_from_jsonable,
)

__all__ = [
    "Task",
    "TaskKind",
    "checkpoint_status",
    "execute_task",
    "run_task",
    "simulation_result_dict",
]


class TaskKind:
    """Names of the registered task kinds."""

    SIMULATE = "simulate"
    SIMULATE_BATCH = "simulate_batch"
    MODEL_CURVE = "model_curve"
    COLLISION_TEST = "collision_test"


@dataclasses.dataclass(frozen=True)
class Task:
    """One schedulable experiment point."""

    kind: str
    payload: Dict[str, Any]
    seed: Optional[SeedSpec] = None
    #: Execution-time settings that must NOT change the result — today
    #: the checkpoint/resume knobs (``checkpoint_dir``,
    #: ``checkpoint_every_us``, ``resume``).  Deliberately excluded from
    #: :meth:`describe` and from equality: a checkpointed run is
    #: bit-identical to an uninterrupted one (the tentpole invariant of
    #: :mod:`repro.checkpoint`), so it shares the same cache key.
    runtime: Optional[Dict[str, Any]] = dataclasses.field(
        default=None, compare=False
    )

    def describe(self) -> Dict[str, Any]:
        """The JSON-able description hashed into the cache key.

        ``runtime`` is intentionally absent: it only controls *how*
        the point executes (snapshot cadence, crash resumption), never
        what numbers come out.
        """
        return {
            "kind": self.kind,
            "payload": self.payload,
            "seed": self.seed.as_jsonable() if self.seed else None,
        }


def simulation_result_dict(result) -> Dict[str, Any]:
    """The JSON-able counters dict of a ``simulate``-family result.

    Shared by the scalar and batch executors so their outputs are
    field-for-field identical — the property that lets batch-computed
    points live in the cache under scalar ``simulate`` task keys.
    """
    return {
        "duration_us": result.duration_us,
        "successes": result.successes,
        "collisions": result.collisions,
        "collision_events": result.collision_events,
        "idle_slots": result.idle_slots,
        "stations": [
            {
                "index": s.index,
                "successes": s.successes,
                "collisions": s.collisions,
                "drops": s.drops,
                "jumps": s.jumps,
                "arrivals": s.arrivals,
                "queue_losses": s.queue_losses,
            }
            for s in result.stations
        ],
    }


def _run_simulate(
    payload: Dict[str, Any],
    seed: SeedSpec,
    runtime: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    from ..core.simulator import SlotSimulator

    scenario = scenario_from_jsonable(payload["scenario"])
    record_winners = bool(payload.get("record_winners", False))
    checkpoint_dir = (runtime or {}).get("checkpoint_dir")
    if checkpoint_dir:
        from ..checkpoint import (
            CheckpointStore,
            restore_slot_simulator,
            run_simulate_with_checkpoints,
        )
        from ..checkpoint.format import journal_event

        store = CheckpointStore(checkpoint_dir)
        newest = (
            store.latest_valid()
            if (runtime or {}).get("resume", True)
            else None
        )
        if newest is not None and newest.kind == "slotsim":
            journal_event(
                checkpoint_dir,
                "checkpoint_resume",
                kind=newest.kind,
                seq=newest.seq,
                sim_time_us=newest.sim_time_us,
            )
            sim = restore_slot_simulator(scenario, newest.state)
        else:
            sim = SlotSimulator(
                scenario,
                record_trace=record_winners,
                streams=streams_for(seed),
            )
        result = run_simulate_with_checkpoints(
            sim,
            store,
            every_us=(runtime or {}).get("checkpoint_every_us"),
            meta={
                "kind": TaskKind.SIMULATE,
                "payload": payload,
                "seed": seed.as_jsonable() if seed else None,
            },
        )
    else:
        sim = SlotSimulator(
            scenario,
            record_trace=record_winners,
            streams=streams_for(seed),
        )
        result = sim.run()
    out = simulation_result_dict(result)
    if record_winners:
        out["winners"] = [int(w) for w in result.trace.winners()]
    return out


def _run_simulate_batch(
    payload: Dict[str, Any],
    seed: Optional[SeedSpec],
    runtime: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Advance an array of points in lockstep through the batch kernel.

    ``payload["points"]`` is a list of ``{"scenario": ..., "seed":
    ...}`` dicts (scenario as JSON-able, seed a :class:`SeedSpec`
    as-jsonable).  Every point gets the same per-(point, station)
    streams a scalar ``simulate`` task would, so the returned
    ``points`` list holds dicts bit-identical to what ``simulate``
    would produce for each.  Raises :class:`~repro.batch.kernel
    .UnsupportedScenario` if any point falls outside the kernel's
    support matrix — routing/fallback is the caller's job
    (:class:`~repro.runner.batch.BatchRunner`).
    """
    from ..batch.kernel import BatchSlotKernel

    scenarios = []
    streams = []
    for point in payload["points"]:
        if point.get("record_winners"):
            raise ValueError(
                "record_winners is not supported on the batch path; "
                "use a scalar simulate task"
            )
        scenarios.append(scenario_from_jsonable(point["scenario"]))
        streams.append(
            streams_for(SeedSpec.from_jsonable(point["seed"]))
        )
    kernel = BatchSlotKernel(scenarios, streams=streams)
    return {
        "points": [
            simulation_result_dict(result) for result in kernel.run()
        ]
    }


def _run_model_curve(
    payload: Dict[str, Any],
    seed: Optional[SeedSpec],
    runtime: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    from ..analysis.bianchi import Bianchi80211Model
    from ..analysis.model import Model1901

    config = csma_from_jsonable(payload["csma"])
    timing = timing_from_jsonable(payload["timing"])
    if payload.get("family", "1901") == "80211":
        model = Bianchi80211Model.from_config(config, timing)
    else:
        model = Model1901(
            config, timing, method=payload.get("method", "recursive")
        )
    points = []
    for n in payload["station_counts"]:
        prediction = model.solve(n)
        points.append(
            {
                "num_stations": int(n),
                "normalized_throughput": prediction.normalized_throughput,
                "collision_probability": prediction.collision_probability,
                "tau": prediction.tau,
            }
        )
    return {"points": points}


def _run_collision_test(
    payload: Dict[str, Any],
    seed: Optional[SeedSpec],
    runtime: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    obs = payload.get("obs")
    chaos = payload.get("chaos")
    capture = None
    checkpoint_dir = (runtime or {}).get("checkpoint_dir")
    if checkpoint_dir and obs is None:
        # Checkpointed execution: bit-identical to the plain/chaos
        # branches below (enforced by tests/checkpoint/), so the result
        # is safe to share a cache key with uncheckpointed runs.  An
        # ``obs`` capture session streams artifacts to disk as the sim
        # runs and cannot be re-entered mid-run, so obs points fall
        # through to straight-through execution.
        from ..checkpoint import (
            CheckpointStore,
            checkpointed_collision_test,
            resume_collision_test,
        )
        from ..checkpoint.format import journal_event

        store = CheckpointStore(checkpoint_dir)
        newest = (
            store.latest_valid()
            if (runtime or {}).get("resume", True)
            else None
        )
        if newest is not None:
            journal_event(
                checkpoint_dir,
                "checkpoint_resume",
                kind=newest.kind,
                seq=newest.seq,
                sim_time_us=newest.sim_time_us,
            )
            outcome = resume_collision_test(store, checkpoint=newest)
        else:
            outcome = checkpointed_collision_test(
                payload["num_stations"],
                store,
                duration_us=payload["duration_us"],
                warmup_us=payload["warmup_us"],
                seed=payload["seed"],
                checkpoint_every_us=(runtime or {}).get(
                    "checkpoint_every_us"
                ),
                plan=chaos,
                **payload.get("testbed_kwargs", {}),
            )
        if chaos is not None:
            test, chaos_report = outcome
        else:
            test, chaos_report = outcome, None
        result = {
            "num_stations": test.num_stations,
            "duration_us": test.duration_us,
            "per_station": [
                [mac, int(acked), int(collided)]
                for mac, acked, collided in test.per_station
            ],
            "goodput_mbps": test.goodput_mbps,
        }
        if chaos_report is not None:
            result["chaos"] = chaos_report
        return result
    if chaos is not None:
        # Chaos plan in the payload → fault-injected test.  The plan
        # dict is part of Task.describe(), hence of the cache key, so
        # (scenario, plan, seed) triples are memoized bit-exactly and
        # identical across the serial and parallel runner paths.
        from ..chaos.experiment import chaos_collision_test

        test, chaos_report = chaos_collision_test(
            payload["num_stations"],
            chaos,
            duration_us=payload["duration_us"],
            warmup_us=payload["warmup_us"],
            seed=payload["seed"],
            obs=obs,
            **payload.get("testbed_kwargs", {}),
        )
        capture = chaos_report.pop("capture", None)
        result = {
            "num_stations": test.num_stations,
            "duration_us": test.duration_us,
            "per_station": [
                [mac, int(acked), int(collided)]
                for mac, acked, collided in test.per_station
            ],
            "goodput_mbps": test.goodput_mbps,
            "chaos": chaos_report,
        }
        if capture is not None:
            result["obs"] = capture
        return result
    if obs is not None:
        from ..obs.capture import observed_collision_test

        test, capture = observed_collision_test(
            payload["num_stations"],
            obs,
            duration_us=payload["duration_us"],
            warmup_us=payload["warmup_us"],
            seed=payload["seed"],
            **payload.get("testbed_kwargs", {}),
        )
    else:
        from ..experiments.procedures import run_collision_test

        test = run_collision_test(
            payload["num_stations"],
            duration_us=payload["duration_us"],
            warmup_us=payload["warmup_us"],
            seed=payload["seed"],
            **payload.get("testbed_kwargs", {}),
        )
    result = {
        "num_stations": test.num_stations,
        "duration_us": test.duration_us,
        "per_station": [
            [mac, int(acked), int(collided)]
            for mac, acked, collided in test.per_station
        ],
        "goodput_mbps": test.goodput_mbps,
    }
    if obs is not None:
        # The obs config is part of the cache key, so a cache hit
        # returns these paths without regenerating the files on disk.
        result["obs"] = capture
    return result


_EXECUTORS = {
    TaskKind.SIMULATE: _run_simulate,
    TaskKind.SIMULATE_BATCH: _run_simulate_batch,
    TaskKind.MODEL_CURVE: _run_model_curve,
    TaskKind.COLLISION_TEST: _run_collision_test,
}


def execute_task(task: Task) -> Dict[str, Any]:
    """Run one task to completion."""
    try:
        executor = _EXECUTORS[task.kind]
    except KeyError:
        raise ValueError(f"unknown task kind {task.kind!r}") from None
    return executor(task.payload, task.seed, task.runtime)


def checkpoint_status(task: Task) -> Optional[Dict[str, Any]]:
    """What the checkpoint store holds for ``task`` right now.

    ``None`` when the task carries no checkpoint runtime.  Otherwise a
    small JSON-able summary: the store directory, how many valid
    snapshots it holds, and — when resumption is enabled and a valid
    snapshot exists — the seq/sim-time the next execution will resume
    from.  Used by the runner for trace events and
    :class:`~repro.runner.telemetry.TaskFailure` records.
    """
    runtime = task.runtime or {}
    directory = runtime.get("checkpoint_dir")
    if not directory:
        return None
    from ..checkpoint import CheckpointStore

    rows = CheckpointStore(directory).entries()
    valid = [row for row in rows if row["valid"]]
    info: Dict[str, Any] = {
        "dir": str(directory),
        "checkpoints": len(rows),
        "valid_checkpoints": len(valid),
        "resume": bool(runtime.get("resume", True)),
    }
    if valid and info["resume"]:
        newest = valid[-1]
        info["resume_seq"] = newest["seq"]
        info["resume_sim_time_us"] = newest["header"]["sim_time_us"]
    return info


def run_task(task: Task) -> Dict[str, Any]:
    """Worker-process entry point: fault hook, timing, pid annotation.

    Wraps :func:`execute_task` in an envelope carrying the executing
    worker's pid and wall-clock duration for the telemetry layer, and
    applies the :mod:`repro.runner.faults` injection hook (a no-op
    unless ``REPRO_FAULT_INJECT`` is configured).  For checkpointed
    tasks the envelope also carries the pre-execution
    :func:`checkpoint_status`, so the runner can trace whether this
    attempt started fresh or resumed mid-simulation.  The runner caches
    and returns only ``envelope["result"]``.

    When the task runtime carries a ``telemetry`` dict (attached by a
    span-enabled :class:`~repro.runner.runner.ExperimentRunner`), the
    execution happens inside an activated
    :class:`~repro.telemetry.context.TelemetryContext` under an
    ``attempt`` span — so every JSONL line written *in this process*
    carries the sweep's ``run_id``, and the attempt's span records
    return to the runner via ``envelope["spans"]``.  Without it, this
    function touches no telemetry code at all.
    """
    from .faults import inject_for_task

    telemetry = (task.runtime or {}).get("telemetry")
    if telemetry is None:
        inject_for_task(task)
        checkpoints = checkpoint_status(task)
        started = time.perf_counter()
        result = execute_task(task)
        envelope = {
            "result": result,
            "worker_pid": os.getpid(),
            "elapsed_s": time.perf_counter() - started,
        }
        if checkpoints is not None:
            envelope["checkpoint"] = checkpoints
        return envelope

    from ..obs.recording import as_jsonable
    from ..telemetry.context import TelemetryContext, activate
    from ..telemetry.spans import SpanRecorder

    recorder = SpanRecorder(run_id=telemetry.get("run_id"))
    parent_id = telemetry.get("parent_span_id")
    context = TelemetryContext(
        recorder.run_id, parent_id, recorder=recorder
    )
    with activate(context):
        attempt_id = recorder.start(
            "attempt",
            parent_id=parent_id,
            kind=task.kind,
            worker_pid=os.getpid(),
        )
        context.span_id = attempt_id
        try:
            inject_for_task(task)
            checkpoints = checkpoint_status(task)
            started = time.perf_counter()
            result = execute_task(task)
        except BaseException:
            recorder.end(attempt_id, status="error")
            raise
        recorder.end(attempt_id)
    envelope = {
        "result": result,
        "worker_pid": os.getpid(),
        "elapsed_s": time.perf_counter() - started,
        "spans": [as_jsonable(event) for event in recorder.events],
    }
    if checkpoints is not None:
        envelope["checkpoint"] = checkpoints
    return envelope
