"""Task descriptions and worker entry points.

A :class:`Task` is the unit the runner schedules: a *kind* (which
module-level worker function executes it), a JSON-serializable
*payload*, and an optional :class:`~repro.runner.seeding.SeedSpec`.
Keeping payloads JSON-able buys three things at once: tasks pickle
cheaply into worker processes, the cache key is a content hash of
exactly what determines the result, and cached results are readable on
disk.

Worker functions return plain dicts of counters (never live objects
with traces or RNG state), which the experiment retrofits re-hydrate
into their domain types (:class:`~repro.core.results.SimulationResult`,
:class:`~repro.experiments.procedures.CollisionTest`, ...).

Task kinds
----------
``simulate``
    One scenario, one repetition, seeded per the task's
    :class:`SeedSpec`.  Optionally records the winner sequence (for
    fairness studies).
``model_curve``
    Analytical predictions (:class:`~repro.analysis.model.Model1901`,
    or :class:`~repro.analysis.bianchi.Bianchi80211Model` for the
    ``"80211"`` family) for one configuration over a list of station
    counts.  Deterministic — carries no seed, so identical curves are
    shared between sweeps with different root seeds.
``collision_test``
    One §3.2 emulated-testbed test
    (:func:`repro.experiments.procedures.run_collision_test`), seeded
    explicitly to preserve the historical testbed seeding bit-for-bit.
    An optional ``payload["obs"]`` dict (an
    :class:`~repro.obs.capture.ObsConfig` as JSON) captures MAC/SoF
    traces, metrics and a profile for the point; the artifact paths
    come back under ``result["obs"]``.  An optional ``payload["chaos"]``
    dict (a :class:`~repro.chaos.plan.ChaosPlan` as JSON) runs the test
    under fault injection with the runtime invariant checker; the
    injection ledger and checker summary come back under
    ``result["chaos"]``.  Both dicts ride in the payload and therefore
    in the cache key.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Dict, Optional

from .seeding import SeedSpec, streams_for
from .serialize import (
    csma_from_jsonable,
    scenario_from_jsonable,
    timing_from_jsonable,
)

__all__ = ["Task", "TaskKind", "execute_task", "run_task"]


class TaskKind:
    """Names of the registered task kinds."""

    SIMULATE = "simulate"
    MODEL_CURVE = "model_curve"
    COLLISION_TEST = "collision_test"


@dataclasses.dataclass(frozen=True)
class Task:
    """One schedulable experiment point."""

    kind: str
    payload: Dict[str, Any]
    seed: Optional[SeedSpec] = None

    def describe(self) -> Dict[str, Any]:
        """The JSON-able description hashed into the cache key."""
        return {
            "kind": self.kind,
            "payload": self.payload,
            "seed": self.seed.as_jsonable() if self.seed else None,
        }


def _run_simulate(payload: Dict[str, Any], seed: SeedSpec) -> Dict[str, Any]:
    from ..core.simulator import SlotSimulator

    scenario = scenario_from_jsonable(payload["scenario"])
    record_winners = bool(payload.get("record_winners", False))
    sim = SlotSimulator(
        scenario,
        record_trace=record_winners,
        streams=streams_for(seed),
    )
    result = sim.run()
    out: Dict[str, Any] = {
        "duration_us": result.duration_us,
        "successes": result.successes,
        "collisions": result.collisions,
        "collision_events": result.collision_events,
        "idle_slots": result.idle_slots,
        "stations": [
            {
                "index": s.index,
                "successes": s.successes,
                "collisions": s.collisions,
                "drops": s.drops,
                "jumps": s.jumps,
                "arrivals": s.arrivals,
                "queue_losses": s.queue_losses,
            }
            for s in result.stations
        ],
    }
    if record_winners:
        out["winners"] = [int(w) for w in result.trace.winners()]
    return out


def _run_model_curve(
    payload: Dict[str, Any], seed: Optional[SeedSpec]
) -> Dict[str, Any]:
    from ..analysis.bianchi import Bianchi80211Model
    from ..analysis.model import Model1901

    config = csma_from_jsonable(payload["csma"])
    timing = timing_from_jsonable(payload["timing"])
    if payload.get("family", "1901") == "80211":
        model = Bianchi80211Model.from_config(config, timing)
    else:
        model = Model1901(
            config, timing, method=payload.get("method", "recursive")
        )
    points = []
    for n in payload["station_counts"]:
        prediction = model.solve(n)
        points.append(
            {
                "num_stations": int(n),
                "normalized_throughput": prediction.normalized_throughput,
                "collision_probability": prediction.collision_probability,
                "tau": prediction.tau,
            }
        )
    return {"points": points}


def _run_collision_test(
    payload: Dict[str, Any], seed: Optional[SeedSpec]
) -> Dict[str, Any]:
    obs = payload.get("obs")
    chaos = payload.get("chaos")
    capture = None
    if chaos is not None:
        # Chaos plan in the payload → fault-injected test.  The plan
        # dict is part of Task.describe(), hence of the cache key, so
        # (scenario, plan, seed) triples are memoized bit-exactly and
        # identical across the serial and parallel runner paths.
        from ..chaos.experiment import chaos_collision_test

        test, chaos_report = chaos_collision_test(
            payload["num_stations"],
            chaos,
            duration_us=payload["duration_us"],
            warmup_us=payload["warmup_us"],
            seed=payload["seed"],
            obs=obs,
            **payload.get("testbed_kwargs", {}),
        )
        capture = chaos_report.pop("capture", None)
        result = {
            "num_stations": test.num_stations,
            "duration_us": test.duration_us,
            "per_station": [
                [mac, int(acked), int(collided)]
                for mac, acked, collided in test.per_station
            ],
            "goodput_mbps": test.goodput_mbps,
            "chaos": chaos_report,
        }
        if capture is not None:
            result["obs"] = capture
        return result
    if obs is not None:
        from ..obs.capture import observed_collision_test

        test, capture = observed_collision_test(
            payload["num_stations"],
            obs,
            duration_us=payload["duration_us"],
            warmup_us=payload["warmup_us"],
            seed=payload["seed"],
            **payload.get("testbed_kwargs", {}),
        )
    else:
        from ..experiments.procedures import run_collision_test

        test = run_collision_test(
            payload["num_stations"],
            duration_us=payload["duration_us"],
            warmup_us=payload["warmup_us"],
            seed=payload["seed"],
            **payload.get("testbed_kwargs", {}),
        )
    result = {
        "num_stations": test.num_stations,
        "duration_us": test.duration_us,
        "per_station": [
            [mac, int(acked), int(collided)]
            for mac, acked, collided in test.per_station
        ],
        "goodput_mbps": test.goodput_mbps,
    }
    if obs is not None:
        # The obs config is part of the cache key, so a cache hit
        # returns these paths without regenerating the files on disk.
        result["obs"] = capture
    return result


_EXECUTORS = {
    TaskKind.SIMULATE: _run_simulate,
    TaskKind.MODEL_CURVE: _run_model_curve,
    TaskKind.COLLISION_TEST: _run_collision_test,
}


def execute_task(task: Task) -> Dict[str, Any]:
    """Run one task to completion."""
    try:
        executor = _EXECUTORS[task.kind]
    except KeyError:
        raise ValueError(f"unknown task kind {task.kind!r}") from None
    return executor(task.payload, task.seed)


def run_task(task: Task) -> Dict[str, Any]:
    """Worker-process entry point: fault hook, timing, pid annotation.

    Wraps :func:`execute_task` in an envelope carrying the executing
    worker's pid and wall-clock duration for the telemetry layer, and
    applies the :mod:`repro.runner.faults` injection hook (a no-op
    unless ``REPRO_FAULT_INJECT`` is configured).  The runner caches
    and returns only ``envelope["result"]``.
    """
    from .faults import inject_for_task

    inject_for_task(task)
    started = time.perf_counter()
    result = execute_task(task)
    return {
        "result": result,
        "worker_pid": os.getpid(),
        "elapsed_s": time.perf_counter() - started,
    }
