"""Run telemetry: per-task lifecycle events and failure records.

The runner emits one :class:`TaskEvent` per lifecycle transition of
every task it schedules — ``queued``, ``cache_hit``, ``started``,
``retried``, ``timeout``, ``failed``, ``finished`` — plus run-level
events (``run_start``, ``run_end``, ``pool_rebuild``,
``degrade_serial``).  A :class:`TraceRecorder` collects them in order
and can append them to a JSONL file (one event object per line), which
is what ``repro-plc ... --trace FILE`` writes.

Permanently failed tasks additionally get a structured
:class:`TaskFailure` record (collected on
``ExperimentRunner.failures``), so a partial-results sweep can report
exactly which points were lost, after how many attempts, and why.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional

from ..obs.recording import JsonlEventLog

__all__ = ["TaskEvent", "TaskFailure", "TraceRecorder"]


@dataclasses.dataclass(frozen=True)
class TaskEvent:
    """One lifecycle transition of one task (or of the run itself).

    ``t_s`` is seconds since the recorder was created — a single
    monotonic origin for the whole trace, so event ordering and
    durations are meaningful across workers.  ``epoch_s`` (set on
    ``run_start``) anchors that origin to the wall clock, and
    ``run_id`` stamps every event, so traces from different
    processes/runs can be merged and correlated.
    """

    event: str
    t_s: float
    #: Slot of the task in the ``run()`` batch; ``None`` for run-level
    #: events (``run_start``, ``pool_rebuild``, ...).
    task_index: Optional[int] = None
    kind: Optional[str] = None
    #: Failed attempts before this one (0 = first execution).
    attempt: int = 0
    #: Wall-clock seconds the task spent executing (``finished`` only).
    duration_s: Optional[float] = None
    #: PID of the worker process that executed the task.
    worker_pid: Optional[int] = None
    error: Optional[str] = None
    detail: Optional[str] = None
    #: Telemetry correlation: the run this event belongs to (every
    #: event) and the span that produced it (when spans are enabled).
    run_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    #: Wall-clock epoch seconds of the recorder's ``t_s = 0`` origin;
    #: emitted on ``run_start`` so cross-process merges share an axis.
    epoch_s: Optional[float] = None

    def as_jsonable(self) -> Dict[str, Any]:
        return {
            key: value
            for key, value in dataclasses.asdict(self).items()
            if value is not None
        }


@dataclasses.dataclass(frozen=True)
class TaskFailure:
    """Why one task produced no result.

    ``attempts`` counts every execution attempt (1 + retries).  The
    failed slot in the results list is ``None``; this record is the
    structured explanation.
    """

    task_index: int
    kind: str
    key: str
    attempts: int
    error_type: str
    error: str
    timed_out: bool = False
    #: For checkpointed tasks: the store directory and what it holds
    #: (valid snapshot count, newest resumable seq/sim-time) at failure
    #: time — i.e. exactly where a re-run would pick the point up.
    checkpoint: Optional[Dict[str, Any]] = None

    def as_jsonable(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        if out["checkpoint"] is None:
            del out["checkpoint"]
        return out


class TraceRecorder(JsonlEventLog):
    """Collect :class:`TaskEvent` records; flush them to JSONL.

    The collection/flush contract (ordered ``events`` list,
    append-only incremental ``flush_jsonl``) comes from
    :class:`~repro.obs.recording.JsonlEventLog` — the same conventions
    the MAC/SoF trace recorders of :mod:`repro.obs.trace` follow.
    This recorder adds the ``t_s`` stamping relative to its creation:
    a single monotonic origin for the whole trace, so event ordering
    and durations are meaningful across workers.

    Every event is stamped with the recorder's ``run_id``; the
    ``epoch_s`` wall-clock anchor of the ``t_s = 0`` origin goes out on
    ``run_start`` events (see :meth:`record_run_start`).
    """

    def __init__(self, run_id: Optional[str] = None) -> None:
        super().__init__()
        self._t0 = time.perf_counter()
        #: Wall-clock anchor of ``t_s = 0``.
        self.epoch_s = time.time() - (time.perf_counter() - self._t0)
        if run_id is None:
            from ..telemetry.context import new_run_id

            run_id = new_run_id()
        self.run_id = run_id

    def record(self, event: str, **fields: Any) -> TaskEvent:
        fields.setdefault("run_id", self.run_id)
        return self.append(
            TaskEvent(
                event=event, t_s=time.perf_counter() - self._t0, **fields
            )
        )

    def record_run_start(self, **fields: Any) -> TaskEvent:
        """A ``run_start`` event carrying the wall-clock epoch anchor."""
        fields.setdefault("epoch_s", self.epoch_s)
        return self.record("run_start", **fields)

    def of_kind(self, event: str) -> List[TaskEvent]:
        """Events with the given ``event`` name, in record order."""
        return [e for e in self.events if e.event == event]
