"""Durable sweep orchestration: the long-lived service layer.

ROADMAP item 2's chassis: a supervised orchestrator that accepts sweep
submissions, executes them through the existing runner/cache/
checkpoint/telemetry substrates, and — the point of the package —
survives its own death.  Every task lifecycle transition is journaled
to an append-only, checksummed WAL before it takes effect
(:mod:`~repro.service.journal`), work is claimed through heartbeated
leases a watchdog can reclaim (:mod:`~repro.service.leases`), poison
tasks land in a forensics quarantine instead of wedging the sweep
(:mod:`~repro.service.quarantine`), and SIGTERM drains cleanly
(:mod:`~repro.service.signals`).  ``kill -9`` at any instant — proven
at the armed kill points of :mod:`~repro.service.faults` — followed by
a restart yields results bit-identical to an uninterrupted run.

Entry points: :class:`Orchestrator` / :class:`ServiceConfig` (the
``repro-plc serve`` loop), :func:`~repro.service.submit
.build_submission` + :func:`~repro.service.submit.write_submission`
(``submit``), :func:`~repro.service.status.service_status`
(``status``), :func:`~repro.service.orchestrator.request_drain`
(``drain``).

The HTTP layer lives in :mod:`repro.service.net`: ``serve --http``
front end, the fault-tolerant :class:`~repro.service.net.SweepClient`,
and the ``work --connect`` remote sharding worker — imported lazily by
its users, not re-exported here.
"""

from .journal import (
    JOURNAL_FILENAME,
    JournalError,
    JournalWriter,
    journal_tail_state,
    read_journal,
    seal_record,
    verify_record,
)
from .leases import HeartbeatWriter, classify_lease, pid_alive
from .orchestrator import (
    Orchestrator,
    ServiceConfig,
    ServicePaths,
    request_drain,
)
from .quarantine import read_quarantine_records, write_quarantine_record
from .signals import ShutdownRequested, handle_signals
from .state import ServiceState, TaskRecord, TaskState, fold_journal
from .status import render_service_status, service_status
from .submit import (
    build_submission,
    read_submission,
    standard_sweep_tasks,
    submission_id,
    validate_submission,
    write_submission,
)
from .worker import task_from_description, worker_main

__all__ = [
    "JOURNAL_FILENAME",
    "JournalError",
    "JournalWriter",
    "journal_tail_state",
    "read_journal",
    "seal_record",
    "verify_record",
    "HeartbeatWriter",
    "classify_lease",
    "pid_alive",
    "Orchestrator",
    "ServiceConfig",
    "ServicePaths",
    "request_drain",
    "read_quarantine_records",
    "write_quarantine_record",
    "ShutdownRequested",
    "handle_signals",
    "ServiceState",
    "TaskRecord",
    "TaskState",
    "fold_journal",
    "render_service_status",
    "service_status",
    "build_submission",
    "read_submission",
    "standard_sweep_tasks",
    "submission_id",
    "validate_submission",
    "write_submission",
    "task_from_description",
    "worker_main",
]
