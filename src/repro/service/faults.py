"""Deterministic orchestrator kill points for the crash-recovery suite.

The durable-orchestrator guarantee — ``kill -9`` at any instant loses
nothing — is only worth claiming if the test suite can place the kill
*at* the instants that matter: right after a journal append becomes
durable, between granting a lease and spawning its worker, between
committing a result to the cache and journaling the completion.  This
module provides those kill points, mirroring the conventions of
:mod:`repro.runner.faults` (environment-controlled, one-shot via an
``O_EXCL`` claim directory, zero cost when disabled):

``REPRO_SERVICE_KILL``
    ``point[:times=N]`` — which kill point fires, and how many times
    (default 1).  Registered points:

    - ``journal_append`` — after a journal record is written and
      fsynced (the record must survive; the transition it describes
      has not been acted on yet);
    - ``lease_grant`` — after the ``lease_granted`` record is durable
      but before the worker process is spawned (a lease with no
      living worker, the watchdog-reclaim case);
    - ``result_commit`` — after the result is written to the content-
      addressed cache but before ``task_completed`` is journaled (the
      re-run must dedupe against the cache, not recompute).

``REPRO_SERVICE_KILL_DIR``
    Claim-marker directory shared across orchestrator incarnations;
    required for injection to be active (same fail-safe as the runner
    hook: without one-shot coordination, a restart would die at the
    same point forever and the sweep could never finish).

The kill is ``os._exit`` — no ``atexit``, no ``finally`` blocks, no
flushes — the closest a test can get to ``kill -9`` from inside.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Mapping, Optional

__all__ = [
    "ENV_SERVICE_KILL",
    "ENV_SERVICE_KILL_DIR",
    "ENV_NET_FAULT",
    "ENV_NET_FAULT_DIR",
    "KILL_EXIT_CODE",
    "KILL_POINTS",
    "NET_FAULT_MODES",
    "maybe_kill",
    "maybe_net_fault",
    "parse_net_fault",
]

ENV_SERVICE_KILL = "REPRO_SERVICE_KILL"
ENV_SERVICE_KILL_DIR = "REPRO_SERVICE_KILL_DIR"

#: Deterministic network fault plan for the HTTP layer
#: (:mod:`repro.service.net`): ``mode[:times=N][,role=R][,delay_s=S]``.
ENV_NET_FAULT = "REPRO_NET_FAULT"
ENV_NET_FAULT_DIR = "REPRO_NET_FAULT_DIR"

#: Registered network fault modes, injected at the HTTP boundary:
#:
#: - ``drop`` — the request is *processed* but its response is lost
#:   (client raises before reading the reply; server processes then
#:   closes without answering) — the lost-ack case that proves
#:   idempotent redelivery converges;
#: - ``delay`` — the exchange is stalled ``delay_s`` seconds (default
#:   0.5) before proceeding normally — exercises timeouts and retries;
#: - ``duplicate`` — the same request is delivered twice — proves
#:   content-hash dedupe and duplicate-commit tolerance;
#: - ``partition`` — the request never reaches the other side (client
#:   raises before sending; server closes the connection unread).
NET_FAULT_MODES = ("drop", "delay", "duplicate", "partition")

#: Exit status of an injected orchestrator kill — distinct from the
#: worker fault code (117) so postmortems can tell who died.
KILL_EXIT_CODE = 113

#: The registered kill points; ``maybe_kill`` rejects unknown names so
#: a typo in a test fails loudly instead of never firing.
KILL_POINTS = ("journal_append", "lease_grant", "result_commit")


def _parse(spec: str) -> Optional[tuple]:
    point, _, rest = spec.strip().partition(":")
    times = 1
    if rest:
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            if not sep or key.strip() != "times":
                raise ValueError(
                    f"malformed kill option {item!r} in {spec!r}"
                )
            times = int(value)
    if point not in KILL_POINTS:
        raise ValueError(
            f"unknown kill point {point!r}; registered: {KILL_POINTS}"
        )
    if times < 1:
        raise ValueError("times must be >= 1")
    return point, times


def maybe_kill(
    point: str, environ: Optional[Mapping[str, str]] = None
) -> None:
    """Die via ``os._exit`` if ``point`` is armed and unclaimed.

    No-op (one dict lookup) unless ``REPRO_SERVICE_KILL`` is set.
    Each armed kill fires at most ``times`` times across all
    orchestrator incarnations sharing the claim directory, so the
    restarted orchestrator runs the same code path clean.
    """
    assert point in KILL_POINTS, f"unregistered kill point {point!r}"
    environ = os.environ if environ is None else environ
    spec = environ.get(ENV_SERVICE_KILL)
    if not spec:
        return
    claim_dir = environ.get(ENV_SERVICE_KILL_DIR)
    if not claim_dir:
        return
    armed_point, times = _parse(spec)
    if armed_point != point:
        return
    if not _claim(Path(claim_dir), point, times):
        return
    os._exit(KILL_EXIT_CODE)


def parse_net_fault(spec: str) -> tuple:
    """Parse ``mode[:times=N][,role=R][,delay_s=S]`` → (mode, times,
    role, delay_s).

    ``role`` restricts the fault to one injection side (``server``,
    ``client``, or ``worker``); ``None`` (default) fires on whichever
    side claims a slot first.  Unknown modes and malformed options
    raise — a typo in a test must fail loudly, not silently never fire.
    """
    mode, _, rest = spec.strip().partition(":")
    times = 1
    role: Optional[str] = None
    delay_s = 0.5
    if rest:
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(
                    f"malformed net-fault option {item!r} in {spec!r}"
                )
            if key == "times":
                times = int(value)
            elif key == "role":
                role = value.strip()
            elif key == "delay_s":
                delay_s = float(value)
            else:
                raise ValueError(
                    f"unknown net-fault option {key!r} in {spec!r}"
                )
    if mode not in NET_FAULT_MODES:
        raise ValueError(
            f"unknown net fault mode {mode!r}; registered: {NET_FAULT_MODES}"
        )
    if times < 1:
        raise ValueError("times must be >= 1")
    return mode, times, role, delay_s


def maybe_net_fault(
    role: str, environ: Optional[Mapping[str, str]] = None
) -> Optional[tuple]:
    """Claim one armed network fault for ``role``; ``(mode, delay_s)``
    or ``None``.

    The caller — the HTTP request path of :mod:`repro.service.net`, on
    either side of the wire — decides what the claimed mode *means* at
    its boundary; this function only does the deterministic arming:
    environment-controlled, at most ``times`` firings across every
    process sharing the ``REPRO_NET_FAULT_DIR`` claim directory (the
    same ``O_EXCL`` slot discipline as the kill points, so a retried
    request after a claimed fault goes through clean).
    """
    environ = os.environ if environ is None else environ
    spec = environ.get(ENV_NET_FAULT)
    if not spec:
        return None
    claim_dir = environ.get(ENV_NET_FAULT_DIR)
    if not claim_dir:
        return None
    mode, times, armed_role, delay_s = parse_net_fault(spec)
    if armed_role is not None and armed_role != role:
        return None
    if not _claim(Path(claim_dir), f"net-{mode}", times):
        return None
    return mode, delay_s


def _claim(marker_dir: Path, point: str, times: int) -> bool:
    """Take one of ``times`` one-shot slots for ``point``, atomically."""
    marker_dir.mkdir(parents=True, exist_ok=True)
    for k in range(times):
        slot = marker_dir / f"kill-{point}-{k}"
        try:
            with open(slot, "x", encoding="utf-8") as handle:
                handle.write(str(os.getpid()))
            return True
        except FileExistsError:
            continue
    return False
