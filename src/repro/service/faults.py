"""Deterministic orchestrator kill points for the crash-recovery suite.

The durable-orchestrator guarantee — ``kill -9`` at any instant loses
nothing — is only worth claiming if the test suite can place the kill
*at* the instants that matter: right after a journal append becomes
durable, between granting a lease and spawning its worker, between
committing a result to the cache and journaling the completion.  This
module provides those kill points, mirroring the conventions of
:mod:`repro.runner.faults` (environment-controlled, one-shot via an
``O_EXCL`` claim directory, zero cost when disabled):

``REPRO_SERVICE_KILL``
    ``point[:times=N]`` — which kill point fires, and how many times
    (default 1).  Registered points:

    - ``journal_append`` — after a journal record is written and
      fsynced (the record must survive; the transition it describes
      has not been acted on yet);
    - ``lease_grant`` — after the ``lease_granted`` record is durable
      but before the worker process is spawned (a lease with no
      living worker, the watchdog-reclaim case);
    - ``result_commit`` — after the result is written to the content-
      addressed cache but before ``task_completed`` is journaled (the
      re-run must dedupe against the cache, not recompute).

``REPRO_SERVICE_KILL_DIR``
    Claim-marker directory shared across orchestrator incarnations;
    required for injection to be active (same fail-safe as the runner
    hook: without one-shot coordination, a restart would die at the
    same point forever and the sweep could never finish).

The kill is ``os._exit`` — no ``atexit``, no ``finally`` blocks, no
flushes — the closest a test can get to ``kill -9`` from inside.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Mapping, Optional

__all__ = [
    "ENV_SERVICE_KILL",
    "ENV_SERVICE_KILL_DIR",
    "KILL_EXIT_CODE",
    "KILL_POINTS",
    "maybe_kill",
]

ENV_SERVICE_KILL = "REPRO_SERVICE_KILL"
ENV_SERVICE_KILL_DIR = "REPRO_SERVICE_KILL_DIR"

#: Exit status of an injected orchestrator kill — distinct from the
#: worker fault code (117) so postmortems can tell who died.
KILL_EXIT_CODE = 113

#: The registered kill points; ``maybe_kill`` rejects unknown names so
#: a typo in a test fails loudly instead of never firing.
KILL_POINTS = ("journal_append", "lease_grant", "result_commit")


def _parse(spec: str) -> Optional[tuple]:
    point, _, rest = spec.strip().partition(":")
    times = 1
    if rest:
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            if not sep or key.strip() != "times":
                raise ValueError(
                    f"malformed kill option {item!r} in {spec!r}"
                )
            times = int(value)
    if point not in KILL_POINTS:
        raise ValueError(
            f"unknown kill point {point!r}; registered: {KILL_POINTS}"
        )
    if times < 1:
        raise ValueError("times must be >= 1")
    return point, times


def maybe_kill(
    point: str, environ: Optional[Mapping[str, str]] = None
) -> None:
    """Die via ``os._exit`` if ``point`` is armed and unclaimed.

    No-op (one dict lookup) unless ``REPRO_SERVICE_KILL`` is set.
    Each armed kill fires at most ``times`` times across all
    orchestrator incarnations sharing the claim directory, so the
    restarted orchestrator runs the same code path clean.
    """
    assert point in KILL_POINTS, f"unregistered kill point {point!r}"
    environ = os.environ if environ is None else environ
    spec = environ.get(ENV_SERVICE_KILL)
    if not spec:
        return
    claim_dir = environ.get(ENV_SERVICE_KILL_DIR)
    if not claim_dir:
        return
    armed_point, times = _parse(spec)
    if armed_point != point:
        return
    if not _claim(Path(claim_dir), point, times):
        return
    os._exit(KILL_EXIT_CODE)


def _claim(marker_dir: Path, point: str, times: int) -> bool:
    """Take one of ``times`` one-shot slots for ``point``, atomically."""
    marker_dir.mkdir(parents=True, exist_ok=True)
    for k in range(times):
        slot = marker_dir / f"kill-{point}-{k}"
        try:
            with open(slot, "x", encoding="utf-8") as handle:
                handle.write(str(os.getpid()))
            return True
        except FileExistsError:
            continue
    return False
