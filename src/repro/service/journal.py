"""The write-ahead task journal: the service's single source of truth.

Every lifecycle transition of every (point, rep) task the orchestrator
handles — ``task_enqueued`` → ``lease_granted`` → ``task_completed`` /
``task_failed`` / ``task_quarantined`` — is appended to one JSONL file
*before* the transition takes effect anywhere else.  ``kill -9`` of the
orchestrator at any instant therefore loses at most the transition being
written, and a restart replays the journal to exactly the pre-kill
state (:func:`repro.service.state.fold_journal`).

Durability and integrity contract:

- each append is one ``write`` + ``flush`` + ``fsync`` of a single line,
  so a torn write can only affect the final line of the file;
- every record carries a sha256 checksum (``check``) of its own
  canonical JSON body (via :func:`repro.checkpoint.integrity.sha256_hex`
  — the same primitive the checkpoint container and the result cache
  use), so a torn or bit-flipped line is *detected*, counted, and
  skipped on replay instead of corrupting the fold;
- records are strictly sequence-numbered (``seq``) per writer
  incarnation; replay tolerates gaps (a skipped corrupt line) but the
  count of skipped lines is reported so operators can see damage.

The journal has exactly **one writer at a time** — the orchestrator
process owning the service directory.  Cross-process inputs (sweep
submissions) arrive through the inbox directory instead, and become
journal records only when the orchestrator accepts them.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..checkpoint.integrity import sha256_hex
from ..runner.serialize import canonical_json
from .faults import maybe_kill

__all__ = [
    "JOURNAL_FILENAME",
    "JournalError",
    "JournalWriter",
    "journal_tail_state",
    "read_journal",
    "seal_record",
    "verify_record",
]

#: The journal file inside a service directory.
JOURNAL_FILENAME = "journal.jsonl"

#: Field carrying the per-record checksum.
CHECK_FIELD = "check"


class JournalError(RuntimeError):
    """The journal cannot be written (I/O failure on the WAL path)."""


def seal_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``record`` with its integrity checksum attached.

    The checksum covers the canonical JSON of every field *except*
    ``check`` itself, so verification is order-independent and the
    sealed record stays one self-contained JSONL line.
    """
    body = {k: v for k, v in record.items() if k != CHECK_FIELD}
    sealed = dict(body)
    sealed[CHECK_FIELD] = sha256_hex(canonical_json(body).encode("utf-8"))
    return sealed


def verify_record(record: Dict[str, Any]) -> bool:
    """True when ``record``'s checksum matches its body."""
    check = record.get(CHECK_FIELD)
    if not isinstance(check, str):
        return False
    body = {k: v for k, v in record.items() if k != CHECK_FIELD}
    return sha256_hex(canonical_json(body).encode("utf-8")) == check


class JournalWriter:
    """Append sealed lifecycle records to the on-disk journal.

    The file handle is kept open across appends (one ``open`` per
    orchestrator incarnation, not per record); each append is flushed
    and fsynced before :meth:`append` returns, so a record the caller
    has seen committed survives any subsequent crash.

    ``sync=False`` drops the per-record fsync — only for tests and
    benchmarks that measure the journaling cost itself; a real service
    must keep it on.
    """

    def __init__(
        self, path: Union[str, Path], sync: bool = True
    ) -> None:
        self.path = Path(path)
        self.sync = sync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        #: Sequence number of the next record from this writer.
        self.seq = _next_seq(self.path)

    def append(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Durably append one ``event`` record; returns the sealed record.

        The ``journal_append`` kill point (see
        :mod:`repro.service.faults`) fires *after* the record is
        durable — the crash-recovery suite proves a record the journal
        acknowledged is never lost.
        """
        record: Dict[str, Any] = {
            "seq": self.seq,
            "event": event,
            "epoch_s": time.time(),
        }
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        sealed = seal_record(record)
        try:
            self._handle.write(json.dumps(sealed) + "\n")
            self._handle.flush()
            if self.sync:
                os.fsync(self._handle.fileno())
        except OSError as exc:
            raise JournalError(
                f"cannot append to journal {self.path}: {exc}"
            ) from exc
        self.seq += 1
        maybe_kill("journal_append")
        return sealed

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _next_seq(path: Path) -> int:
    """The sequence number a new writer should continue from."""
    records, _corrupt = read_journal(path)
    if not records:
        return 0
    return max(int(r.get("seq", -1)) for r in records) + 1


def read_journal(
    path: Union[str, Path],
) -> Tuple[List[Dict[str, Any]], int]:
    """Replay the journal: ``(valid records in file order, skipped)``.

    Lines that fail JSON parsing or checksum verification are skipped
    and counted — a torn final line (the only damage a crashed single
    writer can inflict) costs exactly the in-flight record, and
    mid-file corruption (disk damage) is surfaced without poisoning the
    fold.  A missing journal is an empty one.
    """
    path = Path(path)
    records: List[Dict[str, Any]] = []
    corrupt = 0
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    corrupt += 1
                    continue
                if not isinstance(record, dict) or not verify_record(record):
                    corrupt += 1
                    continue
                records.append(record)
    except FileNotFoundError:
        return [], 0
    return records, corrupt


def journal_tail_state(path: Union[str, Path]) -> str:
    """Integrity verdict on the journal's final physical line.

    ``"clean"`` — the last line parses and verifies (or the file is
    empty); ``"torn"`` — it doesn't, which while an orchestrator is
    alive just means the status reader raced a mid-append ``write``
    (the verifying replay skips it; the record is not yet acknowledged
    so nothing is lost); ``"missing"`` — no journal file yet.  Status
    views report this instead of crashing on the racing line.
    """
    path = Path(path)
    last = b""
    try:
        with path.open("rb") as handle:
            for raw in handle:
                if raw.strip():
                    last = raw
    except FileNotFoundError:
        return "missing"
    except OSError:
        return "torn"
    if not last.strip():
        return "clean"
    try:
        record = json.loads(last.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return "torn"
    if not isinstance(record, dict) or not verify_record(record):
        return "torn"
    return "clean"


def journal_path(service_dir: Union[str, Path]) -> Path:
    """The journal file of a service directory."""
    return Path(service_dir) / JOURNAL_FILENAME
