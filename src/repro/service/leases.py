"""Lease heartbeats and the watchdog's liveness classification.

A lease is the orchestrator's claim record that one worker process owns
one task right now.  The durable half lives in the journal
(``lease_granted`` / ``lease_reclaimed`` / ``lease_released``); this
module is the *volatile* half: a per-task heartbeat file that the
worker's daemon thread touches every few seconds, and the read side the
orchestrator's watchdog uses to decide whether a lease is still backed
by a living, progressing process.

The heartbeat file (``leases/<task_id>.hb``) holds the worker's pid as
text; its **mtime** is the heartbeat.  Touching an existing file is one
``os.utime`` — no write amplification, atomic by construction, and a
reader never sees a torn heartbeat (the pid is written once, before the
lease is considered granted).

Watchdog verdicts (:func:`classify_lease`):

``live``
    Process exists and the heartbeat is fresh — leave it alone.
``dead``
    The worker pid no longer exists (crashed, OOM-killed, ``kill -9``).
    Reclaim immediately; there is nobody to wait for.
``stale``
    The pid exists but the heartbeat stopped (worker wedged — stuck in
    a syscall, deadlocked, or the heartbeat thread died with the GIL
    held).  Kill the process, then reclaim.
``overrun``
    Heartbeats are arriving but the task has exceeded its hard
    ``task_timeout``.  A wedged simulation loop heartbeats forever; the
    timeout is the backstop.  Kill, then reclaim.

Reclaimed tasks are retried with the exact same
:class:`~repro.runner.seeding.SeedSpec` (the PR 2 bit-identical-retry
guarantee), so a reclaim never changes the sweep's numbers — only its
wall-clock.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "LEASES_DIRNAME",
    "HeartbeatWriter",
    "classify_lease",
    "heartbeat_age_s",
    "heartbeat_path",
    "pid_alive",
    "read_heartbeat_pid",
    "write_heartbeat",
]

#: Heartbeat directory inside a service directory.
LEASES_DIRNAME = "leases"


def heartbeat_path(
    leases_dir: Union[str, Path], task_id: str
) -> Path:
    return Path(leases_dir) / f"{task_id}.hb"


def write_heartbeat(path: Union[str, Path], pid: int) -> None:
    """Create/refresh the heartbeat: pid as content, *now* as mtime."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        try:
            os.utime(path, None)
            return
        except OSError:
            pass
    path.write_text(str(pid), encoding="utf-8")


def read_heartbeat_pid(path: Union[str, Path]) -> Optional[int]:
    """The pid recorded in the heartbeat file, or ``None``."""
    try:
        return int(Path(path).read_text(encoding="utf-8").strip())
    except (OSError, ValueError):
        return None


def heartbeat_age_s(
    path: Union[str, Path], now: Optional[float] = None
) -> Optional[float]:
    """Seconds since the last heartbeat touch, or ``None`` if missing."""
    try:
        mtime = Path(path).stat().st_mtime
    except OSError:
        return None
    return max(0.0, (time.time() if now is None else now) - mtime)


def pid_alive(pid: Optional[int]) -> bool:
    """True when ``pid`` names an existing process we may signal."""
    if not pid or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # Exists but owned by someone else — still alive.
        return True
    except OSError:
        return False
    return True


def classify_lease(
    hb_path: Union[str, Path],
    lease_ttl_s: float,
    elapsed_s: float,
    task_timeout_s: Optional[float] = None,
    now: Optional[float] = None,
) -> str:
    """Watchdog verdict for one leased task: live/dead/stale/overrun.

    ``elapsed_s`` is how long the lease has been held (from the grant
    timestamp the orchestrator tracks); ``lease_ttl_s`` is the maximum
    tolerated heartbeat silence.  A missing heartbeat file within the
    TTL of the grant is still ``live`` — the worker may not have
    started up yet; after the TTL with no file, it is ``dead`` (the
    spawn itself failed or was killed, the ``lease_grant`` kill-point
    case).
    """
    if task_timeout_s is not None and elapsed_s > task_timeout_s:
        return "overrun"
    age = heartbeat_age_s(hb_path, now=now)
    if age is None:
        return "live" if elapsed_s <= lease_ttl_s else "dead"
    pid = read_heartbeat_pid(hb_path)
    if not pid_alive(pid):
        return "dead"
    if age > lease_ttl_s:
        return "stale"
    return "live"


class HeartbeatWriter:
    """Daemon thread touching a worker's heartbeat file periodically.

    Started inside the worker process right after it comes up (so the
    pid in the file is the worker's own), stopped on the way out.  A
    daemon thread keeps the beat alive through long simulation steps
    that never return to Python — the exact wedge the ``stale`` verdict
    exists for is a *dead* heartbeat thread, which only happens when
    the whole process is beyond saving anyway.
    """

    def __init__(
        self, path: Union[str, Path], interval_s: float = 1.0
    ) -> None:
        self.path = Path(path)
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="service-heartbeat", daemon=True
        )

    def start(self) -> "HeartbeatWriter":
        write_heartbeat(self.path, os.getpid())
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                write_heartbeat(self.path, os.getpid())
            except OSError:
                # The orchestrator may have reclaimed and removed the
                # lease dir out from under us; dying loudly here would
                # abort a task that might still commit usefully.
                pass

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=self.interval_s + 1.0)

    def __enter__(self) -> "HeartbeatWriter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
