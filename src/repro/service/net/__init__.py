"""The HTTP layer of the sweep service: front end, client, sharding.

ROADMAP item 2's remaining half: the PR 9 durable orchestrator goes on
the network, stdlib-only (``http.server`` / ``urllib`` — no new
dependencies), with the same fault-tolerance discipline extended across
the wire:

- :mod:`~repro.service.net.server` — ``repro-plc serve --http :PORT``:
  idempotent ``POST /v1/sweeps`` (submissions hash to the same sha256
  task ids as ``submit``, so retries and concurrent clients dedupe
  against the cache and journal for free), folded status under ETags,
  OpenMetrics exposition, 429 + Retry-After admission control, and the
  remote worker protocol (claim / heartbeat / result / fail);
- :mod:`~repro.service.net.client` — :class:`SweepClient`: per-request
  timeouts, bounded retries with seedable full-jitter backoff (the
  runner's own :class:`~repro.runner.backoff.FullJitterBackoff`), a
  circuit breaker per host, and graceful degradation to local
  :class:`~repro.runner.ExperimentRunner` execution when every host is
  unreachable — a structured ``degraded_local`` trace event, never a
  stack trace;
- :mod:`~repro.service.net.worker` — ``repro-plc work --connect URL``:
  remote hosts claiming (point, rep) shards over HTTP with heartbeat
  PUTs; results commit cache.put-then-journal exactly as PR 9, so a
  partition between commit and ack converges on redelivery;
- :mod:`~repro.service.net.wire` — the JSON wire helpers plus the
  deterministic network fault injection
  (``REPRO_NET_FAULT=drop|delay|duplicate|partition[:times=N]``) at
  the HTTP boundary on both sides.

Every mutation a handler thread performs goes through the
orchestrator's lock — the journal keeps its single writer, HTTP or not.
"""

from .client import AllHostsUnreachable, CircuitBreaker, SweepClient
from .server import ServiceHTTPServer, serve_http
from .wire import NetRequestError, http_json, parse_hostport
from .worker import work_loop

__all__ = [
    "AllHostsUnreachable",
    "CircuitBreaker",
    "NetRequestError",
    "ServiceHTTPServer",
    "SweepClient",
    "http_json",
    "parse_hostport",
    "serve_http",
    "work_loop",
]
