"""The fault-tolerant sweep client: retries, breakers, degradation.

:class:`SweepClient` talks to one or more ``repro-plc serve --http``
front ends and refuses to let transient network weather become a stack
trace.  Three defensive layers, outermost first:

1. **Multi-host failover** — every request walks the configured hosts
   in order, preferring the host that answered last time (sticky), and
   moves on when one fails.
2. **Bounded retries with full-jitter backoff** — a full pass over the
   hosts that fails is retried up to ``retries`` times, sleeping a
   seedable :class:`~repro.runner.backoff.FullJitterBackoff` sample
   between passes (the *same* sampler the runner uses for worker
   retries, so tests pin the distribution once).  A server-sent
   ``Retry-After`` (429 admission control, 503 drain) overrides the
   sampled sleep when it is longer — explicit backpressure beats
   guessing.
3. **A circuit breaker per host** — ``threshold`` consecutive
   *transport* failures open the breaker and the host is skipped for
   ``cooldown_s``, after which one probe request (half-open) decides
   whether it closes again.  Backpressure responses (429/503) do not
   trip the breaker: a server saying "later" is alive.

When every layer is exhausted :meth:`SweepClient.run_sweep` does not
raise — it degrades to a local :class:`~repro.runner.ExperimentRunner`
(:meth:`~repro.runner.ExperimentRunner.run_degraded_local`), which
journals a structured ``degraded_local`` trace event and produces
bit-identical results by the determinism contract (same tasks, same
``SeedSpec``s, same cache keys).  Lower-level methods raise
:class:`AllHostsUnreachable` so callers that *want* the failure can
have it.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ...runner.backoff import FullJitterBackoff
from ...runner.cache import cache_key
from ...runner.tasks import Task
from ..submit import build_submission, validate_submission
from .wire import DEFAULT_TIMEOUT_S, NetRequestError, http_json

__all__ = [
    "AllHostsUnreachable",
    "CircuitBreaker",
    "SweepClient",
]


class AllHostsUnreachable(RuntimeError):
    """Every configured host failed every allowed retry pass."""

    def __init__(self, message: str, last_error: Optional[Exception] = None):
        super().__init__(message)
        self.last_error = last_error


class CircuitBreaker:
    """Per-host consecutive-failure breaker (closed → open → half-open).

    ``threshold`` consecutive failures open it; while open,
    :meth:`allow` refuses until ``cooldown_s`` has elapsed, then admits
    exactly one probe (half-open).  The probe's outcome closes or
    re-opens it.  Time is injectable for tests.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probing:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        if self._opened_at is None:
            return True
        if self._probing:
            return False  # one probe at a time
        if self._clock() - self._opened_at >= self.cooldown_s:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._failures += 1
        self._probing = False
        if self._failures >= self.threshold:
            self._opened_at = self._clock()


class SweepClient:
    """HTTP client for the sweep service; see the module docstring.

    ``hosts`` is one or more base URLs (``http://HOST:PORT``).
    ``retries`` bounds *additional* full passes over the host list
    after the first; ``backoff_seed`` makes the jittered sleeps
    reproducible in tests.
    """

    def __init__(
        self,
        hosts: Union[str, Sequence[str]],
        timeout_s: float = DEFAULT_TIMEOUT_S,
        retries: int = 3,
        backoff: Optional[FullJitterBackoff] = None,
        backoff_seed: Optional[int] = None,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
        role: str = "client",
    ) -> None:
        if isinstance(hosts, str):
            hosts = [hosts]
        self.hosts = [h.rstrip("/") for h in hosts]
        if not self.hosts:
            raise ValueError("SweepClient needs at least one host URL")
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff = (
            backoff
            if backoff is not None
            else FullJitterBackoff(base_s=0.1, max_s=2.0, seed=backoff_seed)
        )
        self.role = role
        self.breakers: Dict[str, CircuitBreaker] = {
            host: CircuitBreaker(breaker_threshold, breaker_cooldown_s)
            for host in self.hosts
        }
        #: Host that served the last successful request (tried first).
        self._preferred: Optional[str] = None

    # -- transport ---------------------------------------------------------

    def _host_order(self) -> List[str]:
        if self._preferred and self._preferred in self.hosts:
            rest = [h for h in self.hosts if h != self._preferred]
            return [self._preferred] + rest
        return list(self.hosts)

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        etag: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """One logical request: failover + retry passes + backoff."""
        last_error: Optional[Exception] = None
        for attempt in range(1, self.retries + 2):
            retry_after: Optional[float] = None
            for host in self._host_order():
                breaker = self.breakers[host]
                if not breaker.allow():
                    continue
                try:
                    result = http_json(
                        method,
                        host + path,
                        body=body,
                        timeout_s=self.timeout_s,
                        role=self.role,
                        etag=etag,
                    )
                except NetRequestError as exc:
                    last_error = exc
                    if exc.status in (429, 503):
                        # Backpressure: the host is alive and telling
                        # us when to come back — not a breaker event.
                        breaker.record_success()
                        if exc.retry_after_s is not None:
                            retry_after = max(
                                retry_after or 0.0, exc.retry_after_s
                            )
                    else:
                        breaker.record_failure()
                    continue
                breaker.record_success()
                self._preferred = host
                return result
            if attempt <= self.retries:
                sleep_s = self.backoff.sample(attempt)
                if retry_after is not None:
                    sleep_s = max(sleep_s, retry_after)
                time.sleep(sleep_s)
        raise AllHostsUnreachable(
            f"{method} {path}: no host answered after "
            f"{self.retries + 1} passes over {self.hosts} "
            f"(last error: {last_error})",
            last_error=last_error,
        )

    # -- sweep API ---------------------------------------------------------

    def submit(
        self,
        tasks: Union[Sequence[Task], Dict[str, Any]],
        label: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a sweep; returns the server's admission verdict.

        Accepts either :class:`~repro.runner.tasks.Task` objects or a
        prebuilt submission document.  Idempotent: the server hashes
        the task list to the sweep's ``submit_id``, so retrying a lost
        response re-lands on the same sweep.
        """
        if isinstance(tasks, dict):
            submission = tasks
        else:
            submission = build_submission(list(tasks), label=label)
        if validate_submission(submission) is None:
            raise ValueError("malformed submission")
        _status, verdict, _headers = self._request(
            "POST", "/v1/sweeps", body=submission
        )
        return verdict

    def sweep_status(
        self, submit_id: str, etag: Optional[str] = None
    ) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """``(status document, etag)``; document is ``None`` on a 304."""
        status, doc, headers = self._request(
            "GET", f"/v1/sweeps/{submit_id}", etag=etag
        )
        if status == 304:
            return None, etag
        if status == 404:
            raise KeyError(f"unknown sweep {submit_id}")
        return doc, headers.get("ETag")

    def wait(
        self,
        submit_id: str,
        poll_s: float = 0.5,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Poll (ETag-cheap) until every task of the sweep is settled."""
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        etag: Optional[str] = None
        last_doc: Optional[Dict[str, Any]] = None
        while True:
            doc, etag = self.sweep_status(submit_id, etag=etag)
            if doc is not None:
                last_doc = doc
                if doc.get("done"):
                    return doc
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"sweep {submit_id} not done after {timeout_s}s: "
                    f"{(last_doc or {}).get('counts')}"
                )
            time.sleep(poll_s)

    def fetch_result(self, task_id: str) -> Optional[Dict[str, Any]]:
        """The committed result document for ``task_id`` (None = none)."""
        status, doc, _headers = self._request(
            "GET", f"/v1/tasks/{task_id}/result"
        )
        if status == 404:
            return None
        return doc.get("result")

    def task_status(self, task_id: str) -> Optional[Dict[str, Any]]:
        status, doc, _headers = self._request("GET", f"/v1/tasks/{task_id}")
        return None if status == 404 else doc

    def service_status(self) -> Dict[str, Any]:
        _status, doc, _headers = self._request("GET", "/v1/status")
        return doc

    # -- graceful degradation ---------------------------------------------

    def run_sweep(
        self,
        tasks: Sequence[Task],
        label: Optional[str] = None,
        poll_s: float = 0.5,
        timeout_s: Optional[float] = None,
        local_runner: Optional[Any] = None,
        local_runner_kwargs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Run ``tasks`` through the service; degrade locally if it's gone.

        Returns ``{"source", "results", ...}`` where ``results`` is in
        task order.  ``source`` is ``"remote"`` when the service
        computed the sweep, ``"degraded_local"`` when every host was
        unreachable and the fallback
        :meth:`~repro.runner.ExperimentRunner.run_degraded_local` ran
        instead — in which case the degradation is a structured trace
        event on the runner, **never** an exception out of here.
        """
        tasks = list(tasks)
        try:
            verdict = self.submit(tasks, label=label)
            submit_id = verdict["submit_id"]
            self.wait(submit_id, poll_s=poll_s, timeout_s=timeout_s)
            results = [
                self.fetch_result(cache_key(task.describe()))
                for task in tasks
            ]
            return {
                "source": "remote",
                "submit_id": submit_id,
                "results": results,
            }
        except AllHostsUnreachable as exc:
            reason = f"all hosts unreachable: {exc.last_error}"
        runner = local_runner
        if runner is None:
            from ...runner import ExperimentRunner

            runner = ExperimentRunner(**(local_runner_kwargs or {}))
        results = runner.run_degraded_local(tasks, reason=reason)
        return {
            "source": "degraded_local",
            "reason": reason,
            "results": results,
        }
