"""The stdlib HTTP front end of the durable sweep orchestrator.

``repro-plc serve --http :PORT`` runs a ``ThreadingHTTPServer`` on a
daemon thread *inside* the orchestrator process, next to the PR 9
scheduling loop.  Handler threads never touch the journal directly —
every mutation goes through the orchestrator's public methods under its
lock, so the journal's single-writer discipline survives going on the
network (one writing *process*, one writing *thread at a time*).

Wire surface (all JSON; see :mod:`repro.service.net.wire`):

===========================================  ==============================
``POST /v1/sweeps``                          idempotent sweep submission
                                             (202; 429 + Retry-After past
                                             ``--max-queue-depth``; 503 +
                                             Retry-After while draining)
``GET /v1/sweeps/<submit_id>``               folded submission status
                                             (ETag on the journal seq)
``GET /v1/tasks/<task_id>``                  folded task status + forensics
``GET /v1/tasks/<task_id>/result``           the cached result document
``GET /v1/metrics``                          OpenMetrics text exposition
``GET /v1/status``                           service counts / liveness
``POST /v1/claims``                          remote worker claims a shard
``PUT /v1/leases/<task_id>``                 remote heartbeat (409 = lost)
``POST /v1/tasks/<task_id>/result``          commit (idempotent; lost acks
                                             converge as ``duplicate``)
``POST /v1/tasks/<task_id>/fail``            report a failed attempt
===========================================  ==============================

Submissions are idempotent end to end: the body hashes to the same
sha256 ``submit_id`` and per-task cache keys as the ``submit`` CLI, so
a client retrying a dropped response — or two clients posting the same
study — dedupes against the cache and journal for free.

Server-side network faults (``REPRO_NET_FAULT``) are injected here, at
the request boundary: ``partition`` closes the connection unread,
``drop`` processes the request then withholds the response (the
lost-ack case the idempotent routes must converge through),
``duplicate`` processes the body twice, ``delay`` stalls the exchange.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from ...obs.registry import MetricsRegistry
from ...telemetry.openmetrics import render_openmetrics
from ..faults import maybe_net_fault
from ..orchestrator import Orchestrator
from ..state import TaskState
from ..submit import submission_id, validate_submission
from .wire import parse_hostport

__all__ = ["ServiceHTTPServer", "serve_http"]

#: Retry-After advice (seconds) for 429 admission rejections.
RETRY_AFTER_BUSY_S = 5
#: Retry-After advice (seconds) for 503 drain refusals.
RETRY_AFTER_DRAIN_S = 2


class _Handler(BaseHTTPRequestHandler):
    """One HTTP exchange.  ``self.server.service`` is the front end."""

    protocol_version = "HTTP/1.1"
    #: Silenced default stderr logging; the access log is JSONL.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> "ServiceHTTPServer":
        return self.server.service  # type: ignore[attr-defined]

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return None
        raw = self.rfile.read(length)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return parsed if isinstance(parsed, dict) else None

    def _sever(self) -> None:
        """Close the connection without a response (injected fault)."""
        self.close_connection = True
        with contextlib.suppress(OSError):
            self.connection.close()

    def _respond(
        self,
        status: int,
        payload: Union[Dict[str, Any], str, None],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "application/openmetrics-text; version=1.0.0"
        elif payload is None:
            body = b""
            content_type = "application/json"
        else:
            body = (json.dumps(payload) + "\n").encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        service = self.service
        start = time.perf_counter()
        fault = maybe_net_fault("server")
        mode = fault[0] if fault else None
        if mode == "partition":
            service._log_access(method, self.path, 0, 0.0, fault="partition")
            self._sever()
            return
        if mode == "delay":
            time.sleep(fault[1])
        body = self._read_body()
        try:
            status, payload, headers = service.route(method, self.path, body, self.headers)
            if mode == "duplicate":
                status, payload, headers = service.route(
                    method, self.path, body, self.headers
                )
        except Exception as exc:  # a handler bug must not kill the server
            status, payload, headers = 500, {"error": repr(exc)}, {}
        duration = time.perf_counter() - start
        service._observe(method, self.path, status, duration)
        if mode == "drop":
            service._log_access(
                method, self.path, status, duration, fault="drop"
            )
            self._sever()
            return
        service._log_access(method, self.path, status, duration, fault=mode)
        try:
            self._respond(status, payload, headers)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to do

    def do_GET(self) -> None:  # noqa: N802 - http.server convention
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")


class ServiceHTTPServer:
    """The HTTP front end bound to one :class:`Orchestrator`.

    Runs on a daemon thread; ``port=0`` binds an ephemeral port
    (``.port`` has the real one).  Request metrics live in an
    :class:`~repro.obs.registry.MetricsRegistry` rendered by
    ``GET /v1/metrics`` next to the per-worker task counters, and every
    exchange is appended to ``telemetry/http_access.jsonl``.
    """

    def __init__(
        self,
        orchestrator: Orchestrator,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.orchestrator = orchestrator
        self.registry = MetricsRegistry()
        self._requests = self.registry.counter(
            "service_http_requests_total",
            help="HTTP requests handled by the sweep front end.",
            labelnames=("method", "route", "status"),
        )
        self._latency = self.registry.histogram(
            "service_http_request_seconds",
            help="HTTP request handling latency.",
            labelnames=("route",),
            buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
        )
        self._worker_tasks = self.registry.counter(
            "service_worker_tasks_total",
            help="Remote worker protocol outcomes per worker host.",
            labelnames=("worker", "outcome"),
        )
        self.access_log_path: Path = (
            orchestrator.paths.telemetry / "http_access.jsonl"
        )
        self._access_lock = threading.Lock()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        self.host = self._httpd.server_address[0]
        self.port = int(self._httpd.server_address[1])
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceHTTPServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="service-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    # -- telemetry ---------------------------------------------------------

    def _route_label(self, path: str) -> str:
        """Collapse ids out of paths so label cardinality stays bounded."""
        parts = [p for p in path.split("?", 1)[0].split("/") if p]
        out = []
        for part in parts:
            out.append("<id>" if len(part) >= 16 else part)
        return "/" + "/".join(out)

    def _observe(
        self, method: str, path: str, status: int, duration_s: float
    ) -> None:
        route = self._route_label(path)
        self._requests.inc(method=method, route=route, status=str(status))
        self._latency.observe(duration_s, route=route)

    def _log_access(
        self,
        method: str,
        path: str,
        status: int,
        duration_s: float,
        fault: Optional[str] = None,
    ) -> None:
        record = {
            "t_s": time.time(),
            "method": method,
            "path": path,
            "status": status,
            "duration_s": round(duration_s, 6),
            "run_id": self.orchestrator.trace.run_id,
        }
        if fault:
            record["net_fault"] = fault
        try:
            self.access_log_path.parent.mkdir(parents=True, exist_ok=True)
            with self._access_lock:
                with self.access_log_path.open("a", encoding="utf-8") as fh:
                    fh.write(json.dumps(record) + "\n")
        except OSError:
            pass

    # -- routing -----------------------------------------------------------

    def route(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
        headers: Any,
    ) -> Tuple[int, Union[Dict[str, Any], str, None], Dict[str, str]]:
        path = path.split("?", 1)[0].rstrip("/")
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "v1":
            return 404, {"error": f"no such route: {path}"}, {}
        parts = parts[1:]
        if method == "GET":
            if parts == ["status"]:
                return self._get_status(headers)
            if parts == ["metrics"]:
                return self._get_metrics()
            if len(parts) == 2 and parts[0] == "sweeps":
                return self._get_sweep(parts[1], headers)
            if len(parts) == 2 and parts[0] == "tasks":
                return self._get_task(parts[1], headers)
            if len(parts) == 3 and parts[0] == "tasks" and parts[2] == "result":
                return self._get_result(parts[1])
        elif method == "POST":
            if parts == ["sweeps"]:
                return self._post_sweep(body)
            if parts == ["claims"]:
                return self._post_claim(body)
            if len(parts) == 3 and parts[0] == "tasks" and parts[2] == "result":
                return self._post_result(parts[1], body)
            if len(parts) == 3 and parts[0] == "tasks" and parts[2] == "fail":
                return self._post_fail(parts[1], body)
        elif method == "PUT":
            if len(parts) == 2 and parts[0] == "leases":
                return self._put_heartbeat(parts[1], body)
        return 404, {"error": f"no such route: {method} {path}"}, {}

    def _etag(self) -> str:
        """Weak validator over the journal: changes iff state changed."""
        return f'"journal-seq-{self.orchestrator.journal.seq}"'

    def _unavailable(
        self,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        return (
            503,
            {"error": "service draining", "draining": True},
            {"Retry-After": str(RETRY_AFTER_DRAIN_S)},
        )

    # -- client routes -----------------------------------------------------

    def _post_sweep(
        self, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        orch = self.orchestrator
        if orch.draining or orch.closed:
            return self._unavailable()
        submission = validate_submission(body)
        if submission is None:
            return 400, {"error": "malformed submission"}, {}
        # Server-side hash: the idempotency key is what the *body*
        # hashes to, never what the client claims it is.
        submit_id = submission_id(submission["tasks"])
        submission = dict(submission)
        submission["submit_id"] = submit_id
        verdict = orch.admit_submission(submission, submit_id=submit_id)
        if not verdict["accepted"]:
            return (
                429,
                verdict,
                {"Retry-After": str(RETRY_AFTER_BUSY_S)},
            )
        return 202, verdict, {"ETag": self._etag()}

    def _get_sweep(
        self, submit_id: str, headers: Any
    ) -> Tuple[int, Union[Dict[str, Any], None], Dict[str, str]]:
        orch = self.orchestrator
        etag = self._etag()
        if headers is not None and headers.get("If-None-Match") == etag:
            return 304, None, {"ETag": etag}
        with orch.lock:
            submit = orch.state.submits.get(submit_id)
            if submit is None:
                return 404, {"error": f"unknown sweep {submit_id}"}, {}
            tasks = {
                t.task_id: t.state
                for t in orch.state.tasks.values()
                if t.submit_id == submit_id
            }
            counts = {state: 0 for state in TaskState.ALL}
            for state in tasks.values():
                counts[state] += 1
            done = all(
                state in (TaskState.COMPLETED, TaskState.QUARANTINED)
                for state in tasks.values()
            )
            payload = {
                "submit_id": submit_id,
                "accepted": submit.accepted,
                "label": submit.label,
                "task_count": submit.task_count,
                "deduped": submit.deduped,
                "reason": submit.reason,
                "counts": counts,
                "done": done,
                "tasks": tasks,
            }
        return 200, payload, {"ETag": etag}

    def _get_task(
        self, task_id: str, headers: Any
    ) -> Tuple[int, Union[Dict[str, Any], None], Dict[str, str]]:
        orch = self.orchestrator
        etag = self._etag()
        if headers is not None and headers.get("If-None-Match") == etag:
            return 304, None, {"ETag": etag}
        with orch.lock:
            record = orch.state.tasks.get(task_id)
            if record is None:
                return 404, {"error": f"unknown task {task_id}"}, {}
            payload = record.as_dict()
            payload["cached"] = orch.cache.get(task_id) is not None
            lease = orch._remote.get(task_id)
            if lease is not None:
                payload["remote_worker"] = lease.worker_id
        return 200, payload, {"ETag": etag}

    def _get_result(
        self, task_id: str
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        result = self.orchestrator.cache.get(task_id)
        if result is None:
            return 404, {"error": f"no result for {task_id}"}, {}
        return 200, {"task_id": task_id, "result": result}, {}

    def _get_status(
        self,
        headers: Any = None,
    ) -> Tuple[int, Optional[Dict[str, Any]], Dict[str, str]]:
        orch = self.orchestrator
        etag = self._etag()
        if headers is not None and headers.get("If-None-Match") == etag:
            return 304, None, {"ETag": etag}
        with orch.lock:
            payload = {
                "serving": not orch.closed,
                "draining": orch.draining,
                "counts": orch.state.counts(),
                "queue_depth": orch.state.queue_depth,
                "remote_leases": len(orch._remote),
                "run_id": orch.trace.run_id,
                "journal_seq": orch.journal.seq,
            }
        return 200, payload, {"ETag": etag}

    def _get_metrics(
        self,
    ) -> Tuple[int, str, Dict[str, str]]:
        text = render_openmetrics(
            metrics=self.registry,
            run_id=self.orchestrator.trace.run_id,
        )
        return 200, text, {}

    # -- worker routes -----------------------------------------------------

    def _post_claim(
        self, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        orch = self.orchestrator
        worker_id = (body or {}).get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            return 400, {"error": "worker_id required"}, {}
        if orch.draining or orch.closed:
            return self._unavailable()
        shard = orch.remote_claim(worker_id)
        if shard is not None:
            self._worker_tasks.inc(worker=worker_id, outcome="claimed")
            return 200, shard, {}
        with orch.lock:
            idle = (
                not orch.state.by_state(TaskState.PENDING)
                and not orch.state.by_state(TaskState.LEASED)
                and not orch._inflight
                and not orch._remote
            )
        return 200, {"task": None, "idle": idle}, {}

    def _put_heartbeat(
        self, task_id: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        worker_id = (body or {}).get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            return 400, {"error": "worker_id required"}, {}
        ok = self.orchestrator.remote_heartbeat(task_id, worker_id)
        if not ok:
            # The worker's lease is gone (reclaimed or never existed):
            # 409 tells it to stop relying on exclusivity.
            return 409, {"ok": False, "task_id": task_id}, {}
        return 200, {"ok": True, "task_id": task_id}, {}

    def _post_result(
        self, task_id: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        body = body or {}
        worker_id = body.get("worker_id")
        result = body.get("result")
        if not isinstance(worker_id, str) or not worker_id:
            return 400, {"error": "worker_id required"}, {}
        if not isinstance(result, dict):
            return 400, {"error": "result dict required"}, {}
        status = self.orchestrator.remote_complete(
            task_id,
            worker_id,
            result,
            elapsed_s=body.get("elapsed_s"),
            worker_pid=body.get("worker_pid"),
            spans=body.get("spans"),
        )
        if status == "unknown":
            return 404, {"error": f"unknown task {task_id}"}, {}
        self._worker_tasks.inc(worker=worker_id, outcome=status)
        return 200, {"status": status, "task_id": task_id}, {}

    def _post_fail(
        self, task_id: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        body = body or {}
        worker_id = body.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            return 400, {"error": "worker_id required"}, {}
        status = self.orchestrator.remote_fail(
            task_id,
            worker_id,
            error=str(body.get("error", "remote failure")),
            error_type=str(body.get("error_type", "RemoteWorkerError")),
            traceback_text=body.get("traceback"),
        )
        self._worker_tasks.inc(worker=worker_id, outcome=status)
        return 200, {"status": status, "task_id": task_id}, {}


@contextlib.contextmanager
def serve_http(
    orchestrator: Orchestrator, spec: Union[str, int] = ":0"
) -> Iterator[ServiceHTTPServer]:
    """Run the HTTP front end for the duration of a ``with`` body.

    ``spec`` is ``"HOST:PORT"`` / ``":PORT"`` / a bare port; port 0
    binds ephemerally.  Usage::

        orchestrator = Orchestrator(config)
        with serve_http(orchestrator, ":8080") as front:
            orchestrator.serve()          # loop + HTTP until drained
    """
    host, port = parse_hostport(str(spec))
    server = ServiceHTTPServer(orchestrator, host=host, port=port).start()
    try:
        yield server
    finally:
        server.stop()
