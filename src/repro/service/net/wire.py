"""JSON-over-HTTP wire helpers and client-side network fault injection.

One tiny protocol, stdlib only: every request and response body is a
JSON object (``Content-Type: application/json``), errors carry
``{"error": ...}``, and backpressure rides the standard headers (429 /
503 + ``Retry-After``).  :func:`http_json` is the single choke point
every client-side component (sweep client, remote worker) sends
through, which is exactly where the deterministic network fault plan
(:func:`repro.service.faults.maybe_net_fault`) hooks in:

- ``partition`` — raise before the request is sent: the other side
  never sees it;
- ``drop`` — send and let the server process, then raise before the
  caller sees the response: the lost-ack case.  The retried request
  must converge through idempotency (same submit hash, duplicate
  result commit), which is what the fault suite proves;
- ``duplicate`` — send the identical request twice, return the second
  response;
- ``delay`` — stall the exchange, then proceed normally.

The server side injects its mirror-image faults in the request handler
(:mod:`repro.service.net.server`), so both directions of the wire are
covered by the same ``REPRO_NET_FAULT`` plan.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from ..faults import maybe_net_fault

__all__ = [
    "NetRequestError",
    "http_json",
    "parse_hostport",
]

#: Default per-request wall-clock bound.
DEFAULT_TIMEOUT_S = 10.0


class NetRequestError(RuntimeError):
    """One HTTP exchange failed (connection, timeout, or injected fault).

    ``status`` is the HTTP status when a response arrived (5xx), else
    ``None`` (never connected / response lost).  ``retry_after_s``
    carries the server's ``Retry-After`` when it sent one.
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


def parse_hostport(spec: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """``"HOST:PORT"`` / ``":PORT"`` / ``"PORT"`` → ``(host, port)``."""
    spec = spec.strip()
    if ":" in spec:
        host, _, port = spec.rpartition(":")
        return (host or default_host), int(port)
    return default_host, int(spec)


def _retry_after(headers: Any) -> Optional[float]:
    value = headers.get("Retry-After") if headers is not None else None
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def http_json(
    method: str,
    url: str,
    body: Optional[Dict[str, Any]] = None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    role: str = "client",
    etag: Optional[str] = None,
) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
    """One JSON exchange: ``(status, parsed body, response headers)``.

    Raises :class:`NetRequestError` on connection failure, timeout, 5xx,
    429/503 backpressure (with ``retry_after_s`` attached), or an
    injected network fault — callers (the sweep client's retry loop)
    treat all of those uniformly as "this exchange did not succeed".
    2xx/304/4xx responses return normally; a 304 (ETag hit) returns an
    empty body.
    """
    fault = maybe_net_fault(role)
    mode = fault[0] if fault else None
    if mode == "partition":
        raise NetRequestError(
            f"injected partition: {method} {url} never sent"
        )
    if mode == "delay":
        time.sleep(fault[1])

    def _exchange() -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(url, data=data, method=method)
        request.add_header("Content-Type", "application/json")
        if etag is not None:
            request.add_header("If-None-Match", etag)
        try:
            with urllib.request.urlopen(request, timeout=timeout_s) as resp:
                raw = resp.read()
                headers = dict(resp.headers.items())
                status = resp.status
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            headers = dict(exc.headers.items()) if exc.headers else {}
            status = exc.code
            if status >= 500 or status in (429, 503):
                raise NetRequestError(
                    f"{method} {url} -> {status}",
                    status=status,
                    retry_after_s=_retry_after(exc.headers),
                ) from exc
        except urllib.error.URLError as exc:
            raise NetRequestError(
                f"{method} {url} unreachable: {exc.reason}"
            ) from exc
        except (socket.timeout, TimeoutError, ConnectionError, OSError) as exc:
            raise NetRequestError(
                f"{method} {url} failed: {exc}"
            ) from exc
        if not raw:
            return status, {}, headers
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise NetRequestError(
                f"{method} {url} -> {status}: unparseable body"
            ) from exc
        return status, parsed if isinstance(parsed, dict) else {}, headers

    result = _exchange()
    if mode == "duplicate":
        result = _exchange()
    if mode == "drop":
        # The server processed the request; the response is lost here.
        raise NetRequestError(
            f"injected drop: {method} {url} response lost"
        )
    return result
