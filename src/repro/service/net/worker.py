"""The remote sweep worker: ``repro-plc work --connect URL``.

A remote worker is a peer process (possibly on another machine) that
claims (point, repetition) shards from the HTTP front end, executes
them through the *same* :func:`repro.runner.tasks.run_task` entry as
every other execution path — so seeds, cache keys and checkpoint
behaviour are identical — and commits results back over HTTP.

Partition-safety contract, mirroring the local lease discipline:

- **Liveness is heartbeat recency only.**  A daemon thread PUTs
  ``/v1/leases/<task_id>`` every ``heartbeat_interval_s`` (the server
  names the cadence in the claim response).  Cross-host pids mean
  nothing; silence past the TTL is what gets a worker declared dead
  and its shard reclaimed — without consuming a retry attempt.
- **A lost lease does not abort the attempt.**  If a heartbeat comes
  back 409 (the watchdog reclaimed us during a partition), the worker
  *keeps computing* and still posts its result: commits are idempotent
  on the task's cache key, so the orchestrator accepts the bits
  whichever attempt lands first and answers ``duplicate`` to the rest.
- **A lost ack converges.**  The result POST rides the
  :class:`~repro.service.net.client.SweepClient` retry loop; a
  response lost to a partition between commit and ack is retried and
  answered ``duplicate`` — same bits, no recomputation.

The worker never touches the service directory: its entire interface
is the wire protocol, which is what makes multi-host sharding safe.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from typing import Any, Dict, Optional, Sequence, Union

from ...runner.tasks import run_task
from ..worker import task_from_description
from .client import AllHostsUnreachable, SweepClient

__all__ = ["work_loop"]


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class _HeartbeatLoop:
    """Daemon thread PUTting lease heartbeats for one claimed shard."""

    def __init__(
        self,
        client: SweepClient,
        task_id: str,
        worker_id: str,
        interval_s: float,
    ) -> None:
        self._client = client
        self._task_id = task_id
        self._worker_id = worker_id
        self._interval_s = max(0.05, interval_s)
        self._stop = threading.Event()
        #: Set when the server answered 409: the lease was reclaimed.
        self.lost = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{task_id[:12]}", daemon=True
        )

    def start(self) -> "_HeartbeatLoop":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                status, _doc, _headers = self._client._request(
                    "PUT",
                    f"/v1/leases/{self._task_id}",
                    body={"worker_id": self._worker_id},
                )
            except AllHostsUnreachable:
                # Partitioned from the server: keep computing.  The
                # watchdog may reclaim us; the commit still converges.
                continue
            if status == 409:
                self.lost.set()


def work_loop(
    urls: Union[str, Sequence[str]],
    worker_id: Optional[str] = None,
    poll_s: float = 0.5,
    exit_when_idle: bool = False,
    idle_grace_s: float = 0.0,
    give_up_after_s: Optional[float] = None,
    client: Optional[SweepClient] = None,
    max_tasks: Optional[int] = None,
) -> Dict[str, Any]:
    """Claim and execute shards until idle/unreachable bounds are hit.

    Returns a stats dict (``completed`` / ``duplicate`` / ``failed`` /
    ``lost_leases`` / ``claims`` / ``unreachable_s``).  With
    ``exit_when_idle`` the loop ends once the server has reported
    nothing claimable anywhere for ``idle_grace_s`` continuously — a
    worker started *before* the first submission needs the grace to
    survive until work arrives.  ``give_up_after_s`` bounds how long
    the worker keeps polling through an unreachable or draining
    service (``None`` = forever, the production default — workers
    outlive restarts).
    """
    worker_id = worker_id or _default_worker_id()
    client = client or SweepClient(urls, role="worker", retries=1)
    stats: Dict[str, Any] = {
        "worker_id": worker_id,
        "claims": 0,
        "completed": 0,
        "duplicate": 0,
        "failed": 0,
        "lost_leases": 0,
        "unreachable_s": 0.0,
    }
    unreachable_since: Optional[float] = None
    idle_since: Optional[float] = None
    while True:
        if max_tasks is not None and stats["claims"] >= max_tasks:
            return stats
        try:
            status, shard, _headers = client._request(
                "POST", "/v1/claims", body={"worker_id": worker_id}
            )
        except AllHostsUnreachable:
            now = time.monotonic()
            if unreachable_since is None:
                unreachable_since = now
            stats["unreachable_s"] = now - unreachable_since
            if (
                give_up_after_s is not None
                and stats["unreachable_s"] >= give_up_after_s
            ):
                return stats
            time.sleep(poll_s)
            continue
        unreachable_since = None
        if status != 200 or not shard.get("task_id"):
            # Draining (503 surfaces as a retried pass above) or idle.
            if shard.get("idle") and exit_when_idle:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if now - idle_since >= idle_grace_s:
                    return stats
            else:
                idle_since = None
            time.sleep(poll_s)
            continue

        idle_since = None
        stats["claims"] += 1
        task_id = shard["task_id"]
        task = task_from_description(shard["task"])
        beat = _HeartbeatLoop(
            client,
            task_id,
            worker_id,
            interval_s=float(shard.get("heartbeat_interval_s", 1.0)),
        ).start()
        started = time.perf_counter()
        try:
            envelope = run_task(task)
        except BaseException as exc:
            beat.stop()
            if beat.lost.is_set():
                stats["lost_leases"] += 1
            try:
                client._request(
                    "POST",
                    f"/v1/tasks/{task_id}/fail",
                    body={
                        "worker_id": worker_id,
                        "error": str(exc),
                        "error_type": type(exc).__name__,
                        "traceback": traceback.format_exc(),
                    },
                )
            except AllHostsUnreachable:
                pass  # the watchdog will reclaim the silent lease
            stats["failed"] += 1
            continue
        beat.stop()
        if beat.lost.is_set():
            stats["lost_leases"] += 1
        body = {
            "worker_id": worker_id,
            "result": envelope.get("result"),
            "elapsed_s": envelope.get(
                "elapsed_s", time.perf_counter() - started
            ),
            "worker_pid": envelope.get("worker_pid", os.getpid()),
            "spans": envelope.get("spans"),
        }
        try:
            _status, doc, _h = client._request(
                "POST", f"/v1/tasks/{task_id}/result", body=body
            )
        except AllHostsUnreachable:
            # Commit lost to a partition: the reclaim + redelivery path
            # recomputes bit-identically; nothing more we can do here.
            continue
        outcome = doc.get("status", "unknown")
        if outcome == "committed":
            stats["completed"] += 1
        elif outcome == "duplicate":
            stats["duplicate"] += 1
    return stats
